"""Legacy setup shim.

This environment has no ``wheel`` package and no network, so PEP 660
editable installs (which require ``bdist_wheel``) fail. Installing with
``pip install -e . --no-use-pep517 --no-build-isolation`` goes through
this shim instead; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
