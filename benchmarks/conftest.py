"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures. The
synthetic quarters stand in for the FAERS 2014 extracts (see DESIGN.md);
they are scaled down with ``SCALE`` so the whole harness runs on a
laptop in a couple of minutes. Regenerated artifacts are printed and
also written under ``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import Maras, MarasConfig
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.faers.synthetic import PAPER_QUARTER_REPORTS
from repro.obs import JsonlSink, MetricsRegistry

# 0.02 → roughly 2.4-2.8k reports per quarter.
SCALE = 0.02
QUARTERS = tuple(sorted(PAPER_QUARTER_REPORTS))

OUT_DIR = Path(__file__).parent / "out"


def write_artifact(name: str, content: str) -> Path:
    """Persist a regenerated table/figure under benchmarks/out/."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / name
    path.write_text(content + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def generators():
    """One seeded generator per 2014 quarter."""
    return {
        quarter: SyntheticFAERSGenerator(quarter_config(quarter, scale=SCALE))
        for quarter in QUARTERS
    }


@pytest.fixture(scope="session")
def quarter_datasets(generators):
    """Quarter label → ReportDataset (generated once per session)."""
    return {
        quarter: ReportDataset(generator.generate())
        for quarter, generator in generators.items()
    }


@pytest.fixture(scope="session")
def mined_q1(quarter_datasets):
    """Q1 through the full pipeline (the Table 5.2 / case-study workload).

    Runs profiled: the stage-time table and the JSONL event trace land
    under ``benchmarks/out/`` so the perf trajectory of the pipeline is
    comparable across PRs alongside the regenerated tables/figures.
    """
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    trace_path = OUT_DIR / "pipeline_trace.jsonl"
    trace_path.unlink(missing_ok=True)
    registry = MetricsRegistry(sink=JsonlSink(trace_path))
    result = Maras(
        MarasConfig(min_support=5, clean=False), registry=registry
    ).run(quarter_datasets["2014Q1"])
    write_artifact("pipeline_stage_metrics.txt", result.metrics.format_table())
    registry.close()
    return result


@pytest.fixture(scope="session")
def mined_study():
    """A larger Q1 (double scale) for the user study: Fig 5.2 needs
    enough 4-drug clusters to build 4-drug questions."""
    generator = SyntheticFAERSGenerator(quarter_config("2014Q1", scale=2 * SCALE))
    return Maras(MarasConfig(min_support=5, clean=False)).run(
        ReportDataset(generator.generate())
    )


@pytest.fixture(scope="session")
def mined_all(quarter_datasets):
    """All four quarters through the pipeline with rule-space counting
    enabled (the Fig 5.1 workload)."""
    maras = Maras(MarasConfig(min_support=5, clean=False, count_rule_space=True))
    return {
        quarter: maras.run(dataset)
        for quarter, dataset in quarter_datasets.items()
    }
