"""Pipeline throughput across data scales.

How the end-to-end pipeline (clean-off, closed mining, rule generation,
MCAC construction) scales with quarter size — the evidence behind the
claim that the full FAERS scale is reachable. Reported as reports/sec
per scale; the shape claim is sub-quadratic growth (doubling the data
costs clearly less than 4× the time).
"""

from __future__ import annotations

import time

import pytest

from repro.core import Maras, MarasConfig
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.obs import MetricsRegistry

from benchmarks.conftest import write_artifact

SCALES = (0.01, 0.02, 0.04)


@pytest.fixture(scope="module")
def datasets():
    return {
        scale: ReportDataset(
            SyntheticFAERSGenerator(quarter_config("2014Q1", scale=scale)).generate()
        )
        for scale in SCALES
    }


@pytest.mark.benchmark(group="pipeline-throughput")
@pytest.mark.parametrize("scale", SCALES)
def test_pipeline_scale(benchmark, datasets, scale):
    maras = Maras(MarasConfig(min_support=5, clean=False))
    result = benchmark.pedantic(
        lambda: maras.run(datasets[scale]), rounds=3, iterations=1
    )
    assert result.clusters
    # One extra profiled run (outside the timed rounds) attaches
    # per-stage wall times and counters to the benchmark record, so the
    # perf trajectory is comparable across PRs.
    profiled = Maras(
        MarasConfig(min_support=5, clean=False), registry=MetricsRegistry()
    ).run(datasets[scale])
    benchmark.extra_info["stage_seconds"] = {
        t.name: round(t.total_seconds, 6) for t in profiled.metrics.timers
    }
    benchmark.extra_info["counters"] = dict(profiled.metrics.counters)


def test_throughput_subquadratic(datasets):
    maras = Maras(MarasConfig(min_support=5, clean=False))
    timings = {}
    for scale in SCALES:
        start = time.perf_counter()
        maras.run(datasets[scale])
        timings[scale] = time.perf_counter() - start

    lines = [
        "Pipeline throughput by scale (min-support 5)",
        f"{'scale':>7s} {'reports':>9s} {'seconds':>9s} {'reports/s':>10s}",
    ]
    for scale in SCALES:
        n = len(datasets[scale])
        lines.append(
            f"{scale:>7.2f} {n:>9,d} {timings[scale]:>9.2f} "
            f"{n / timings[scale]:>10,.0f}"
        )
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("pipeline_throughput.txt", artifact)

    # 4× the reports must cost well under 16× the time (sub-quadratic).
    assert timings[0.04] < 16 * max(timings[0.01], 1e-3)
