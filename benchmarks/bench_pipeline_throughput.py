"""Pipeline throughput across data scales.

How the end-to-end pipeline (clean-off, closed mining, rule generation,
MCAC construction) scales with quarter size — the evidence behind the
claim that the full FAERS scale is reachable. Reported as reports/sec
per scale; the shape claim is sub-quadratic growth (doubling the data
costs clearly less than 4× the time).

The ``pipeline-set-vs-bitset`` group runs the same workload down both
measurement paths — ``use_bitsets=False`` (frozenset tidsets, direct
``database.support``) and the default bitset-native path (bitmask
miner + shared memoized support oracle) — and asserts the mined
clusters are identical, so the speedup is attributable and safe.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Maras, MarasConfig
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.obs import MetricsRegistry

from benchmarks.conftest import write_artifact

SCALES = (0.01, 0.02, 0.04)


@pytest.fixture(scope="module")
def datasets():
    return {
        scale: ReportDataset(
            SyntheticFAERSGenerator(quarter_config("2014Q1", scale=scale)).generate()
        )
        for scale in SCALES
    }


@pytest.mark.benchmark(group="pipeline-throughput")
@pytest.mark.parametrize("scale", SCALES)
def test_pipeline_scale(benchmark, datasets, scale):
    maras = Maras(MarasConfig(min_support=5, clean=False))
    result = benchmark.pedantic(
        lambda: maras.run(datasets[scale]), rounds=3, iterations=1
    )
    assert result.clusters
    # One extra profiled run (outside the timed rounds) attaches
    # per-stage wall times and counters to the benchmark record, so the
    # perf trajectory is comparable across PRs.
    profiled = Maras(
        MarasConfig(min_support=5, clean=False), registry=MetricsRegistry()
    ).run(datasets[scale])
    benchmark.extra_info["stage_seconds"] = {
        t.name: round(t.total_seconds, 6) for t in profiled.metrics.timers
    }
    benchmark.extra_info["counters"] = dict(profiled.metrics.counters)


def _cluster_signature(result):
    """Order-independent digest of mined clusters for equivalence checks."""
    return sorted(
        (
            tuple(sorted(c.target.antecedent)),
            tuple(sorted(c.target.consequent)),
            c.target.metrics.confidence,
            tuple(
                (k, tuple(sorted((tuple(sorted(r.antecedent)), r.metrics.confidence) for r in v)))
                for k, v in sorted(c.levels.items())
            ),
        )
        for c in result.clusters
    )


@pytest.mark.benchmark(group="pipeline-set-vs-bitset")
def test_pipeline_sets(benchmark, datasets):
    maras = Maras(MarasConfig(min_support=5, clean=False, use_bitsets=False))
    result = benchmark.pedantic(
        lambda: maras.run(datasets[0.02]), rounds=3, iterations=1
    )
    assert result.clusters


@pytest.mark.benchmark(group="pipeline-set-vs-bitset")
def test_pipeline_bitsets(benchmark, datasets):
    maras = Maras(MarasConfig(min_support=5, clean=False, use_bitsets=True))
    result = benchmark.pedantic(
        lambda: maras.run(datasets[0.02]), rounds=3, iterations=1
    )
    assert result.clusters
    reference = Maras(
        MarasConfig(min_support=5, clean=False, use_bitsets=False)
    ).run(datasets[0.02])
    assert _cluster_signature(result) == _cluster_signature(reference)


def test_throughput_subquadratic(datasets):
    maras = Maras(MarasConfig(min_support=5, clean=False))
    timings = {}
    for scale in SCALES:
        start = time.perf_counter()
        maras.run(datasets[scale])
        timings[scale] = time.perf_counter() - start

    lines = [
        "Pipeline throughput by scale (min-support 5)",
        f"{'scale':>7s} {'reports':>9s} {'seconds':>9s} {'reports/s':>10s}",
    ]
    for scale in SCALES:
        n = len(datasets[scale])
        lines.append(
            f"{scale:>7.2f} {n:>9,d} {timings[scale]:>9.2f} "
            f"{n / timings[scale]:>10,.0f}"
        )
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("pipeline_throughput.txt", artifact)

    # 4× the reports must cost well under 16× the time (sub-quadratic).
    assert timings[0.04] < 16 * max(timings[0.01], 1e-3)
