"""Streaming surveillance — batch ingestion over a growing quarter.

Beyond the paper's static evaluation: its own motivation (§1.1) is a
database growing by thousands of reports a day, so the monitor that
maintains the ranking and emits a change feed per batch is benchmarked
here. Shape claims: the ranking stabilizes as data accumulates
(Spearman ρ between consecutive rankings rises), and a signal planted
to *surge* mid-stream surfaces in exactly the batch where its support
crosses the threshold.
"""

from __future__ import annotations

from repro.core import MarasConfig
from repro.core.incremental import SurveillanceMonitor
from repro.faers.schema import CaseReport

from benchmarks.conftest import write_artifact

N_BATCHES = 4


def test_surveillance_stream(benchmark, quarter_datasets):
    reports = list(quarter_datasets["2014Q1"])
    size = len(reports) // N_BATCHES
    batches = [
        reports[i * size : (i + 1) * size if i < N_BATCHES - 1 else len(reports)]
        for i in range(N_BATCHES)
    ]
    # Plant a mid-stream surge: a brand-new combination entering in batch 3.
    surge = [
        CaseReport.build(f"surge-{i}", ["SURGEDRUG A", "SURGEDRUG B"], ["SURGE ADR"])
        for i in range(8)
    ]
    batches[2] = batches[2] + surge

    def run_stream():
        monitor = SurveillanceMonitor(
            MarasConfig(min_support=5, clean=False), riser_threshold=5
        )
        return [monitor.ingest(batch) for batch in batches]

    deltas = benchmark.pedantic(run_stream, rounds=2, iterations=1)

    lines = ["Surveillance stream — per-batch change feed (2014 Q1 synthetic)"]
    lines.append(
        f"{'batch':>6s} {'reports':>9s} {'new':>5s} {'dropped':>8s} "
        f"{'risers':>7s} {'spearman':>9s}"
    )
    for delta in deltas:
        rho = "" if delta.rank_correlation is None else f"{delta.rank_correlation:.3f}"
        lines.append(
            f"{delta.batch_index:>6d} {delta.n_reports_total:>9,d} "
            f"{len(delta.newly_surfaced):>5d} {len(delta.dropped):>8d} "
            f"{len(delta.risers):>7d} {rho:>9s}"
        )
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("surveillance_stream.txt", artifact)

    # The planted surge surfaces exactly in batch 3.
    surge_key = (("SURGEDRUG A", "SURGEDRUG B"), ("SURGE ADR",))
    assert surge_key in deltas[2].newly_surfaced
    assert surge_key not in deltas[1].newly_surfaced
    # Rankings correlate positively once the base is established.
    late_rhos = [
        d.rank_correlation for d in deltas[1:] if d.rank_correlation is not None
    ]
    assert late_rhos and all(rho > 0 for rho in late_rhos)
    # Relative churn falls as the base grows: the share of the ranking
    # that is brand-new in the final batch is below the second batch's.
    cumulative = 0
    fractions = []
    for delta in deltas:
        cumulative += len(delta.newly_surfaced) - len(delta.dropped)
        fractions.append(len(delta.newly_surfaced) / max(cumulative, 1))
    assert fractions[-1] < fractions[1]
