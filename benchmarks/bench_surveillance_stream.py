"""Streaming surveillance — batch ingestion over a growing quarter.

Beyond the paper's static evaluation: its own motivation (§1.1) is a
database growing by thousands of reports a day, so the monitor that
maintains the ranking and emits a change feed per batch is benchmarked
here. Shape claims: the ranking stabilizes as data accumulates
(Spearman ρ between consecutive rankings rises), and a signal planted
to *surge* mid-stream surfaces in exactly the batch where its support
crosses the threshold.
"""

from __future__ import annotations

import time

import pytest

from repro.core import MarasConfig
from repro.core.incremental import SurveillanceMonitor
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.faers.schema import CaseReport

from benchmarks._trajectory import REPO_ROOT, append_run, base_record
from benchmarks.conftest import write_artifact

N_BATCHES = 4

# --- incremental-vs-rescan trajectory ---------------------------------
# Larger than the shared SCALE quarters: the claim is about re-mining
# cost, so mining has to *have* a cost. ~10k reports puts a full rescan
# at seconds. The stream shape mirrors the paper's §1.1 motivation — a
# standing database plus modest ongoing batches — as one bulk backfill
# (the initial build) followed by small batches of ~2% of the base, the
# regime where delta-restricted re-mining prunes most of the lattice.
STREAM_SCALE = 0.08
BACKFILL_FRACTION = 0.78
STREAM_BATCHES = 12  # ongoing small batches after the backfill
STREAM_MIN_SUPPORT = 4
LATE_BATCHES = 4  # speedup is averaged over the last 4 batches

TRAJECTORY_PATH = REPO_ROOT / "BENCH_surveillance.json"


def test_surveillance_stream(benchmark, quarter_datasets):
    reports = list(quarter_datasets["2014Q1"])
    size = len(reports) // N_BATCHES
    batches = [
        reports[i * size : (i + 1) * size if i < N_BATCHES - 1 else len(reports)]
        for i in range(N_BATCHES)
    ]
    # Plant a mid-stream surge: a brand-new combination entering in batch 3.
    surge = [
        CaseReport.build(f"surge-{i}", ["SURGEDRUG A", "SURGEDRUG B"], ["SURGE ADR"])
        for i in range(8)
    ]
    batches[2] = batches[2] + surge

    def run_stream():
        monitor = SurveillanceMonitor(
            MarasConfig(min_support=5, clean=False), riser_threshold=5
        )
        return [monitor.ingest(batch) for batch in batches]

    deltas = benchmark.pedantic(run_stream, rounds=2, iterations=1)

    lines = ["Surveillance stream — per-batch change feed (2014 Q1 synthetic)"]
    lines.append(
        f"{'batch':>6s} {'reports':>9s} {'new':>5s} {'dropped':>8s} "
        f"{'risers':>7s} {'spearman':>9s}"
    )
    for delta in deltas:
        rho = "" if delta.rank_correlation is None else f"{delta.rank_correlation:.3f}"
        lines.append(
            f"{delta.batch_index:>6d} {delta.n_reports_total:>9,d} "
            f"{len(delta.newly_surfaced):>5d} {len(delta.dropped):>8d} "
            f"{len(delta.risers):>7d} {rho:>9s}"
        )
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("surveillance_stream.txt", artifact)

    # The planted surge surfaces exactly in batch 3.
    surge_key = (("SURGEDRUG A", "SURGEDRUG B"), ("SURGE ADR",))
    assert surge_key in deltas[2].newly_surfaced
    assert surge_key not in deltas[1].newly_surfaced
    # Rankings correlate positively once the base is established.
    late_rhos = [
        d.rank_correlation for d in deltas[1:] if d.rank_correlation is not None
    ]
    assert late_rhos and all(rho > 0 for rho in late_rhos)
    # Relative churn falls as the base grows: the share of the ranking
    # that is brand-new in the final batch is below the second batch's.
    cumulative = 0
    fractions = []
    for delta in deltas:
        cumulative += len(delta.newly_surfaced) - len(delta.dropped)
        fractions.append(len(delta.newly_surfaced) / max(cumulative, 1))
    assert fractions[-1] < fractions[1]


@pytest.fixture(scope="module")
def stream_batches():
    generator = SyntheticFAERSGenerator(
        quarter_config("2014Q1", scale=STREAM_SCALE)
    )
    reports = list(ReportDataset(generator.generate()))
    backfill = int(len(reports) * BACKFILL_FRACTION)
    rest = reports[backfill:]
    size = -(-len(rest) // STREAM_BATCHES)
    return [reports[:backfill]] + [
        rest[i * size : (i + 1) * size] for i in range(STREAM_BATCHES)
    ]


def test_trajectory_incremental_vs_rescan(stream_batches):
    """Per-batch wall clock: incremental engine vs full-rescan monitor.

    The tentpole's acceptance bar — once the base dwarfs the batch, the
    incremental path must ingest a batch ≥3× faster than re-mining the
    whole accumulated quarter, while staying byte-identical (that part
    is pinned by tests/incremental/test_differential.py; here we only
    measure).
    """
    config = dict(min_support=STREAM_MIN_SUPPORT, clean=False)
    rows = []
    with SurveillanceMonitor(
        MarasConfig(**config, incremental=True)
    ) as fast, SurveillanceMonitor(MarasConfig(**config)) as slow:
        for index, batch in enumerate(stream_batches):
            start = time.perf_counter()
            fast.ingest(batch)
            fast_seconds = time.perf_counter() - start

            start = time.perf_counter()
            slow.ingest(batch)
            slow_seconds = time.perf_counter() - start

            stats = fast.engine_stats
            rows.append(
                {
                    "batch": index,
                    "n_reports_total": sum(
                        len(b) for b in stream_batches[: index + 1]
                    ),
                    "incremental_seconds": round(fast_seconds, 6),
                    "rescan_seconds": round(slow_seconds, 6),
                    "speedup": round(slow_seconds / fast_seconds, 2),
                    "rebuild_reason": stats.get("rebuild_reason"),
                    "reuse_ratio": stats.get("reuse_ratio"),
                    "n_carried": stats.get("n_carried"),
                    "n_mined": stats.get("n_mined"),
                }
            )
        assert fast.watchlist() == slow.watchlist()

    late = rows[-LATE_BATCHES:]
    late_speedup = sum(r["speedup"] for r in late) / len(late)

    lines = ["Incremental vs full-rescan ingest (2014 Q1 synthetic stream)"]
    lines.append(
        f"{'batch':>6s} {'reports':>9s} {'incr s':>9s} {'rescan s':>9s} "
        f"{'speedup':>8s} {'reuse':>6s} {'rebuild':>24s}"
    )
    for r in rows:
        reuse = "" if r["reuse_ratio"] is None else f"{r['reuse_ratio']:.2f}"
        lines.append(
            f"{r['batch']:>6d} {r['n_reports_total']:>9,d} "
            f"{r['incremental_seconds']:>9.3f} {r['rescan_seconds']:>9.3f} "
            f"{r['speedup']:>8.2f} {reuse:>6s} "
            f"{(r['rebuild_reason'] or '-')[:24]:>24s}"
        )
    lines.append(f"late-batch mean speedup (last {LATE_BATCHES}): {late_speedup:.2f}x")
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("surveillance_incremental.txt", artifact)

    record = base_record(
        n_reports=rows[-1]["n_reports_total"],
        n_batches=len(rows),  # backfill + STREAM_BATCHES small batches
        min_support=STREAM_MIN_SUPPORT,
        late_batch_mean_speedup=round(late_speedup, 2),
        batches=rows,
    )
    append_run(
        TRAJECTORY_PATH,
        "surveillance-perf",
        "surveillance/incremental-vs-rescan",
        record,
    )

    assert late_speedup >= 3.0, (
        f"late-batch incremental ingest only {late_speedup:.2f}x faster "
        "than a full rescan"
    )
