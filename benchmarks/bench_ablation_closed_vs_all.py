"""Ablation — closed-itemset mining vs all-frequent-itemset mining.

§3.4's design choice: mine closed itemsets so every generated rule is a
supported (non-spurious) association and the rule space collapses. The
ablation quantifies both halves across a support sweep: output size
(closed ≪ all) and the share of *unsupported* drug-ADR rules that
all-itemset mining lets through and closed mining provably cannot.
"""

from __future__ import annotations

from repro.core.association import SupportType, classify_support
from repro.mining import fpclose, fpgrowth, partitioned_rules

from benchmarks.conftest import write_artifact

SUPPORTS = (4, 6, 10)
MAX_LEN = 6


def test_closed_vs_all(benchmark, quarter_datasets):
    database = quarter_datasets["2014Q1"].encode().database
    benchmark(lambda: fpclose(database, SUPPORTS[0], max_len=MAX_LEN))

    lines = [
        "Ablation — closed vs all-frequent itemset mining (2014 Q1 synthetic)",
        f"{'support':>8s} {'frequent':>10s} {'closed':>8s} {'all rules':>10s} "
        f"{'closed rules':>13s} {'spurious (all)':>15s}",
    ]
    for support in SUPPORTS:
        frequent = fpgrowth(database, support, max_len=MAX_LEN)
        closed = fpclose(database, support, max_len=MAX_LEN)
        all_rules = partitioned_rules(frequent, database)
        closed_rules = partitioned_rules(closed, database)
        spurious = sum(
            1
            for rule in all_rules
            if classify_support(database, rule.items) is SupportType.UNSUPPORTED
        )
        lines.append(
            f"{support:>8d} {len(frequent):>10,d} {len(closed):>8,d} "
            f"{len(all_rules):>10,d} {len(closed_rules):>13,d} {spurious:>15,d}"
        )
        assert len(closed) < len(frequent)
        assert len(closed_rules) <= len(all_rules)
        # Closed rules are never spurious (Lemma 3.4.2)...
        assert all(
            classify_support(database, rule.items).is_supported
            for rule in closed_rules
        )
        # ...while the unfiltered rule space does contain spurious rules
        # at low support (the misleading partial readings of §3.2).
        if support == SUPPORTS[0]:
            assert spurious > 0

    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("ablation_closed_vs_all.txt", artifact)
