"""Durable-store performance: catalog ops and checkpoint round trips.

Beyond the paper: the production posture the store subsystem adds —
versioned snapshot saves, warm-restart loads, per-batch checkpoints —
must cost little next to mining itself, or nobody runs with
``--store`` enabled. Measures, for both backends where applicable:

- ``save_run`` / ``load_run`` latency over a chain of versions;
- ``compact()`` reclaim on the SQLite catalog (bytes on disk);
- the checkpoint+restore round trip of a live surveillance stream,
  including the serialized state size — the per-batch durability tax.

Appends to ``BENCH_store.json`` via the shared trajectory writer.
"""

from __future__ import annotations

import json
import time

from repro.core import MarasConfig
from repro.core.export import export_result
from repro.core.incremental import SurveillanceMonitor
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.store import (
    DirectoryBackend,
    SQLiteBackend,
    checkpoint_monitor,
    config_fingerprint,
    restore_monitor,
)
from repro.store.backend import JournalEntry

from benchmarks._trajectory import REPO_ROOT, append_run, base_record
from benchmarks.conftest import write_artifact

SCALE = 0.02
N_VERSIONS = 20
N_BATCHES = 6
MIN_SUPPORT = 5

TRAJECTORY_PATH = REPO_ROOT / "BENCH_store.json"


def _mined_payload() -> dict:
    from repro.core import Maras

    generator = SyntheticFAERSGenerator(quarter_config("2014Q1", scale=SCALE))
    dataset = ReportDataset(generator.generate())
    result = Maras(MarasConfig(min_support=MIN_SUPPORT, clean=False)).run(
        dataset
    )
    return export_result(result)


def _timed(operation, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        operation()
    return (time.perf_counter() - start) / repeats * 1000.0


def test_store_benchmark(tmp_path):
    payload = _mined_payload()
    payload_bytes = len(
        json.dumps(payload, sort_keys=True, separators=(",", ":"))
    )

    # -- catalog ops, both backends ------------------------------------
    timings: dict[str, float] = {}
    directory = DirectoryBackend(tmp_path / "dirstore")
    timings["dir_save_ms"] = _timed(
        lambda: directory.save_run("q1", payload), N_VERSIONS
    )
    timings["dir_load_ms"] = _timed(
        lambda: directory.load_run("q1"), N_VERSIONS
    )

    db_path = tmp_path / "runs.db"
    with SQLiteBackend(db_path) as backend:
        timings["sqlite_save_ms"] = _timed(
            lambda: backend.save_run("q1", payload), N_VERSIONS
        )
        timings["sqlite_load_ms"] = _timed(
            lambda: backend.load_run("q1"), N_VERSIONS
        )
        def on_disk() -> int:
            # WAL mode: pages live in the -wal sidecar until folded in.
            return sum(
                p.stat().st_size
                for suffix in ("", "-wal", "-shm")
                for p in [db_path.with_name(db_path.name + suffix)]
                if p.exists()
            )

        size_before = on_disk()
        dropped = backend.compact()
        size_after = on_disk()
    assert dropped == N_VERSIONS - 1
    assert size_after < size_before  # VACUUM reclaims superseded bodies

    # -- checkpoint round trip on a live stream ------------------------
    generator = SyntheticFAERSGenerator(quarter_config("2014Q2", scale=SCALE))
    reports = list(ReportDataset(generator.generate()))
    size = -(-len(reports) // N_BATCHES)
    batches = [
        reports[i * size : (i + 1) * size] for i in range(N_BATCHES)
    ]
    config = MarasConfig(
        min_support=MIN_SUPPORT, clean=False, incremental=True
    )
    fingerprint = config_fingerprint(config)
    checkpoint_ms = []
    with SQLiteBackend(tmp_path / "watch.db") as backend:
        with SurveillanceMonitor(config) as monitor:
            for index, batch in enumerate(batches):
                monitor.ingest(batch)
                start = time.perf_counter()
                checkpoint_monitor(
                    backend,
                    "q2",
                    monitor,
                    fingerprint=fingerprint,
                    journal=[
                        JournalEntry(index, [r.case_id for r in batch])
                    ],
                )
                checkpoint_ms.append((time.perf_counter() - start) * 1000.0)
            expected = export_result(monitor.result)
        state_bytes = len(
            json.dumps(
                backend.load_checkpoint("q2").state,
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        start = time.perf_counter()
        restored = restore_monitor(backend, "q2", config)
        restore_ms = (time.perf_counter() - start) * 1000.0
        with restored:
            assert export_result(restored.result) == expected
    timings["checkpoint_ms"] = sum(checkpoint_ms) / len(checkpoint_ms)
    timings["restore_ms"] = restore_ms

    lines = [
        f"Durable store — {N_VERSIONS} versions of a "
        f"{payload_bytes:,d}-byte payload, {N_BATCHES}-batch stream",
        f"{'operation':<22s} {'ms':>10s}",
    ]
    for name, value in timings.items():
        lines.append(f"{name:<22s} {value:>10.2f}")
    lines.append(
        f"compact reclaimed {size_before - size_after:,d} bytes "
        f"({size_before:,d} -> {size_after:,d})"
    )
    lines.append(f"checkpoint state: {state_bytes:,d} bytes")
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("store.txt", artifact)

    append_run(
        TRAJECTORY_PATH,
        "store",
        "store_roundtrip",
        base_record(
            payload_bytes=payload_bytes,
            n_versions=N_VERSIONS,
            n_batches=N_BATCHES,
            **{name: round(value, 3) for name, value in timings.items()},
            compact_reclaimed_bytes=size_before - size_after,
            checkpoint_state_bytes=state_bytes,
        ),
    )

    # The durability tax must stay well under mining cost: a checkpoint
    # round trip is a few dozen ms at this scale, not seconds.
    assert timings["checkpoint_ms"] < 1000.0
    assert timings["sqlite_load_ms"] < 1000.0
