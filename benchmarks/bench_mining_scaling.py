"""Mining scaling — FP-Growth vs Apriori vs closed mining, sets vs bitsets.

Not a paper table, but the substrate claim behind §5.2's choice of
FP-Growth with closed itemsets: on dense report data, FP-Growth beats
the level-wise baseline and closed mining keeps the output (and with it
rule generation) small. Grouped pytest-benchmark entries make the
comparison readable in one table.

Two set-vs-bitset groups track the bitset-native mining core:

- ``closed-miner`` — the set-based reference closed miner against the
  production bitmask miner (conditional candidate lists, fused closure
  scan) on the same fixture, same thresholds, byte-identical output.
- ``support-oracle`` — frozenset intersection vs raw
  :class:`~repro.mining.bitsets.BitsetIndex` vs the memoized
  :class:`~repro.mining.bitsets.SupportOracle` on a repeated-query
  workload shaped like MCAC construction.

``test_trajectory_set_vs_bitset`` measures both miners directly (plain
``perf_counter``, so it also runs under ``--benchmark-disable`` in the
CI smoke job) and appends a before/after record to ``BENCH_mining.json``
at the repository root — the perf trajectory of the mining core across
PRs, with branch/closure counters alongside wall-clock so speedups are
attributable to pruning, not machine luck.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._trajectory import REPO_ROOT, append_run, base_record
from repro.mining import apriori, fpclose, fpclose_reference, fpgrowth
from repro.mining.bitsets import BitsetIndex, SupportOracle
from repro.obs import MetricsRegistry
from repro.obs.metrics import use_registry

MIN_SUPPORT = 5
MAX_LEN = 6

TRAJECTORY_PATH = REPO_ROOT / "BENCH_mining.json"


@pytest.fixture(scope="module")
def database(quarter_datasets):
    return quarter_datasets["2014Q1"].encode().database


def _mcac_style_queries(database):
    """A support workload shaped like MCAC building: repeated subsets."""
    items = sorted(database.items_present())[:40]
    pairs = [
        frozenset({items[i], items[j]})
        for i in range(0, 40, 4)
        for j in range(1, 40, 4)
        if items[i] != items[j]
    ]
    # MCACs re-ask the same subset supports across clusters; repeat the
    # workload so memoization has something to memoize.
    return pairs * 3


@pytest.mark.benchmark(group="miner-comparison")
def test_scaling_fpgrowth(benchmark, database):
    result = benchmark(lambda: fpgrowth(database, MIN_SUPPORT, max_len=MAX_LEN))
    assert result


@pytest.mark.benchmark(group="miner-comparison")
def test_scaling_apriori(benchmark, database):
    result = benchmark.pedantic(
        lambda: apriori(database, MIN_SUPPORT, max_len=MAX_LEN),
        rounds=3,
        iterations=1,
    )
    assert result


@pytest.mark.benchmark(group="miner-comparison")
def test_scaling_fpclose(benchmark, database):
    result = benchmark(lambda: fpclose(database, MIN_SUPPORT, max_len=MAX_LEN))
    assert result


@pytest.mark.benchmark(group="closed-miner")
def test_closed_miner_sets(benchmark, database):
    result = benchmark.pedantic(
        lambda: fpclose_reference(database, MIN_SUPPORT, max_len=MAX_LEN),
        rounds=3,
        iterations=1,
    )
    assert result


@pytest.mark.benchmark(group="closed-miner")
def test_closed_miner_bitsets(benchmark, database):
    result = benchmark(lambda: fpclose(database, MIN_SUPPORT, max_len=MAX_LEN))
    assert result


@pytest.mark.benchmark(group="support-oracle")
def test_support_sets(benchmark, database):
    queries = _mcac_style_queries(database)
    benchmark(lambda: [database.support(q) for q in queries])


@pytest.mark.benchmark(group="support-oracle")
def test_support_bitset_index(benchmark, database):
    index = BitsetIndex(database)
    queries = _mcac_style_queries(database)
    benchmark(lambda: [index.support(q) for q in queries])
    # cross-check agreement on this workload
    assert [index.support(q) for q in queries] == [
        database.support(q) for q in queries
    ]


@pytest.mark.benchmark(group="support-oracle")
def test_support_memoized_oracle(benchmark, database):
    queries = _mcac_style_queries(database)

    def fresh_oracle_pass():
        # A fresh oracle per round mirrors the pipeline: one cache per
        # run, warmed by the workload itself.
        oracle = SupportOracle(BitsetIndex(database))
        return [oracle.support(q) for q in queries]

    result = benchmark(fresh_oracle_pass)
    assert result == [database.support(q) for q in queries]


def test_miners_agree_and_closed_is_smaller(database):
    frequent = fpgrowth(database, MIN_SUPPORT, max_len=MAX_LEN)
    level_wise = apriori(database, MIN_SUPPORT, max_len=MAX_LEN)
    closed = fpclose(database, MIN_SUPPORT, max_len=MAX_LEN)
    assert {(fi.items, fi.support) for fi in frequent} == {
        (fi.items, fi.support) for fi in level_wise
    }
    assert len(closed) <= len(frequent)
    closed_sets = {fi.items for fi in closed}
    assert closed_sets <= {fi.items for fi in frequent}


def _best_of(fn, rounds):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_trajectory_set_vs_bitset(database):
    """Measure set vs bitset closed mining and append to BENCH_mining.json."""
    # Warm the shared mask table outside the timed region so both
    # miners are measured on equal footing (the reference build of the
    # vertical tidsets happened at database construction).
    database.item_masks()

    bitset_seconds, bitset_result = _best_of(
        lambda: fpclose(database, MIN_SUPPORT, max_len=MAX_LEN), rounds=3
    )
    set_seconds, set_result = _best_of(
        lambda: fpclose_reference(database, MIN_SUPPORT, max_len=MAX_LEN),
        rounds=2,
    )

    # Byte-identical mined output: same (itemset, support) pairs.
    assert {(fi.items, fi.support) for fi in bitset_result} == {
        (fi.items, fi.support) for fi in set_result
    }

    registry = MetricsRegistry()
    with use_registry(registry):
        fpclose(database, MIN_SUPPORT, max_len=MAX_LEN)
        fpclose_reference(database, MIN_SUPPORT, max_len=MAX_LEN)
    counters = registry.snapshot().counters

    speedup = set_seconds / bitset_seconds if bitset_seconds else float("inf")
    record = base_record(
        n_transactions=len(database),
        min_support=MIN_SUPPORT,
        max_len=MAX_LEN,
        n_closed_itemsets=len(bitset_result),
        seconds={
            "fpclose_set": round(set_seconds, 6),
            "fpclose_bitset": round(bitset_seconds, 6),
        },
        speedup_set_over_bitset=round(speedup, 2),
        counters={
            "set": {
                "branches": counters["fpclose_reference.branches"],
                "closure_calls": counters["fpclose_reference.closure_calls"],
                "closure_item_checks": counters[
                    "fpclose_reference.closure_item_checks"
                ],
            },
            "bitset": {
                "branches": counters["fpclose.branches"],
                "closure_calls": counters["fpclose.closure_calls"],
                "closure_item_checks": counters["fpclose.closure_item_checks"],
            },
        },
    )
    append_run(
        TRAJECTORY_PATH, "mining-perf", "mining-scaling/closed-miner", record
    )

    # The acceptance floor for this PR is 3×; assert a conservative 2×
    # so a loaded CI machine cannot flake the suite, while the recorded
    # trajectory documents the real ratio.
    assert speedup >= 2.0, f"bitset miner only {speedup:.2f}x faster"
