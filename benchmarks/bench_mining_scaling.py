"""Mining scaling — FP-Growth vs Apriori vs closed mining.

Not a paper table, but the substrate claim behind §5.2's choice of
FP-Growth with closed itemsets: on dense report data, FP-Growth beats
the level-wise baseline and closed mining keeps the output (and with it
rule generation) small. Grouped pytest-benchmark entries make the
comparison readable in one table.
"""

from __future__ import annotations

import pytest

from repro.mining import apriori, fpclose, fpgrowth

MIN_SUPPORT = 5
MAX_LEN = 6


@pytest.fixture(scope="module")
def database(quarter_datasets):
    return quarter_datasets["2014Q1"].encode().database


@pytest.mark.benchmark(group="miner-comparison")
def test_scaling_fpgrowth(benchmark, database):
    result = benchmark(lambda: fpgrowth(database, MIN_SUPPORT, max_len=MAX_LEN))
    assert result


@pytest.mark.benchmark(group="miner-comparison")
def test_scaling_apriori(benchmark, database):
    result = benchmark.pedantic(
        lambda: apriori(database, MIN_SUPPORT, max_len=MAX_LEN),
        rounds=3,
        iterations=1,
    )
    assert result


@pytest.mark.benchmark(group="miner-comparison")
def test_scaling_fpclose(benchmark, database):
    result = benchmark(lambda: fpclose(database, MIN_SUPPORT, max_len=MAX_LEN))
    assert result


@pytest.mark.benchmark(group="support-oracle")
def test_support_sets(benchmark, database):
    items = sorted(database.items_present())[:40]
    pairs = [
        frozenset({items[i], items[j]})
        for i in range(0, 40, 4)
        for j in range(1, 40, 4)
        if items[i] != items[j]
    ]
    benchmark(lambda: [database.support(pair) for pair in pairs])


@pytest.mark.benchmark(group="support-oracle")
def test_support_bitsets(benchmark, database):
    from repro.mining.bitsets import BitsetIndex

    index = BitsetIndex(database)
    items = sorted(database.items_present())[:40]
    pairs = [
        frozenset({items[i], items[j]})
        for i in range(0, 40, 4)
        for j in range(1, 40, 4)
        if items[i] != items[j]
    ]
    benchmark(lambda: [index.support(pair) for pair in pairs])
    # cross-check agreement on this workload
    assert [index.support(p) for p in pairs] == [
        database.support(p) for p in pairs
    ]


def test_miners_agree_and_closed_is_smaller(database):
    frequent = fpgrowth(database, MIN_SUPPORT, max_len=MAX_LEN)
    level_wise = apriori(database, MIN_SUPPORT, max_len=MAX_LEN)
    closed = fpclose(database, MIN_SUPPORT, max_len=MAX_LEN)
    assert {(fi.items, fi.support) for fi in frequent} == {
        (fi.items, fi.support) for fi in level_wise
    }
    assert len(closed) <= len(frequent)
    closed_sets = {fi.items for fi in closed}
    assert closed_sets <= {fi.items for fi in frequent}
