"""§5.4 case studies — recovery and validation of known interactions.

The paper validates three top-ranked Q1/Q2 interactions against the
literature: ibuprofen+metamizole → acute renal failure (WHO newsletter),
methotrexate+tacrolimus → drug ineffective (Drugs.com/DrugBank), and
Prevacid+Nexium → osteoporosis (therapeutic duplication). The synthetic
quarters plant exactly those signals, so the reproduction can check
*quantitatively* what the paper argues qualitatively:

- each planted genuine interaction is mined and ranks high under
  exclusiveness;
- the single-drug-dominated plants (the Table 3.1 asthma cluster,
  Tums+Zantac) rank markedly lower;
- the knowledge reference classifies the recovered case studies as
  known interactions, mirroring the paper's validation step.
"""

from __future__ import annotations

from repro.core import RankingMethod
from repro.knowledge import default_reference

from benchmarks.conftest import write_artifact

CASE_STUDIES = {
    ("IBUPROFEN", "METAMIZOLE"): "Case I  (WHO 2014)",
    ("METHOTREXATE", "PROGRAF"): "Case II (Drugs.com/DrugBank)",
    ("NEXIUM", "PREVACID"): "Case III (therapeutic duplication)",
}


def planted_rank_index(result, generator, spec, ranked):
    """Best normalized rank of the cluster matching a planted spec."""
    catalog = result.catalog
    drug_ids = {catalog.get_id(d) for d in spec.drugs}
    adr_ids = {catalog.get_id(a) for a in spec.adrs}
    if None in drug_ids or None in adr_ids:
        return None
    best = None
    for entry in ranked:
        target = entry.cluster.target
        if target.antecedent == frozenset(drug_ids) and (
            frozenset(adr_ids) & target.consequent
        ):
            best = entry.rank if best is None else min(best, entry.rank)
    return None if best is None else best / len(ranked)


def test_case_studies(benchmark, generators, mined_q1):
    generator = generators["2014Q1"]
    ranked = benchmark(
        lambda: mined_q1.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE)
    )

    reference = default_reference()
    lines = ["§5.4 case studies — planted-signal recovery (2014 Q1 synthetic)"]
    genuine_ranks, confounded_ranks = [], []
    for spec in generator.ground_truth():
        rank = planted_rank_index(mined_q1, generator, spec, ranked)
        label = CASE_STUDIES.get(tuple(sorted(spec.drugs)), "")
        novelty = reference.classify(spec.drugs, spec.adrs)
        lines.append(
            f"  {'GENUINE   ' if spec.is_genuine else 'CONFOUNDED'} "
            f"{'+'.join(spec.drugs):46s} "
            f"rank={'%5.1f%%' % (rank * 100) if rank is not None else ' none'} "
            f"[{novelty}] {label}"
        )
        if rank is not None:
            (genuine_ranks if spec.is_genuine else confounded_ranks).append(rank)
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("case_studies.txt", artifact)

    # Most genuine plants are mined and concentrated near the top.
    assert len(genuine_ranks) >= 4
    assert sum(1 for r in genuine_ranks if r < 1 / 3) >= len(genuine_ranks) / 2
    # Genuine interactions rank better on average than confounded ones.
    if confounded_ranks:
        mean_genuine = sum(genuine_ranks) / len(genuine_ranks)
        mean_confounded = sum(confounded_ranks) / len(confounded_ranks)
        assert mean_genuine < mean_confounded

    # The paper's validation step: the three case studies are known DDIs.
    for drugs in CASE_STUDIES:
        assert reference.is_known_combination(drugs)
