"""Table 5.1 — FAERS 2014 per-quarter statistics (reports / drugs / ADRs).

Paper (full-scale FAERS 2014 EXP extracts):

    =========  =======  =======  =======  =======
    ..          Q1       Q2       Q3       Q4
    Reports    126,755  138,278  121,725  121,490
    Drugs       37,661   37,780   33,133   32,721
    ADRs         9,079    9,324    9,418    9,234
    =========  =======  =======  =======  =======

This reproduction generates synthetic quarters scaled by ``SCALE``; the
shape claims that must hold at any scale: report counts track the
paper's quarter ratios, and distinct drugs ≫ distinct ADRs in every
quarter (FAERS's verbatim drug strings vastly outnumber MedDRA PTs).
"""

from __future__ import annotations

from repro.faers import SyntheticFAERSGenerator, quarter_config
from repro.faers.synthetic import PAPER_QUARTER_REPORTS

from benchmarks.conftest import QUARTERS, SCALE, write_artifact


def test_table_5_1(benchmark, quarter_datasets):
    # Benchmark the data-generation step for one quarter.
    config = quarter_config("2014Q1", scale=SCALE)
    benchmark(lambda: SyntheticFAERSGenerator(config).generate())

    rows = {quarter: ds.stats() for quarter, ds in quarter_datasets.items()}
    lines = [
        "Table 5.1 (synthetic, scale=%.3f) — paper counts in brackets" % SCALE,
        f"{'':10s}" + "".join(f"{q:>18s}" for q in QUARTERS),
        f"{'Reports':10s}"
        + "".join(
            f"{rows[q].n_reports:>8,d} [{PAPER_QUARTER_REPORTS[q]:,d}]"
            for q in QUARTERS
        ),
        f"{'Drugs':10s}" + "".join(f"{rows[q].n_drugs:>18,d}" for q in QUARTERS),
        f"{'ADRs':10s}" + "".join(f"{rows[q].n_adrs:>18,d}" for q in QUARTERS),
    ]
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("table_5_1.txt", artifact)

    # Shape assertions.
    for quarter in QUARTERS:
        stats = rows[quarter]
        expected = round(PAPER_QUARTER_REPORTS[quarter] * SCALE)
        assert stats.n_reports == expected
        assert stats.n_drugs > 2 * stats.n_adrs
    # Q2 is the biggest quarter in the paper; the scaled data preserves that.
    assert rows["2014Q2"].n_reports == max(r.n_reports for r in rows.values())
