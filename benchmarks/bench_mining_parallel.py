"""Sharded mining speedup — single process vs 2 and 4 workers.

The parallel layer's acceptance bar: on a benchmark-scale quarter,
``fpclose_sharded`` at 4 workers must produce byte-identical closed
itemsets to the in-process miner at ≥2× wall-clock speedup (pool
startup, pickling, and the tree merge all inside the measured time) —
and 4 workers must not regress against 2 workers. Appends the measured
trajectory, including the root-merge counters, to ``BENCH_mining.json``.

This uses a larger fixture than the shared ``SCALE`` quarters: at 2-3k
reports mining takes ~30 ms, where process startup dominates and no
parallel scheme can win; the speedup claim is only meaningful where
mining is the cost. Sharding helps superlinearly on the bitmask miner —
per-shard masks are ``N/k`` bits, so every AND inside a worker is
``k×`` cheaper than over the full database, and per-shard FP-trees are
smaller.

The 4-vs-2 gate carries a small tolerance because the two are expected
to *tie* on serial hardware: when the pool is narrower than the leaf
count, the scheduler coalesces the 4 shards into ``max(2, pool_size)``
regions mined at region thresholds (see :mod:`repro.parallel.miner`) —
on a 1-CPU runner that is structurally the same work as the 2-worker
plan, so 4 workers sit within measurement jitter of 2 rather than the
~1.4× regression the old single-level merge paid for its weakened
quarter-shard thresholds. Real multi-core machines run the full tree
and pull strictly ahead.

``test_trajectory_warm_vs_cold_refresh`` is the ISSUE-10 residency
gate: the same delta re-mine (the watch-refresh fixture — a small
touched-row batch over the benchmark corpus) through a fresh
``MiningPool`` versus one whose workers already hold the shard rows.
The warm path must win ≥1.3× on multi-core runners (tie tolerance on
serial ones); the record carries the pool counters, the per-node
dataflow timeline, and ``cpu_count``.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks._trajectory import REPO_ROOT, append_run, base_record
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.mining.fpclose import fpclose
from repro.mining.transactions import canonical_itemset_order
from repro.obs import InMemorySink, MetricsRegistry
from repro.obs.metrics import use_registry
from repro.parallel import MiningPool, fpclose_sharded, plan_shards

MIN_SUPPORT = 5
MAX_LEN = 6
BENCH_SCALE = 0.1  # ~12.7k reports: mining seconds, not milliseconds

TRAJECTORY_PATH = REPO_ROOT / "BENCH_mining.json"

# Serial runners coalesce 4 shards down to the 2-worker shape, so the
# honest expectation there is a tie; the gate allows jitter on a tie
# while still catching a structural regression like the old one.
REGRESSION_TOLERANCE = 1.10

#: Root-merge counters worth tracking across PRs (per worker count).
MERGE_COUNTERS = (
    "parallel.merge.candidates",
    "parallel.merge.summed",
    "parallel.merge.reintersections",
    "parallel.merge.pruned_dead",
    "parallel.merge.globally_frequent",
    "parallel.pair.candidates",
    "parallel.pair.bound_kills",
)


@pytest.fixture(scope="module")
def bench_dataset():
    generator = SyntheticFAERSGenerator(
        quarter_config("2014Q1", scale=BENCH_SCALE)
    )
    return ReportDataset(generator.generate())


def _best_of(fn, rounds):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_trajectory_sharded_speedup(bench_dataset):
    database = bench_dataset.encode().database
    database.item_masks()  # warm the shared mask table for all paths

    single_seconds, single = _best_of(
        lambda: canonical_itemset_order(
            fpclose(database, MIN_SUPPORT, max_len=MAX_LEN)
        ),
        rounds=2,
    )

    sharded_seconds = {}
    merge_counters = {}
    for n_workers in (2, 4):
        plan = plan_shards(bench_dataset, n_workers, "hash")
        seconds, sharded = _best_of(
            lambda: fpclose_sharded(
                database,
                MIN_SUPPORT,
                max_len=MAX_LEN,
                n_workers=n_workers,
                plan=plan,
            ),
            rounds=2,
        )
        # Identical output is a precondition of calling this a speedup.
        assert sharded == single
        sharded_seconds[n_workers] = seconds
        # One extra instrumented (untimed) run captures the merge-tree
        # counters without polluting the measured rounds.
        registry = MetricsRegistry()
        with use_registry(registry):
            fpclose_sharded(
                database,
                MIN_SUPPORT,
                max_len=MAX_LEN,
                n_workers=n_workers,
                plan=plan,
            )
        counters = registry.snapshot().counters
        merge_counters[n_workers] = {
            name.removeprefix("parallel."): counters[name]
            for name in MERGE_COUNTERS
            if name in counters
        }

    speedup_2 = single_seconds / sharded_seconds[2]
    speedup_4 = single_seconds / sharded_seconds[4]
    record = base_record(
        n_transactions=len(database),
        min_support=MIN_SUPPORT,
        max_len=MAX_LEN,
        cpu_count=os.cpu_count(),
        n_closed_itemsets=len(single),
        seconds={
            "fpclose_single": round(single_seconds, 6),
            "sharded_2_workers": round(sharded_seconds[2], 6),
            "sharded_4_workers": round(sharded_seconds[4], 6),
        },
        speedup_2_workers=round(speedup_2, 2),
        speedup_4_workers=round(speedup_4, 2),
        merge_counters={
            str(n): merge_counters[n] for n in sorted(merge_counters)
        },
    )
    append_run(
        TRAJECTORY_PATH, "mining-perf", "mining-parallel/sharded", record
    )

    # ≥2× at 4 workers is the PR-4 acceptance criterion; the recorded
    # trajectory documents the (usually much higher) real ratio.
    assert speedup_4 >= 2.0, f"4-worker sharding only {speedup_4:.2f}x faster"
    # The 4-worker regression gate: more workers must never cost more
    # than the tolerance over fewer (ties are expected on serial boxes,
    # see the module docstring).
    assert (
        sharded_seconds[4] <= sharded_seconds[2] * REGRESSION_TOLERANCE
    ), (
        f"4-worker run ({sharded_seconds[4]:.3f}s) regressed beyond "
        f"{REGRESSION_TOLERANCE:.2f}x of the 2-worker run "
        f"({sharded_seconds[2]:.3f}s)"
    )


# The watch-refresh fixture: how many rows one surveillance batch
# touches. Small relative to the corpus (the whole point of delta
# re-mining) but enough to touch every shard.
N_TOUCHED_ROWS = 32

# Warm-vs-cold gate: a persistent pool must beat a fresh pool on the
# same delta re-mine by ≥1.3× on any multi-core runner (locally this is
# several-fold — the pool spawn, row pickling, and worker-side index
# builds all drop out). Serial runners still skip the spawn/shipping
# cost, but allow a tie-with-jitter floor rather than a speedup claim.
WARM_GATE_MULTI_CORE = 1.3
WARM_GATE_SERIAL = 0.9


def test_trajectory_warm_vs_cold_refresh(bench_dataset):
    """Repeated mines over a persistent pool: the ISSUE-10 warm gate."""
    database = bench_dataset.encode().database
    database.item_masks()
    n_workers = 4
    plan = plan_shards(bench_dataset, n_workers, "hash")
    step = max(1, len(database) // N_TOUCHED_ROWS)
    touched_mask = 0
    for tid in range(0, len(database), step):
        touched_mask |= 1 << tid

    expected = canonical_itemset_order(
        fpclose(database, MIN_SUPPORT, max_len=MAX_LEN, touched_mask=touched_mask)
    )

    def cold_remine():
        # A process without a persistent pool: spawn, ship every shard
        # row, build worker-side state, then mine the delta.
        with MiningPool(n_workers) as pool:
            return fpclose_sharded(
                database,
                MIN_SUPPORT,
                max_len=MAX_LEN,
                n_workers=n_workers,
                plan=plan,
                pool=pool,
                touched_mask=touched_mask,
            )

    cold_seconds, cold = _best_of(cold_remine, rounds=2)
    assert cold == expected

    with MiningPool(n_workers) as warm_pool:
        # Prime: the watch loop's previous full mine leaves the rows
        # resident under the database fingerprint.
        primed = fpclose_sharded(
            database,
            MIN_SUPPORT,
            max_len=MAX_LEN,
            n_workers=n_workers,
            plan=plan,
            pool=warm_pool,
        )
        assert primed == canonical_itemset_order(
            fpclose(database, MIN_SUPPORT, max_len=MAX_LEN)
        )

        warm_seconds, warm = _best_of(
            lambda: fpclose_sharded(
                database,
                MIN_SUPPORT,
                max_len=MAX_LEN,
                n_workers=n_workers,
                plan=plan,
                pool=warm_pool,
                touched_mask=touched_mask,
            ),
            rounds=2,
        )
        assert warm == expected == cold

        # One instrumented warm pass records the per-node timeline and
        # the pool counters without polluting the measured rounds.
        sink = InMemorySink()
        registry = MetricsRegistry(sink=sink)
        with use_registry(registry):
            fpclose_sharded(
                database,
                MIN_SUPPORT,
                max_len=MAX_LEN,
                n_workers=n_workers,
                plan=plan,
                pool=warm_pool,
                touched_mask=touched_mask,
            )
        pool_counters = dict(warm_pool.counters)
    timeline = [
        {
            "node": record["node"],
            "kind": record["kind"],
            "queue_depth": record["queue_depth"],
            "t_submit": record["t_submit"],
            "t_done": record["t_done"],
            "seconds": record["seconds"],
        }
        for record in sink.of_type("parallel.node")
    ]

    warm_speedup = cold_seconds / warm_seconds
    record = base_record(
        n_transactions=len(database),
        min_support=MIN_SUPPORT,
        max_len=MAX_LEN,
        cpu_count=os.cpu_count(),
        n_workers=n_workers,
        n_touched_rows=touched_mask.bit_count(),
        n_delta_closed=len(warm),
        seconds={
            "cold_remine": round(cold_seconds, 6),
            "warm_remine": round(warm_seconds, 6),
        },
        warm_speedup=round(warm_speedup, 2),
        pool_counters=pool_counters,
        timeline=timeline,
    )
    append_run(
        TRAJECTORY_PATH, "mining-perf", "mining-parallel/warm-refresh", record
    )

    gate = (
        WARM_GATE_MULTI_CORE
        if (os.cpu_count() or 1) > 1
        else WARM_GATE_SERIAL
    )
    assert warm_speedup >= gate, (
        f"warm re-mine only {warm_speedup:.2f}x faster than cold "
        f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s; gate {gate}x)"
    )
