"""Sharded mining speedup — single process vs 2 and 4 workers.

The parallel layer's acceptance bar: on a benchmark-scale quarter,
``fpclose_sharded`` at 4 workers must produce byte-identical closed
itemsets to the in-process miner at ≥2× wall-clock speedup (pool
startup, pickling, and the exact merge all inside the measured time).
Appends the measured trajectory to ``BENCH_mining.json``.

This uses a larger fixture than the shared ``SCALE`` quarters: at 2-3k
reports mining takes ~30 ms, where process startup dominates and no
parallel scheme can win; the speedup claim is only meaningful where
mining is the cost. Sharding helps superlinearly on the bitmask miner —
per-shard masks are ``N/k`` bits, so every AND inside a worker is
``k×`` cheaper than over the full database, and per-shard FP-trees are
smaller — which is why the ≥2× floor holds even on a single core with
the workers fully serialized (measured 2.7× at 4 workers on 1 CPU);
real multi-core machines add the parallel overlap on top.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.mining.fpclose import fpclose
from repro.mining.transactions import canonical_itemset_order
from repro.parallel import fpclose_sharded, plan_shards

MIN_SUPPORT = 5
MAX_LEN = 6
BENCH_SCALE = 0.1  # ~12.7k reports: mining seconds, not milliseconds

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_mining.json"


@pytest.fixture(scope="module")
def bench_dataset():
    generator = SyntheticFAERSGenerator(
        quarter_config("2014Q1", scale=BENCH_SCALE)
    )
    return ReportDataset(generator.generate())


def _best_of(fn, rounds):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_trajectory_sharded_speedup(bench_dataset):
    database = bench_dataset.encode().database
    database.item_masks()  # warm the shared mask table for all paths

    single_seconds, single = _best_of(
        lambda: canonical_itemset_order(
            fpclose(database, MIN_SUPPORT, max_len=MAX_LEN)
        ),
        rounds=2,
    )

    sharded_seconds = {}
    for n_workers in (2, 4):
        plan = plan_shards(bench_dataset, n_workers, "hash")
        seconds, sharded = _best_of(
            lambda: fpclose_sharded(
                database,
                MIN_SUPPORT,
                max_len=MAX_LEN,
                n_workers=n_workers,
                plan=plan,
            ),
            rounds=2,
        )
        # Identical output is a precondition of calling this a speedup.
        assert sharded == single
        sharded_seconds[n_workers] = seconds

    speedup_2 = single_seconds / sharded_seconds[2]
    speedup_4 = single_seconds / sharded_seconds[4]
    record = {
        "benchmark": "mining-parallel/sharded",
        "label": os.environ.get("BENCH_LABEL", "local"),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "n_transactions": len(database),
        "min_support": MIN_SUPPORT,
        "max_len": MAX_LEN,
        "n_closed_itemsets": len(single),
        "seconds": {
            "fpclose_single": round(single_seconds, 6),
            "sharded_2_workers": round(sharded_seconds[2], 6),
            "sharded_4_workers": round(sharded_seconds[4], 6),
        },
        "speedup_4_workers": round(speedup_4, 2),
        "speedup_2_workers": round(speedup_2, 2),
    }

    trajectory = {"benchmark": "mining-scaling/closed-miner", "runs": []}
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text(encoding="utf-8"))
    trajectory["runs"].append(record)
    TRAJECTORY_PATH.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )

    # ≥2× at 4 workers is the PR's acceptance criterion; the recorded
    # trajectory documents the (usually much higher) real ratio.
    assert speedup_4 >= 2.0, f"4-worker sharding only {speedup_4:.2f}x faster"
