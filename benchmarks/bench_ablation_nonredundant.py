"""Ablation — rule-space compression via minimal-generator rules.

The theory the paper's closed-mining step stands on (refs [6], [30]):
the non-redundant rule set (minimal-generator antecedents, closure-class
consequents) is a lossless fraction of the traditional rule space. The
ablation measures the redundancy ratio at several supports on a slice
of a quarter — small slice, because the traditional rule space is the
exponential thing being demonstrated.
"""

from __future__ import annotations

from repro.mining import (
    fpclose,
    fpgrowth,
    generate_rules,
    non_redundant_rules,
    redundancy_ratio,
)
from repro.mining.transactions import TransactionDatabase

from benchmarks.conftest import write_artifact

SUPPORTS = (6, 10, 15)
MAX_LEN = 5
SLICE = 800


def test_nonredundant_compression(benchmark, quarter_datasets):
    dataset = quarter_datasets["2014Q1"]
    encoded = type(dataset)(dataset.reports[:SLICE]).encode()
    database = encoded.database

    benchmark(
        lambda: non_redundant_rules(
            database, fpclose(database, SUPPORTS[0], max_len=MAX_LEN)
        )
    )

    lines = [
        "Ablation — non-redundant (minimal-generator) rules vs traditional",
        f"{'support':>8s} {'traditional':>12s} {'non-redundant':>14s} {'redundant':>10s}",
    ]
    for support in SUPPORTS:
        closed = fpclose(database, support, max_len=MAX_LEN)
        frequent = fpgrowth(database, support, max_len=MAX_LEN)
        traditional = generate_rules(frequent, database)
        compact = non_redundant_rules(database, closed)
        ratio = redundancy_ratio(len(traditional), len(compact))
        lines.append(
            f"{support:>8d} {len(traditional):>12,d} {len(compact):>14,d} "
            f"{ratio:>9.1%}"
        )
        assert len(compact) <= len(traditional)
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("ablation_nonredundant.txt", artifact)
