"""Fig 5.2 — user study: contextual glyph vs bar-chart accuracy.

The paper's 50 subjects identified the top-ranked interaction with the
contextual glyph faster and more accurately than with bar-charts: 71 %
(two drugs), 57 % (three), 86 % (four) with the glyph, lower with
bar-charts in every condition. The reproduction replays the protocol
with simulated annotators (explicit perception model, see
``repro.userstudy.perception``); the shape claim is glyph > bar-chart
at every drug count, with both accuracies in a plausible human band.
"""

from __future__ import annotations

from repro.userstudy import UserStudy, build_questions

from benchmarks.conftest import write_artifact

PAPER_GLYPH = {2: 0.71, 3: 0.57, 4: 0.86}


def test_fig_5_2(benchmark, mined_study):
    questions = build_questions(mined_study.clusters, drug_counts=(2, 3, 4))
    study = UserStudy(n_annotators=50)
    result = benchmark(lambda: study.run(questions))

    glyph = result.series("contextual-glyph")
    barchart = result.series("bar-chart")
    glyph_time = result.time_series("contextual-glyph")
    barchart_time = result.time_series("bar-chart")
    lines = [
        "Fig 5.2 — simulated user study (50 annotators), % correct / mean seconds",
        f"{'#drugs':>8s} {'glyph':>8s} {'barchart':>10s} {'paper glyph':>12s}"
        f" {'glyph s':>9s} {'barchart s':>11s}",
    ]
    for n_drugs in sorted(glyph):
        paper = PAPER_GLYPH.get(n_drugs)
        lines.append(
            f"{n_drugs:>8d} {glyph[n_drugs]:>8.0%} {barchart[n_drugs]:>10.0%}"
            f" {('%.0f%%' % (paper * 100)) if paper else '':>12s}"
            f" {glyph_time[n_drugs]:>9.1f} {barchart_time[n_drugs]:>11.1f}"
        )
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("fig_5_2.txt", artifact)
    from benchmarks.conftest import OUT_DIR
    from repro.viz import render_fig_5_2

    render_fig_5_2(glyph, barchart).save(OUT_DIR / "fig_5_2.svg")

    assert set(glyph) >= {2, 3}, "study must cover at least 2- and 3-drug questions"
    for n_drugs in glyph:
        assert glyph[n_drugs] > barchart[n_drugs], n_drugs
        # Plausible human accuracy band, not ceiling or chance (4 options
        # → 25 % chance).
        assert 0.30 < glyph[n_drugs] <= 1.0
        assert barchart[n_drugs] > 0.25
        # §5.4.1's speed claim: glyph readers answer faster.
        assert glyph_time[n_drugs] < barchart_time[n_drugs]
