"""Baseline comparison — exclusiveness vs the related-work detectors.

The paper's argument against prior art (§1.2, §6): raw strength measures
and context-free multi-item methods surface combinations whose ADRs are
really single-drug effects. With planted ground truth this becomes
measurable: rank the mined multi-drug rules with each method and score
**precision@k** against the genuine planted interactions, counting a
hit when a top-k rule's drug set is exactly a genuine planted
combination and its consequent carries a planted ADR. Expected shape:
exclusiveness ≥ improvement > confidence/lift, and the Harpaz RRR
baseline (no context filtering) below exclusiveness.
"""

from __future__ import annotations

from repro.core import RankingMethod
from repro.core.ranking import rank_clusters
from repro.signals import harpaz_multi_item_signals

from benchmarks.conftest import write_artifact

K = 40


def genuine_keys(generator, catalog):
    keys = set()
    for spec in generator.ground_truth():
        if not spec.is_genuine:
            continue
        drug_ids = {catalog.get_id(d) for d in spec.drugs}
        adr_ids = {catalog.get_id(a) for a in spec.adrs}
        if None in drug_ids or None in adr_ids:
            continue
        keys.add((frozenset(drug_ids), frozenset(adr_ids)))
    return keys


def hits_at_k(rules, keys, k):
    count = 0
    for rule in rules[:k]:
        for drug_ids, adr_ids in keys:
            if rule.antecedent == drug_ids and rule.consequent & adr_ids:
                count += 1
                break
    return count


def test_baseline_recovery(benchmark, generators, mined_q1):
    generator = generators["2014Q1"]
    catalog = mined_q1.catalog
    keys = genuine_keys(generator, catalog)
    assert len(keys) >= 5

    methods = {
        "exclusiveness(conf)": RankingMethod.EXCLUSIVENESS_CONFIDENCE,
        "exclusiveness(lift)": RankingMethod.EXCLUSIVENESS_LIFT,
        "improvement": RankingMethod.IMPROVEMENT,
        "confidence": RankingMethod.CONFIDENCE,
        "lift": RankingMethod.LIFT,
    }
    benchmark(
        lambda: rank_clusters(
            mined_q1.clusters, RankingMethod.EXCLUSIVENESS_CONFIDENCE
        )
    )

    hits = {}
    for name, method in methods.items():
        ranked = rank_clusters(mined_q1.clusters, method)
        hits[name] = hits_at_k(
            [entry.cluster.target for entry in ranked], keys, K
        )

    harpaz = harpaz_multi_item_signals(
        mined_q1.encoded.database, min_support=5, max_itemset_len=6
    )
    hits["harpaz-RRR"] = hits_at_k([signal.rule for signal in harpaz], keys, K)

    lines = [
        f"Baseline comparison — planted genuine interactions in top-{K}",
        f"{'method':>22s} {'hits@%d' % K:>8s}",
    ]
    for name, count in sorted(hits.items(), key=lambda kv: -kv[1]):
        lines.append(f"{name:>22s} {count:>8d}")
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("baseline_recovery.txt", artifact)

    # Shape claims, measure-matched (the paper's argument is that the
    # *context* around a measure improves it, not that one raw measure
    # beats another): exclusiveness-with-X recovers at least as many
    # planted signals as raw X, strictly more for confidence; and the
    # context-aware family is no worse than the context-free RRR
    # baseline.
    assert hits["exclusiveness(conf)"] > hits["confidence"]
    assert hits["exclusiveness(lift)"] >= hits["lift"]
    context_best = max(
        hits["exclusiveness(conf)"],
        hits["exclusiveness(lift)"],
        hits["improvement"],
    )
    assert context_best >= hits["harpaz-RRR"]
    assert hits["exclusiveness(conf)"] >= 3
