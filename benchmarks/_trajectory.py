"""Shared writer for the ``BENCH_*.json`` perf-trajectory files.

Each trajectory file is ``{"suite": <file id>, "runs": [...]}`` where
**every run carries its own** ``"benchmark"`` **field** naming the
benchmark that produced it. The earlier per-file layout put a single
top-level ``"benchmark"`` key on the file, which silently mislabelled
runs appended by *other* benchmark modules sharing the file (the
sharded-mining run in ``BENCH_mining.json`` had to nest its own id to
stay identifiable). :func:`append_run` migrates such legacy files in
place: the old top-level id is pushed down onto every run that lacks
one, then replaced by a neutral ``"suite"`` id.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

#: Repository root (the trajectory files live next to README.md).
REPO_ROOT = Path(__file__).resolve().parent.parent


def base_record(**fields) -> dict:
    """The boilerplate every run record shares: label + timestamp."""
    return {
        "label": os.environ.get("BENCH_LABEL", "local"),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **fields,
    }


def append_run(path: Path, suite: str, benchmark: str, record: dict) -> None:
    """Append one run (tagged with its benchmark id) to a trajectory file."""
    trajectory: dict = {"suite": suite, "runs": []}
    if path.exists():
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    legacy = trajectory.pop("benchmark", None)
    if legacy is not None:
        # Legacy layout: one file-level id, runs largely untagged.
        trajectory.setdefault("suite", suite)
        for run in trajectory.get("runs", []):
            run.setdefault("benchmark", legacy)
    entry = {"benchmark": benchmark, **record}
    entry["benchmark"] = benchmark
    trajectory.setdefault("runs", []).append(entry)
    path.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )
