"""Ablation — the context decay function fd(k) (Eq. 3.5).

The paper weights contextual levels by a linear decay
``1 − (k−1)/n`` — the single-drug context matters most. The ablation
swaps in no decay and exponential decay and measures planted-signal
recovery. Expected shape: all three variants recover the genuine
signals (the decay refines rather than makes the measure), with the
differences concentrated on clusters of 3+ drugs where multiple
context levels exist.
"""

from __future__ import annotations

from repro.core import RankingMethod
from repro.core.exclusiveness import DECAY_FUNCTIONS
from repro.core.ranking import rank_clusters

from benchmarks.bench_ablation_theta import mean_rank
from benchmarks.conftest import write_artifact


def test_decay_ablation(benchmark, generators, mined_q1):
    generator = generators["2014Q1"]
    benchmark(
        lambda: rank_clusters(
            mined_q1.clusters,
            RankingMethod.EXCLUSIVENESS_CONFIDENCE,
            decay="linear",
        )
    )

    lines = [
        "Ablation — decay function fd(k)",
        f"{'decay':>12s} {'mean genuine rank':>18s} {'mean confounded rank':>21s}",
    ]
    results = {}
    for decay in sorted(DECAY_FUNCTIONS):
        ranked = rank_clusters(
            mined_q1.clusters,
            RankingMethod.EXCLUSIVENESS_CONFIDENCE,
            decay=decay,
        )
        genuine = mean_rank(generator, mined_q1, ranked, genuine=True)
        confounded = mean_rank(generator, mined_q1, ranked, genuine=False)
        results[decay] = (genuine, confounded, ranked)
        lines.append(
            f"{decay:>12s} {genuine:>17.1%} "
            f"{confounded if confounded is None else '%.1f%%' % (confounded * 100):>21}"
        )
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("ablation_decay.txt", artifact)

    for decay, (genuine, confounded, _) in results.items():
        assert genuine is not None and genuine < 0.45, decay
        if confounded is not None:
            assert genuine < confounded, decay

    # The decays genuinely change multi-level orderings: the rankings of
    # 3+-drug clusters are not all identical across variants.
    def multi_level_order(ranked):
        return tuple(
            entry.cluster.target.items
            for entry in ranked
            if entry.cluster.n_drugs >= 3
        )

    orders = {decay: multi_level_order(r) for decay, (_, _, r) in results.items()}
    assert len(set(orders.values())) > 1
