"""Table 5.2 — top-5 multi-drug associations from 2014 Q1, four rankings.

The paper ranks Q1's multi-drug rules by confidence, lift,
exclusiveness-with-confidence and exclusiveness-with-lift. Two shape
claims carry over to any data of the same texture:

- the four columns disagree (the exclusiveness columns are not a
  reordering of the raw-measure columns);
- the exclusiveness columns surface rules whose contexts are weak,
  while the confidence column is free to surface dominated rules.
"""

from __future__ import annotations

from repro.core import RankingMethod
from repro.core.improvement import improvement
from repro.viz.report import ranking_markdown, top_k_table

from benchmarks.conftest import write_artifact


def test_table_5_2(benchmark, mined_q1):
    table = benchmark(lambda: mined_q1.ranking_table(top_k=5))

    artifact = (
        "Table 5.2 — top 5 multi-drug associations (2014 Q1 synthetic)\n\n"
        + top_k_table(table, mined_q1.catalog)
        + "\n\nmarkdown:\n"
        + ranking_markdown(table, mined_q1.catalog)
    )
    print("\n" + artifact)
    write_artifact("table_5_2.txt", artifact)

    columns = {
        method: [entry.cluster.target.items for entry in entries]
        for method, entries in table.items()
    }
    # The four columns must not all agree.
    assert columns[RankingMethod.CONFIDENCE] != columns[
        RankingMethod.EXCLUSIVENESS_CONFIDENCE
    ]
    assert columns[RankingMethod.LIFT] != columns[RankingMethod.EXCLUSIVENESS_LIFT]

    # Exclusiveness's top rules dominate their own contexts: positive
    # improvement for the top of the exclusiveness column.
    top_exclusive = table[RankingMethod.EXCLUSIVENESS_CONFIDENCE][0].cluster
    assert improvement(top_exclusive) > 0
