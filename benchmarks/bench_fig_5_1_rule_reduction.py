"""Fig 5.1 — reduction in number of rules, per quarter.

The paper plots three log-scale series per 2014 quarter:

- **Total Rules** — every rule a traditional association-rule miner
  generates (all splits of all frequent itemsets), ~10^6-10^7;
- **Filtered Rules** — the subset with drug-only antecedents and
  ADR-only consequents;
- **MCACs** — the closed multi-drug drug-ADR associations.

The absolute counts depend on the data scale; the *shape* that must
reproduce is each series sitting well below the previous one (orders of
magnitude between total and MCACs) in every quarter.
"""

from __future__ import annotations

from repro.core import Maras, MarasConfig
from repro.viz.report import rule_reduction_table

from benchmarks.conftest import QUARTERS, write_artifact


def test_fig_5_1(benchmark, quarter_datasets, mined_all):
    # Benchmark the full pipeline incl. the rule-space counting pass on Q1.
    maras = Maras(MarasConfig(min_support=5, clean=False, count_rule_space=True))
    benchmark.pedantic(
        lambda: maras.run(quarter_datasets["2014Q1"]), rounds=3, iterations=1
    )

    counts = {q: mined_all[q].rule_counts for q in QUARTERS}
    artifact = "Fig 5.1 — rule-space reduction\n" + rule_reduction_table(counts)
    print("\n" + artifact)
    write_artifact("fig_5_1.txt", artifact)
    from benchmarks.conftest import OUT_DIR
    from repro.viz import render_fig_5_1

    render_fig_5_1(counts).save(OUT_DIR / "fig_5_1.svg")

    for quarter in QUARTERS:
        row = counts[quarter]
        # The headline reduction: each stage cuts the space sharply.
        assert row.total_rules > 4 * row.filtered_rules
        assert row.filtered_rules > 2 * row.mcacs
        assert row.mcacs > 0
