"""Ablation — the CV-penalty strength θ (Eq. 3.4 / 3.5).

θ controls how hard a spread-out context (one strong sub-rule among
weak ones) is penalized. The ablation measures, per θ, how well the
exclusiveness ranking recovers the planted genuine interactions
(mean normalized rank, lower = better) and how it treats the planted
confounders. Expected shape: recovery is stable across θ (the measure
is not knife-edge in its one free parameter), and no θ makes the
confounders beat the genuine signals.
"""

from __future__ import annotations

from repro.core import RankingMethod
from repro.core.ranking import rank_clusters

from benchmarks.bench_case_studies import planted_rank_index
from benchmarks.conftest import write_artifact

THETAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def mean_rank(generator, result, ranked, genuine: bool):
    ranks = [
        rank
        for spec in generator.ground_truth()
        if spec.is_genuine is genuine
        and (rank := planted_rank_index(result, generator, spec, ranked))
        is not None
    ]
    return sum(ranks) / len(ranks) if ranks else None


def test_theta_ablation(benchmark, generators, mined_q1):
    generator = generators["2014Q1"]
    benchmark(
        lambda: rank_clusters(
            mined_q1.clusters, RankingMethod.EXCLUSIVENESS_CONFIDENCE, theta=0.5
        )
    )

    lines = [
        "Ablation — θ (CV penalty)",
        f"{'theta':>6s} {'mean genuine rank':>18s} {'mean confounded rank':>21s}",
    ]
    rows = []
    for theta in THETAS:
        ranked = rank_clusters(
            mined_q1.clusters,
            RankingMethod.EXCLUSIVENESS_CONFIDENCE,
            theta=theta,
        )
        genuine = mean_rank(generator, mined_q1, ranked, genuine=True)
        confounded = mean_rank(generator, mined_q1, ranked, genuine=False)
        rows.append((theta, genuine, confounded))
        lines.append(
            f"{theta:>6.2f} {genuine:>17.1%} "
            f"{confounded if confounded is None else '%.1f%%' % (confounded * 100):>21}"
        )
    artifact = "\n".join(str(line) for line in lines)
    print("\n" + artifact)
    write_artifact("ablation_theta.txt", artifact)

    for theta, genuine, confounded in rows:
        assert genuine is not None and genuine < 0.45, theta
        if confounded is not None:
            assert genuine < confounded, theta
