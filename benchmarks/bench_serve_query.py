"""Serving-layer query latency: indexed probes vs linear scans, LRU hits.

The ``repro.serve`` claim is architectural: every query endpoint
resolves through precomputed inverted indexes and a bounded LRU
response cache, so request latency is independent of how many clusters
a quarter mined. This benchmark pins that claim with three grouped
comparisons on one mined synthetic quarter:

- ``serve-lookup`` — drug-filtered listing answered by the engine's
  index probe vs a deliberately naive linear scan over all records
  (what the pre-serve ``MarasResult.search`` loop did per query);
- ``serve-page`` — unfiltered sorted page: precomputed best-first
  ordering vs sorting the full record list per request;
- ``serve-cache`` — the full engine on a repeated query mix, cold
  (cache cleared each round) vs warm (LRU absorbing the repeats).

``test_trajectory_serve_query`` measures the same three ratios with
plain ``perf_counter`` (so it survives ``--benchmark-disable``) and
appends a record to ``BENCH_serve.json`` at the repository root — the
perf trajectory of the serving core across PRs, with the observed LRU
hit rate alongside wall-clock.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._trajectory import REPO_ROOT, append_run, base_record
from repro.core import Maras, MarasConfig
from repro.serve import QueryEngine, ResultStore
from repro.serve.indexes import rank_positions

TRAJECTORY_PATH = REPO_ROOT / "BENCH_serve.json"

MIN_SUPPORT = 4
RUN = "2014Q1"


@pytest.fixture(scope="module")
def snapshot_store(quarter_datasets):
    result = Maras(MarasConfig(min_support=MIN_SUPPORT, clean=False)).run(
        quarter_datasets[RUN]
    )
    store = ResultStore()
    store.add_result(RUN, result)
    return store


@pytest.fixture(scope="module")
def records(snapshot_store):
    return snapshot_store.get(RUN).records


def _query_drugs(records, n=12):
    """A repeating drug workload biased toward busy drugs."""
    counts: dict[str, int] = {}
    for record in records:
        for drug in record["drugs"]:
            counts[drug] = counts.get(drug, 0) + 1
    ranked = sorted(counts, key=lambda d: (-counts[d], d))
    return ranked[:n]


def _linear_scan_drug(records, drug, sort="exclusiveness_confidence", limit=20):
    """What every drug query would cost without the inverted indexes."""
    positions = [p for p, r in enumerate(records) if drug in r["drugs"]]
    return rank_positions(records, positions, sort)[:limit]


def _indexed_drug(store, drug, sort="exclusiveness_confidence", limit=20):
    snapshot = store.get(RUN)
    positions = snapshot.indexes.by_drug.get(drug, ())
    return rank_positions(snapshot.records, positions, sort)[:limit]


@pytest.mark.benchmark(group="serve-lookup")
def test_lookup_linear_scan(benchmark, snapshot_store, records):
    drugs = _query_drugs(records)
    benchmark(lambda: [_linear_scan_drug(records, d) for d in drugs])


@pytest.mark.benchmark(group="serve-lookup")
def test_lookup_indexed(benchmark, snapshot_store, records):
    drugs = _query_drugs(records)
    result = benchmark(lambda: [_indexed_drug(snapshot_store, d) for d in drugs])
    # identical answers, indexed vs scanned
    assert result == [_linear_scan_drug(records, d) for d in drugs]


@pytest.mark.benchmark(group="serve-page")
def test_page_sort_per_request(benchmark, records):
    benchmark(
        lambda: rank_positions(records, range(len(records)), "lift")[:20]
    )


@pytest.mark.benchmark(group="serve-page")
def test_page_precomputed_order(benchmark, snapshot_store):
    indexes = snapshot_store.get(RUN).indexes
    result = benchmark(lambda: indexes.order_by["lift"][:20])
    assert list(result) == rank_positions(
        snapshot_store.get(RUN).records,
        range(len(snapshot_store.get(RUN).records)),
        "lift",
    )[:20]


def _request_mix(records):
    drugs = _query_drugs(records, n=6)
    mix = []
    for drug in drugs:
        mix.append({"drug": drug, "limit": 10})
    mix.append({"sort": "lift", "limit": 20})
    mix.append({"sort": "support", "limit": 20})
    # front-ends repeat the same queries; the mix models that
    return mix * 8


@pytest.mark.benchmark(group="serve-cache")
def test_engine_cold_cache(benchmark, snapshot_store, records):
    mix = _request_mix(records)
    engine = QueryEngine(snapshot_store)

    def cold_pass():
        engine.cache.clear()
        return [engine.associations(**params) for params in mix]

    benchmark(cold_pass)


@pytest.mark.benchmark(group="serve-cache")
def test_engine_warm_cache(benchmark, snapshot_store, records):
    mix = _request_mix(records)
    engine = QueryEngine(snapshot_store)
    [engine.associations(**params) for params in mix]  # warm it
    benchmark(lambda: [engine.associations(**params) for params in mix])


def _best_of(fn, rounds):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_trajectory_serve_query(snapshot_store, records):
    """Measure indexed vs scan latency and LRU hit rate; append trajectory.

    The index-vs-scan ratio times candidate *resolution* — the part the
    inverted index replaces. Ranking the (small) candidate list costs
    the same on both paths and would only dilute the measured ratio.
    """
    drugs = _query_drugs(records)
    by_drug = snapshot_store.get(RUN).indexes.by_drug
    indexed_seconds, indexed_result = _best_of(
        lambda: [by_drug.get(d, ()) for d in drugs], rounds=5
    )
    scan_seconds, scan_result = _best_of(
        lambda: [
            tuple(p for p, r in enumerate(records) if d in r["drugs"])
            for d in drugs
        ],
        rounds=3,
    )
    assert indexed_result == scan_result

    mix = _request_mix(records)
    engine = QueryEngine(snapshot_store)
    cold_seconds, _ = _best_of(
        lambda: (engine.cache.clear(), [engine.associations(**p) for p in mix]),
        rounds=3,
    )
    engine.cache.clear()
    [engine.associations(**params) for params in mix]  # warm
    warm_seconds, _ = _best_of(
        lambda: [engine.associations(**params) for params in mix], rounds=5
    )
    hit_rate = engine.cache.stats().hit_rate

    speedup_scan = scan_seconds / indexed_seconds if indexed_seconds else float("inf")
    speedup_cache = cold_seconds / warm_seconds if warm_seconds else float("inf")
    record = base_record(
        n_clusters=len(records),
        n_query_drugs=len(drugs),
        request_mix_size=len(mix),
        seconds={
            "drug_lookup_scan": round(scan_seconds, 6),
            "drug_lookup_indexed": round(indexed_seconds, 6),
            "mix_cold_cache": round(cold_seconds, 6),
            "mix_warm_cache": round(warm_seconds, 6),
        },
        speedup_scan_over_indexed=round(speedup_scan, 2),
        speedup_cold_over_warm=round(speedup_cache, 2),
        lru_hit_rate=round(hit_rate, 4),
    )
    append_run(TRAJECTORY_PATH, "serve-perf", "serve-query", record)

    # Conservative floors so a loaded CI machine cannot flake the
    # suite; the trajectory documents the real ratios.
    assert speedup_scan >= 2.0, f"indexed lookup only {speedup_scan:.2f}x faster"
    assert hit_rate >= 0.5, f"LRU hit rate only {hit_rate:.0%} on a repeated mix"
