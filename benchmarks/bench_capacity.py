"""Million-report capacity: streaming ingest throughput and memory honesty.

The paper's motivating regime (§1.1) is a database growing by thousands
of reports a day — a year of real FAERS is north of a million cases. The
rest of the benchmark suite measures *quality* at small scale; this one
measures *capacity*: can the streaming tier
(:meth:`~repro.faers.synthetic.SyntheticFAERSGenerator.iter_reports` →
:func:`~repro.faers.ingest.encode_stream` → :func:`~repro.mining.fpclose
.fpclose`) push a million synthetic reports through parse → clean →
encode → mine on one CPU without ever holding the raw stream?

Per tier the run records reports/sec per stage and the stage-attributed
peak RSS (:class:`~repro.obs.memory.MemorySampler`; stages interleave
chunk-by-chunk, so "parse" and "ingest" are sampled at chunk
granularity, and clean/encode wall time is split out of the ingest
timers). Memory honesty is asserted, not just reported: the transient
overhead of the ingest pass — peak RSS while streaming minus RSS once
the retained database is built — must stay under
:data:`TRANSIENT_RSS_LIMIT` (256 MiB). A silently materialized raw
list costs ~380 MiB at the million tier and trips this immediately; the
retained encoded state itself (≈1.3 KiB/report) is *supposed* to grow
and is reported, not capped. ``tests/faers/test_streaming_memory.py``
enforces the same bound at the 200k test tier on every CI run.

Tiers: 100k always (the CI ``capacity-smoke`` job); 500k and 1M only
under ``BENCH_CAPACITY_FULL=1`` (minutes, not seconds — run locally
when touching the ingest path). Each tier also gates against the
committed trajectory: reports/sec per stage must stay ≥
:data:`REGRESSION_FLOOR` × the most recent committed baseline run
(records carrying ``"baseline": true``, written with
``BENCH_CAPACITY_BASELINE=1``).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.faers.ingest import StreamEncoder, iter_chunks
from repro.faers.synthetic import SyntheticConfig, SyntheticFAERSGenerator
from repro.mining.fpclose import fpclose
from repro.obs import MetricsRegistry, MemorySampler, use_registry

from benchmarks._trajectory import REPO_ROOT, append_run, base_record
from benchmarks.conftest import write_artifact

TRAJECTORY_PATH = REPO_ROOT / "BENCH_capacity.json"
SUITE = "capacity-perf"
BENCHMARK_ID = "capacity/streaming-ingest"

#: Transient ingest overhead cap (bytes): peak RSS while streaming minus
#: RSS after the pass, i.e. memory that is NOT the retained database.
#: O(chunk) cleaning state plus allocator slack fits in a tenth of this;
#: a materialized 1M-report raw list (~380 MiB) cannot.
TRANSIENT_RSS_LIMIT = 256 * 2**20

#: A stage regressing below this fraction of its committed baseline
#: reports/sec fails the run.
REGRESSION_FLOOR = 0.8

CHUNK_SIZE = 4096

#: Report counts per tier; the drug/ADR universe is held at real-FAERS
#: scale so per-report cost stays comparable across tiers.
SMOKE_TIERS = (100_000,)
FULL_TIERS = (100_000, 500_000, 1_000_000)
N_DRUGS = 4000
N_ADRS = 600
SEED = 20140


def _tiers() -> tuple[int, ...]:
    return FULL_TIERS if os.environ.get("BENCH_CAPACITY_FULL") == "1" else SMOKE_TIERS


def _mine_support(n_reports: int) -> int:
    # Scales with the tier so the closed-itemset output stays comparable
    # in size; at 1M this is 0.05% — the paper's regime is rare signals.
    return max(50, n_reports // 2000)


def run_tier(n_reports: int) -> dict:
    """Stream one tier through parse → clean → encode → mine, measured."""
    config = SyntheticConfig(
        n_reports=n_reports,
        n_drugs=N_DRUGS,
        n_adrs=N_ADRS,
        seed=SEED,
        quarter="2014Q1",
    )
    generator = SyntheticFAERSGenerator(config)
    registry = MetricsRegistry()
    encoder = StreamEncoder()
    sampler = MemorySampler(interval=0.05)

    parse_seconds = 0.0
    with sampler, use_registry(registry):
        stream = generator.iter_reports()
        sampler.stage("parse")
        start = time.perf_counter()
        chunks = iter_chunks(stream, CHUNK_SIZE)
        while True:
            # Pulling a chunk runs the generator (the parse stand-in);
            # ingesting it runs clean + encode. Stage labels flip at
            # chunk boundaries so RSS samples land on the right stage.
            begin = time.perf_counter()
            chunk = next(chunks, None)
            parse_seconds += time.perf_counter() - begin
            if chunk is None:
                break
            sampler.stage("ingest")
            encoder.ingest_chunk(chunk)
            sampler.stage("parse")
        ingest_wall = time.perf_counter() - start - parse_seconds
        result = encoder.finish()
        rss_after_ingest = _current_rss()

        sampler.stage("mine")
        min_support = _mine_support(n_reports)
        begin = time.perf_counter()
        itemsets = fpclose(result.database, min_support)
        mine_seconds = time.perf_counter() - begin

    snapshot = registry.snapshot()
    clean_seconds = snapshot.timer_seconds("ingest.clean")
    encode_seconds = snapshot.timer_seconds("ingest.encode")
    peaks = sampler.stage_peaks()
    ingest_peak = max(peaks.get("parse", 0), peaks.get("ingest", 0))
    transient = (
        max(0, ingest_peak - rss_after_ingest)
        if rss_after_ingest is not None and ingest_peak
        else None
    )

    def stage(name: str, seconds: float, rss_key: str | None) -> dict:
        return {
            "stage": name,
            "seconds": round(seconds, 3),
            "reports_per_sec": round(n_reports / seconds) if seconds > 0 else None,
            "peak_rss_bytes": peaks.get(rss_key) if rss_key else None,
        }

    return {
        "n_reports": n_reports,
        "n_kept": result.cleaning_stats.reports_out,
        "chunk_size": CHUNK_SIZE,
        "min_support": min_support,
        "n_closed_itemsets": len(itemsets),
        "stages": [
            stage("parse", parse_seconds, "parse"),
            # Clean and encode interleave inside one chunk pass: wall
            # time splits cleanly via the ingest timers, RSS is shared.
            stage("clean", clean_seconds, "ingest"),
            stage("encode", encode_seconds, "ingest"),
            stage("mine", mine_seconds, "mine"),
        ],
        "ingest_wall_seconds": round(ingest_wall, 3),
        "rss_after_ingest_bytes": rss_after_ingest,
        "transient_ingest_rss_bytes": transient,
        "peak_rss_bytes": sampler.peak_bytes(),
    }


def _current_rss() -> int | None:
    from repro.obs import current_rss_bytes

    return current_rss_bytes()


def _baseline_rates(n_reports: int) -> dict[str, float] | None:
    """Per-stage reports/sec of the latest committed baseline for a tier."""
    if not TRAJECTORY_PATH.exists():
        return None
    trajectory = json.loads(TRAJECTORY_PATH.read_text(encoding="utf-8"))
    for run in reversed(trajectory.get("runs", [])):
        if (
            run.get("benchmark") == BENCHMARK_ID
            and run.get("baseline") is True
            and any(t.get("n_reports") == n_reports for t in run.get("tiers", []))
        ):
            tier = next(t for t in run["tiers"] if t["n_reports"] == n_reports)
            return {
                s["stage"]: s["reports_per_sec"]
                for s in tier["stages"]
                if s.get("reports_per_sec")
            }
    return None


def test_capacity_streaming_ingest():
    tiers = [run_tier(n) for n in _tiers()]

    lines = ["Capacity — streaming parse → clean → encode → mine (synthetic FAERS)"]
    lines.append(
        f"{'reports':>10s} {'stage':>7s} {'seconds':>9s} {'rep/s':>9s} "
        f"{'peakRSS MiB':>12s}"
    )
    for tier in tiers:
        for s in tier["stages"]:
            rss = "" if s["peak_rss_bytes"] is None else f"{s['peak_rss_bytes'] / 2**20:.0f}"
            lines.append(
                f"{tier['n_reports']:>10,d} {s['stage']:>7s} {s['seconds']:>9.2f} "
                f"{s['reports_per_sec'] or 0:>9,d} {rss:>12s}"
            )
        transient = tier["transient_ingest_rss_bytes"]
        lines.append(
            f"{'':>10s} transient ingest RSS: "
            + ("n/a" if transient is None else f"{transient / 2**20:.0f} MiB")
            + f" (limit {TRANSIENT_RSS_LIMIT / 2**20:.0f} MiB), "
            f"{tier['n_closed_itemsets']} closed itemsets @ support "
            f"{tier['min_support']}"
        )
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("capacity.txt", artifact)

    record = base_record(
        chunk_size=CHUNK_SIZE,
        n_drugs=N_DRUGS,
        n_adrs=N_ADRS,
        transient_rss_limit_bytes=TRANSIENT_RSS_LIMIT,
        tiers=tiers,
    )
    if os.environ.get("BENCH_CAPACITY_BASELINE") == "1":
        record["baseline"] = True
    append_run(TRAJECTORY_PATH, SUITE, BENCHMARK_ID, record)

    # Memory honesty: the streaming pass must not hide a materialized
    # copy of the stream. (None = no procfs; nothing to assert.)
    for tier in tiers:
        transient = tier["transient_ingest_rss_bytes"]
        if transient is not None:
            assert transient <= TRANSIENT_RSS_LIMIT, (
                f"{tier['n_reports']:,}-report ingest held "
                f"{transient / 2**20:.0f} MiB of transient memory "
                f"(limit {TRANSIENT_RSS_LIMIT / 2**20:.0f} MiB) — is the "
                "stream being materialized?"
            )

    # Throughput regression gate against the committed baseline.
    for tier in tiers:
        baseline = _baseline_rates(tier["n_reports"])
        if baseline is None:
            continue
        for s in tier["stages"]:
            rate, floor = s["reports_per_sec"], baseline.get(s["stage"])
            if rate is None or floor is None:
                continue
            assert rate >= REGRESSION_FLOOR * floor, (
                f"{tier['n_reports']:,}-report {s['stage']} stage at "
                f"{rate:,} reports/s, below {REGRESSION_FLOOR:.0%} of the "
                f"committed baseline {floor:,.0f} reports/s"
            )


def test_capacity_stream_never_materialized():
    """The tier driver consumes the generator lazily, chunk by chunk.

    Cheap structural guard next to the RSS assertion: wrap the stream in
    a counter and check the driver never pulled more than one chunk
    ahead of what it encoded.
    """
    config = SyntheticConfig(
        n_reports=10_000, n_drugs=300, n_adrs=80, seed=SEED, quarter="2014Q1"
    )
    generator = SyntheticFAERSGenerator(config)
    pulled = 0

    def counting_stream():
        nonlocal pulled
        for report in generator.iter_reports():
            pulled += 1
            yield report

    encoder = StreamEncoder()
    high_water = 0
    for chunk in iter_chunks(counting_stream(), CHUNK_SIZE):
        encoder.ingest_chunk(chunk)
        high_water = max(high_water, pulled - encoder.stats.rows_in)
    assert high_water == 0, "driver pulled ahead of the encoder"
    assert encoder.stats.rows_in == config.n_reports


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v", "--override-ini=addopts="]))
