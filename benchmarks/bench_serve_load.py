"""Closed-loop load benchmark of the serving transports.

The async-transport claim is about *throughput under concurrency*: a
thread-per-connection server pays scheduler and GIL overhead per client,
an event loop serving precomputed bytes does not. This benchmark drives
both transports with closed-loop keep-alive clients (every client keeps
exactly one request in flight on one persistent connection) over the
byte-cached hot paths, sweeping concurrency × async worker processes,
and appends RPS and p50/p99 latency per cell to ``BENCH_serve.json``
(benchmark id ``serve-load``).

Cells:

- ``threaded`` at each concurrency — the ``--sync`` fallback baseline;
- ``async`` workers=1 in-process at each concurrency;
- ``async`` workers∈{2,4} via :func:`repro.serve.aio.forked_workers`
  (pre-fork snapshot sharing, one inherited listening socket).

``BENCH_SERVE_QUICK=1`` shrinks the grid (concurrency {1,8}, workers
{1,2}, shorter cells) for the CI smoke job, which gates on the headline
comparison: async RPS at concurrency 8 must not fall below the threaded
baseline (with a tie tolerance — on a 1-CPU runner both transports are
compute-bound on the same byte tables, so the async edge narrows to
scheduler overhead).
"""

from __future__ import annotations

import http.client
import os
import statistics
import threading
import time

import pytest

from benchmarks._trajectory import REPO_ROOT, append_run, base_record
from repro.core import Maras, MarasConfig
from repro.obs import MetricsRegistry
from repro.serve import (
    ApiResponder,
    QueryEngine,
    ResultStore,
    forked_workers,
    running_async_server,
    running_server,
)

TRAJECTORY_PATH = REPO_ROOT / "BENCH_serve.json"

MIN_SUPPORT = 4
RUN = "2014Q1"

QUICK = os.environ.get("BENCH_SERVE_QUICK", "") not in ("", "0")
CONCURRENCY_GRID = (1, 8) if QUICK else (1, 8, 32, 128)
WORKER_GRID = (1, 2) if QUICK else (1, 2, 4)
CELL_SECONDS = 0.5 if QUICK else 1.2
WARMUP_REQUESTS = 5
#: Tie tolerance for the async-vs-threaded gate: on a 1-CPU runner both
#: transports serve the same precomputed bytes compute-bound, so "async
#: does not lose" is the stable assertable form of "async wins".
GATE_RATIO = 0.9


@pytest.fixture(scope="module")
def responder(quarter_datasets):
    result = Maras(MarasConfig(min_support=MIN_SUPPORT, clean=False)).run(
        quarter_datasets[RUN]
    )
    store = ResultStore()
    store.add_result(RUN, result)
    responder = ApiResponder(QueryEngine(store, registry=MetricsRegistry()))
    responder.warm()
    return responder


def _hot_paths(responder) -> list[str]:
    """The byte-cached request mix: listings + id-addressed resources."""
    snapshot = responder.engine.store.get(RUN)
    record = snapshot.records[0]
    return [
        "/v1/associations",
        f"/v1/clusters/{record['id']}",
        f"/v1/drugs/{record['drugs'][0]}",
        "/v1/clusters",
    ]


def _closed_loop(url: str, paths: list[str], concurrency: int) -> dict:
    """Drive ``concurrency`` keep-alive clients; measure RPS and latency.

    Closed loop: each client thread issues its next request only after
    fully reading the previous response, so offered load adapts to the
    server instead of overrunning it.
    """
    host, port = url.removeprefix("http://").split(":")
    stop = threading.Event()
    go = threading.Event()
    per_client: list[list[float]] = [[] for _ in range(concurrency)]
    errors: list[BaseException] = []

    def client(slot: int) -> None:
        latencies = per_client[slot]
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            for i in range(WARMUP_REQUESTS):
                conn.request("GET", paths[i % len(paths)])
                conn.getresponse().read()
            go.wait()
            i = slot
            while not stop.is_set():
                start = time.perf_counter()
                conn.request("GET", paths[i % len(paths)])
                response = conn.getresponse()
                body = response.read()
                latencies.append(time.perf_counter() - start)
                assert response.status == 200 and body
                i += 1
        except BaseException as error:  # noqa: BLE001 — surfaced below
            errors.append(error)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    go.set()
    measure_start = time.perf_counter()
    time.sleep(CELL_SECONDS)
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - measure_start
    assert not errors, errors[:1]
    latencies = sorted(
        latency for client_latencies in per_client for latency in client_latencies
    )
    assert latencies, "no requests completed in the measurement window"
    return {
        "requests": len(latencies),
        "rps": round(len(latencies) / elapsed, 1),
        "p50_ms": round(1000 * statistics.median(latencies), 3),
        "p99_ms": round(
            1000 * latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))],
            3,
        ),
    }


def test_trajectory_serve_load(responder):
    """Sweep the transport × concurrency grid; append the trajectory.

    Gates: every cell serves without errors, and async does not lose to
    the threaded baseline at concurrency 8 (``GATE_RATIO`` tie band).
    """
    paths = _hot_paths(responder)
    cells = []

    for concurrency in CONCURRENCY_GRID:
        with running_server(responder) as server:
            measured = _closed_loop(server.url, paths, concurrency)
        cells.append(
            {"transport": "threaded", "workers": 1, "concurrency": concurrency}
            | measured
        )

    for workers in WORKER_GRID:
        for concurrency in CONCURRENCY_GRID:
            if workers == 1:
                with running_async_server(responder) as server:
                    measured = _closed_loop(server.url, paths, concurrency)
            else:
                with forked_workers(responder, workers) as url:
                    measured = _closed_loop(url, paths, concurrency)
            cells.append(
                {"transport": "async", "workers": workers, "concurrency": concurrency}
                | measured
            )

    def rps(transport: str, workers: int, concurrency: int) -> float:
        return next(
            cell["rps"]
            for cell in cells
            if cell["transport"] == transport
            and cell["workers"] == workers
            and cell["concurrency"] == concurrency
        )

    gate_concurrency = 8
    threaded_rps = rps("threaded", 1, gate_concurrency)
    async_rps = rps("async", 1, gate_concurrency)
    record = base_record(
        quick=QUICK,
        cell_seconds=CELL_SECONDS,
        cpu_count=os.cpu_count(),
        cells=cells,
        gate={
            "concurrency": gate_concurrency,
            "threaded_rps": threaded_rps,
            "async_rps": async_rps,
            "ratio": round(async_rps / threaded_rps, 3),
        },
    )
    append_run(TRAJECTORY_PATH, "serve-perf", "serve-load", record)

    for cell in cells:
        print(
            f"{cell['transport']:>8s} w={cell['workers']} "
            f"c={cell['concurrency']:>3d}: {cell['rps']:>8.1f} rps "
            f"p50={cell['p50_ms']:.2f}ms p99={cell['p99_ms']:.2f}ms"
        )

    assert async_rps >= GATE_RATIO * threaded_rps, (
        f"async transport lost to threaded at concurrency {gate_concurrency}: "
        f"{async_rps:.0f} vs {threaded_rps:.0f} rps"
    )
