"""Score uncertainty — bootstrap intervals over planted ground truth.

Extension beyond the paper: exclusiveness is a point estimate over a
handful of reports, so each score here gets a case-resampling bootstrap
interval. Shape claims on the planted quarter: genuine interactions'
intervals sit above zero (the signal is statistically real, not a
ranking artifact), and intervals narrow as supporting evidence grows.
"""

from __future__ import annotations

from repro.core import RankingMethod
from repro.core.uncertainty import bootstrap_exclusiveness

from benchmarks.conftest import write_artifact

N_BOOTSTRAP = 200


def test_score_uncertainty(benchmark, generators, mined_q1):
    generator = generators["2014Q1"]
    catalog = mined_q1.catalog
    database = mined_q1.encoded.database

    # Locate the planted clusters (exact drug set, planted ADR in the
    # consequent) among the mined ones.
    planted = []
    for spec in generator.ground_truth():
        drug_ids = {catalog.get_id(d) for d in spec.drugs}
        adr_ids = {catalog.get_id(a) for a in spec.adrs}
        if None in drug_ids or None in adr_ids:
            continue
        for cluster in mined_q1.clusters:
            if cluster.target.antecedent == frozenset(drug_ids) and (
                frozenset(adr_ids) & cluster.target.consequent
            ):
                planted.append((spec, cluster))
                break
    assert len(planted) >= 5, "most planted interactions must be mined"

    benchmark(
        lambda: bootstrap_exclusiveness(
            database, planted[0][1], n_bootstrap=N_BOOTSTRAP
        )
    )

    lines = [
        "Score uncertainty — 95% bootstrap intervals of planted clusters",
        f"{'kind':>10s} {'interaction':46s} {'point':>7s} {'95% CI':>18s} {'sig':>4s}",
    ]
    genuine_significant = 0
    genuine_total = 0
    for spec, cluster in planted:
        interval = bootstrap_exclusiveness(
            database, cluster, n_bootstrap=N_BOOTSTRAP
        )
        significant = interval.excludes_zero and interval.low > 0
        if spec.is_genuine:
            genuine_total += 1
            genuine_significant += significant
        lines.append(
            f"{'genuine' if spec.is_genuine else 'confounded':>10s} "
            f"{'+'.join(spec.drugs):46s} {interval.point:>7.3f} "
            f"[{interval.low:>7.3f}, {interval.high:>6.3f}] "
            f"{'yes' if significant else 'no':>4s}"
        )
    artifact = "\n".join(lines)
    print("\n" + artifact)
    write_artifact("score_uncertainty.txt", artifact)

    # Most genuine planted signals are significantly positive.
    assert genuine_total >= 4
    assert genuine_significant >= genuine_total / 2
