"""Incremental surveillance: per-batch cost proportional to the delta.

The one-shot pipeline re-cleans, re-encodes and re-mines the full
accumulated history on every surveillance batch. This package folds each
stage over the stream instead — see
:class:`~repro.incremental.engine.IncrementalEngine` for the per-batch
flow and the byte-identity guarantee against the one-shot run.
"""

from repro.incremental.cleaning import CleaningDelta, IncrementalCleaner
from repro.incremental.encoding import EncodingDelta, IncrementalEncoder
from repro.incremental.engine import IncrementalEngine
from repro.incremental.mining import carry_closed_itemsets

__all__ = [
    "CleaningDelta",
    "EncodingDelta",
    "IncrementalCleaner",
    "IncrementalEncoder",
    "IncrementalEngine",
    "carry_closed_itemsets",
]
