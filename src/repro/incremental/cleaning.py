"""Incremental cleaning: the §5.2 preparation step as a stream fold.

:class:`~repro.faers.cleaning.ReportCleaner` is a whole-dataset pass:
normalize every row, merge case versions, drop exact duplicates. Run
per surveillance batch over the accumulated raw stream it costs
O(history) — the asymptotic bug the incremental engine removes.
:class:`IncrementalCleaner` folds the *same* algorithm over batches: it
keeps the per-case merge state (latest merged report per case id, the
signature groups the duplicate-drop is defined over) and per batch only
normalizes the batch's rows, producing a :class:`CleaningDelta` of
appended / updated kept cases.

The equivalence invariant (enforced by the differential harness in
``tests/incremental``): after any batch schedule, :meth:`kept_reports`
and :meth:`stats` are byte-identical to one
``ReportCleaner().clean(all_rows_so_far)`` call. The duplicate-drop rule
that makes this foldable: a merged case is *kept* iff it has the minimal
first-appearance position within its (drugs, adrs) signature group —
which is exactly what the one-shot pass's "first signature wins" scan
computes. A follow-up version that moves a case between signature
groups can flip the kept/dropped status of *pre-batch* cases; the delta
then reports ``needs_rebuild`` because rows would appear or disappear
in the middle of the encoded transaction order.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.faers.cleaning import (
    CleaningStats,
    SpellingCorrector,
    clean_terms,
    normalize_adr_term,
    normalize_drug_name,
)
from repro.faers.schema import CaseReport

Signature = tuple[tuple[str, ...], tuple[str, ...]]

NormalizedRow = tuple[frozenset[str], frozenset[str]]


@dataclass(slots=True)
class CleaningDelta:
    """What one ingested batch changed in the cleaned view of the stream.

    ``appended`` — merged reports of kept cases that first appeared in
    this batch, in first-appearance order (their rows append at the end
    of the encoded transaction order). ``updated`` — new merged reports
    of pre-batch kept cases whose content changed (a follow-up version
    merged in). ``needs_rebuild`` — a pre-batch case's kept/dropped
    status flipped, so the appended/updated view cannot express the
    change and the caller must re-encode from :meth:`IncrementalCleaner.
    kept_reports`.
    """

    appended: list[CaseReport] = field(default_factory=list)
    updated: list[CaseReport] = field(default_factory=list)
    needs_rebuild: bool = False
    n_new_cases: int = 0
    n_updated_cases: int = 0


class IncrementalCleaner:
    """Fold of :class:`~repro.faers.cleaning.ReportCleaner` over batches."""

    def __init__(
        self,
        drug_vocabulary: Iterable[str] | None = None,
        adr_vocabulary: Iterable[str] | None = None,
    ) -> None:
        self._drug_corrector = (
            SpellingCorrector(drug_vocabulary) if drug_vocabulary else None
        )
        self._adr_corrector = (
            SpellingCorrector(adr_vocabulary) if adr_vocabulary else None
        )
        self._merged: dict[str, CaseReport] = {}
        self._order: list[str] = []  # every case id, first-appearance order
        self._position: dict[str, int] = {}
        self._sig_of: dict[str, Signature] = {}
        self._groups: dict[Signature, set[int]] = {}  # sig → member positions
        self._rows_in = 0
        self._cases_merged = 0
        self._empty_dropped = 0
        # Correction counters accumulate here via the shared clean_terms.
        self._correction_stats = CleaningStats()

    def ingest(
        self,
        rows: Sequence[CaseReport],
        normalized: Sequence[NormalizedRow] | None = None,
    ) -> CleaningDelta:
        """Fold one batch into the merge state and return the delta.

        ``normalized`` optionally supplies pre-normalized (drugs, adrs)
        per row — the parallel delta-normalization path
        (:mod:`repro.parallel.cleaning`) computes them in worker
        processes. It is only valid without spelling vocabularies, since
        correction counting happens inside normalization.
        """
        if normalized is not None:
            if self._drug_corrector is not None or self._adr_corrector is not None:
                raise ConfigError(
                    "pre-normalized rows cannot be combined with "
                    "spelling vocabularies"
                )
            if len(normalized) != len(rows):
                raise ConfigError(
                    "normalized rows must parallel the batch rows"
                )
        self._rows_in += len(rows)
        batch_floor = len(self._order)
        # Pre-batch merged report of every case touched this batch
        # (None = the case first appeared in this batch).
        touched: dict[str, CaseReport | None] = {}
        needs_rebuild = False
        for index, report in enumerate(rows):
            if normalized is not None:
                drugs, adrs = normalized[index]
            else:
                drugs = clean_terms(
                    report.drugs,
                    normalize_drug_name,
                    self._drug_corrector,
                    self._correction_stats,
                    "drug",
                )
                adrs = clean_terms(
                    report.adrs,
                    normalize_adr_term,
                    self._adr_corrector,
                    self._correction_stats,
                    "adr",
                )
            if not drugs or not adrs:
                self._empty_dropped += 1
                continue
            case_id = report.case_id
            existing = self._merged.get(case_id)
            if existing is None:
                touched.setdefault(case_id, None)
                position = len(self._order)
                self._order.append(case_id)
                self._position[case_id] = position
                merged = CaseReport.build(
                    case_id,
                    drugs,
                    adrs,
                    report_type=report.report_type,
                    quarter=report.quarter,
                    age=report.age,
                    sex=report.sex,
                    country=report.country,
                    event_date=report.event_date,
                )
                self._merged[case_id] = merged
                signature = merged.signature()
                self._sig_of[case_id] = signature
                self._groups.setdefault(signature, set()).add(position)
                continue
            touched.setdefault(case_id, existing)
            self._cases_merged += 1
            merged = CaseReport.build(
                existing.case_id,
                set(existing.drugs) | drugs,
                set(existing.adrs) | adrs,
                report_type=existing.report_type,
                quarter=existing.quarter,
                age=existing.age,
                sex=existing.sex,
                country=existing.country,
                event_date=existing.event_date or report.event_date,
            )
            if merged == existing:
                continue  # exact resubmission: nothing changed
            self._merged[case_id] = merged
            new_signature = merged.signature()
            old_signature = self._sig_of[case_id]
            if new_signature != old_signature:
                needs_rebuild |= self._move(
                    self._position[case_id],
                    old_signature,
                    new_signature,
                    batch_floor,
                )
                self._sig_of[case_id] = new_signature

        delta = CleaningDelta(needs_rebuild=needs_rebuild)
        for case_id in sorted(touched, key=self._position.__getitem__):
            before = touched[case_id]
            now = self._merged[case_id]
            kept = self._is_kept(case_id)
            if before is None:
                delta.n_new_cases += 1
                if kept:
                    delta.appended.append(now)
            elif now != before:
                delta.n_updated_cases += 1
                if kept:
                    delta.updated.append(now)
        return delta

    def _move(
        self,
        position: int,
        old_signature: Signature,
        new_signature: Signature,
        batch_floor: int,
    ) -> bool:
        """Move one case between signature groups; True if a *pre-batch*
        case's kept/dropped status may have changed (conservative)."""
        flip = False
        group = self._groups[old_signature]
        was_kept = position == min(group)
        group.remove(position)
        if group:
            # Leaving as the keeper promotes the group's next-oldest
            # member; a pre-batch promotion inserts a row mid-stream.
            if was_kept and min(group) < batch_floor:
                flip = True
        else:
            del self._groups[old_signature]
        target = self._groups.setdefault(new_signature, set())
        if target and position < min(target) and min(target) < batch_floor:
            flip = True  # pre-batch keeper demoted to duplicate
        target.add(position)
        now_kept = position == min(target)
        if position < batch_floor and was_kept != now_kept:
            flip = True  # the moving case's own row appears/disappears
        return flip

    def _is_kept(self, case_id: str) -> bool:
        return self._position[case_id] == min(
            self._groups[self._sig_of[case_id]]
        )

    def kept_reports(self) -> list[CaseReport]:
        """The cleaned dataset — identical to a one-shot cleaner's output."""
        return [
            self._merged[case_id]
            for case_id in self._order
            if self._is_kept(case_id)
        ]

    # -- durable-store checkpoint support ------------------------------

    def merge_state(self) -> dict:
        """The carried merge state, restorable by :meth:`from_merge_state`.

        The signature groups and positions are *derived* state — every
        merged report carries its own signature, and positions are the
        list order — so only the merged reports (first-appearance order)
        and the pure counters need persisting. Spelling vocabularies are
        not captured: the incremental engine always runs the cleaner
        without them, and correction counts are carried as counters.
        """
        return {
            "reports": [self._merged[case_id] for case_id in self._order],
            "rows_in": self._rows_in,
            "cases_merged": self._cases_merged,
            "empty_dropped": self._empty_dropped,
            "drug_names_corrected": self._correction_stats.drug_names_corrected,
            "adr_terms_corrected": self._correction_stats.adr_terms_corrected,
        }

    @classmethod
    def from_merge_state(cls, state: dict) -> "IncrementalCleaner":
        """Rebuild a cleaner whose next :meth:`ingest` continues the fold."""
        cleaner = cls()
        for report in state["reports"]:
            case_id = report.case_id
            position = len(cleaner._order)
            cleaner._order.append(case_id)
            cleaner._position[case_id] = position
            cleaner._merged[case_id] = report
            signature = report.signature()
            cleaner._sig_of[case_id] = signature
            cleaner._groups.setdefault(signature, set()).add(position)
        cleaner._rows_in = int(state["rows_in"])
        cleaner._cases_merged = int(state["cases_merged"])
        cleaner._empty_dropped = int(state["empty_dropped"])
        cleaner._correction_stats = CleaningStats(
            drug_names_corrected=int(state["drug_names_corrected"]),
            adr_terms_corrected=int(state["adr_terms_corrected"]),
        )
        return cleaner

    def stats(self) -> CleaningStats:
        """Cumulative counters, matching one clean() over the whole stream."""
        return CleaningStats(
            rows_in=self._rows_in,
            reports_out=len(self._groups),
            cases_merged=self._cases_merged,
            exact_duplicates_dropped=len(self._merged) - len(self._groups),
            drug_names_corrected=self._correction_stats.drug_names_corrected,
            adr_terms_corrected=self._correction_stats.adr_terms_corrected,
            empty_reports_dropped=self._empty_dropped,
        )
