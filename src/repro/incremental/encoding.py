"""Append-only encoding: grow the catalog and bitmask tidsets in place.

The one-shot path re-runs :meth:`repro.faers.dataset.ReportDataset.
encode` per batch — a fresh catalog and a fresh mask table over the
whole history. :class:`IncrementalEncoder` maintains the *same* encoding
across batches over a
:class:`~repro.mining.transactions.GrowableTransactionDatabase`:
appended kept cases append rows (new bits at the top of the touched item
masks), and a follow-up version of a kept case rewrites exactly one row
(bit invalidation). Because
:class:`~repro.mining.bitsets.BitsetIndex` shares the database's mask
dict, a fresh index per batch sees the mutations with no rebuild.

Byte-identity with the one-shot encoding requires the *catalog* to come
out identical (ids are assigned in first-seen row order, and an ADR
label colliding with any drug label in the dataset is suffixed). Four
situations break in-place maintenance and force a full re-encode,
reported by :meth:`IncrementalEncoder.rebuild_reason`:

- a batch introduces a drug label equal to an already-encoded
  *unsuffixed* ADR label (the historical ADR rows would need the
  ``" (REACTION)"`` suffix retroactively);
- an updated row adds an item that is new to the catalog (the one-shot
  encoding would have assigned its id at that earlier row's position);
- an updated row adds an existing item whose first-seen row is *later*
  than the updated row (same id-order violation);
- an updated row removes items (cannot happen under union merging, but
  checked so the invariant never silently rots).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faers.dataset import _COLLISION_SUFFIX, ADR_KIND, DRUG_KIND
from repro.faers.schema import CaseReport
from repro.incremental.cleaning import CleaningDelta
from repro.mining.transactions import (
    GrowableTransactionDatabase,
    ItemCatalog,
)


@dataclass(slots=True)
class EncodingDelta:
    """Effect of one batch on the encoded database."""

    touched_mask: int = 0  # OR of the bits of every row whose items changed
    delta_items: set[int] = field(default_factory=set)
    appended_tids: list[int] = field(default_factory=list)
    updated_tids: list[int] = field(default_factory=list)


class IncrementalEncoder:
    """Maintains catalog + growable database across surveillance batches."""

    def __init__(self) -> None:
        self.catalog = ItemCatalog()
        self.database = GrowableTransactionDatabase([], self.catalog)
        self._drug_labels: set[str] = set()
        self._unsuffixed_adrs: set[str] = set()
        self._first_row: dict[int, int] = {}  # item id → first tid containing it
        self._row_case_ids: list[str] = []
        self._row_reports: list[CaseReport] = []
        self._tid_by_case: dict[str, int] = {}
        self._report_by_case: dict[str, CaseReport] = {}
        self._quarters: set[str] = set()

    @property
    def row_case_ids(self) -> list[str]:
        return self._row_case_ids

    @property
    def row_reports(self) -> list[CaseReport]:
        return self._row_reports

    @property
    def report_by_case(self) -> dict[str, CaseReport]:
        return self._report_by_case

    def quarter(self) -> str:
        """Same contract as ``ReportDataset._infer_quarter``."""
        return next(iter(self._quarters)) if len(self._quarters) == 1 else ""

    def rebuild_reason(self, delta: CleaningDelta) -> str | None:
        """Why this delta cannot be applied in place (None = it can).

        Pure check — no state is mutated, so the caller can fall back to
        :meth:`rebuild` on a non-None answer.
        """
        batch_drugs: set[str] = set()
        for report in delta.appended:
            batch_drugs.update(report.drugs)
        for report in delta.updated:
            batch_drugs.update(report.drugs)
        new_drugs = batch_drugs - self._drug_labels
        if new_drugs & self._unsuffixed_adrs:
            return "new drug label collides with an encoded ADR label"
        drug_labels = self._drug_labels | new_drugs
        for report in delta.updated:
            tid = self._tid_by_case[report.case_id]
            old_row = self.database[tid]
            new_row: set[int] = set()
            for drug in report.drugs:
                item = self.catalog.get_id(drug)
                if item is None:
                    return "follow-up adds an item new to the catalog"
                if self._first_row[item] > tid:
                    return "follow-up back-fills an item first seen later"
                new_row.add(item)
            for adr in report.adrs:
                label = adr + _COLLISION_SUFFIX if adr in drug_labels else adr
                item = self.catalog.get_id(label)
                if item is None:
                    return "follow-up adds an item new to the catalog"
                if self._first_row[item] > tid:
                    return "follow-up back-fills an item first seen later"
                new_row.add(item)
            if old_row - new_row:
                return "follow-up removes items from a row"
        return None

    def apply(self, delta: CleaningDelta) -> EncodingDelta:
        """Mutate the encoding in place (call :meth:`rebuild_reason` first)."""
        effect = EncodingDelta()
        # All batch drug labels join the collision namespace before any
        # row encodes, exactly as the one-shot pass computes
        # ``distinct_drugs`` over the whole dataset first.
        for report in delta.appended:
            self._drug_labels.update(report.drugs)
        for report in delta.updated:
            self._drug_labels.update(report.drugs)

        for report in delta.updated:
            tid = self._tid_by_case[report.case_id]
            row = self._encode_existing_row(report)
            added, removed = self.database.update_row(tid, row)
            self._row_reports[tid] = report
            self._report_by_case[report.case_id] = report
            if added or removed:
                effect.touched_mask |= 1 << tid
                effect.delta_items |= added | removed
                effect.updated_tids.append(tid)

        for report in delta.appended:
            row: set[int] = set()
            for drug in report.drugs:
                row.add(self.catalog.add(drug, DRUG_KIND))
            for adr in report.adrs:
                if adr in self._drug_labels:
                    label = adr + _COLLISION_SUFFIX
                else:
                    label = adr
                    self._unsuffixed_adrs.add(adr)
                row.add(self.catalog.add(label, ADR_KIND))
            tid = self.database.append_row(row)
            for item in row:
                self._first_row.setdefault(item, tid)
            self._row_case_ids.append(report.case_id)
            self._row_reports.append(report)
            self._tid_by_case[report.case_id] = tid
            self._report_by_case[report.case_id] = report
            if report.quarter:
                self._quarters.add(report.quarter)
            effect.touched_mask |= 1 << tid
            effect.delta_items |= row
            effect.appended_tids.append(tid)
        return effect

    def _encode_existing_row(self, report: CaseReport) -> set[int]:
        """Item ids of an updated row (all labels known per rebuild_reason)."""
        row: set[int] = set()
        for drug in report.drugs:
            row.add(self.catalog.id(drug))
        for adr in report.adrs:
            label = (
                adr + _COLLISION_SUFFIX if adr in self._drug_labels else adr
            )
            row.add(self.catalog.id(label))
        return row

    def rebuild(self, kept_reports: list[CaseReport]) -> None:
        """Re-encode from scratch — mirrors ``ReportDataset.encode``."""
        catalog = ItemCatalog()
        drug_labels = {d for r in kept_reports for d in r.drugs}
        unsuffixed: set[str] = set()
        first_row: dict[int, int] = {}
        transactions: list[set[int]] = []
        case_ids: list[str] = []
        for tid, report in enumerate(kept_reports):
            row: set[int] = set()
            for drug in report.drugs:
                row.add(catalog.add(drug, DRUG_KIND))
            for adr in report.adrs:
                if adr in drug_labels:
                    label = adr + _COLLISION_SUFFIX
                else:
                    label = adr
                    unsuffixed.add(adr)
                row.add(catalog.add(label, ADR_KIND))
            for item in row:
                first_row.setdefault(item, tid)
            transactions.append(row)
            case_ids.append(report.case_id)
        self.catalog = catalog
        self.database = GrowableTransactionDatabase(transactions, catalog)
        self._drug_labels = set(drug_labels)
        self._unsuffixed_adrs = unsuffixed
        self._first_row = first_row
        self._row_case_ids = case_ids
        self._row_reports = list(kept_reports)
        self._tid_by_case = {cid: tid for tid, cid in enumerate(case_ids)}
        self._report_by_case = {r.case_id: r for r in kept_reports}
        self._quarters = {r.quarter for r in kept_reports if r.quarter}
