"""Delta-aware re-mining: carry the untouched closed sets, re-mine the rest.

The Galois connection behind closed-itemset mining makes incremental
maintenance exact under *grow-only* deltas (rows append; an updated row
only gains items — which is all union-merge cleaning can produce):

- An itemset contained in **no** touched row has, by definition, a
  tidset mask disjoint from the touched-rows mask ``T``. None of its
  rows changed, no batch-new item entered them, so its support *and*
  its closure are untouched: if it was closed before, it is closed now,
  at the same support. These are carried verbatim from the previous
  batch's closed set (dropped only if a risen support threshold now
  excludes them).
- An itemset contained in **some** touched row has a tidset mask
  intersecting ``T`` — and :func:`repro.mining.fpclose.fpclose` with
  ``touched_mask=T`` enumerates exactly the closed itemsets whose mask
  intersects ``T`` (a branch's tidset only shrinks downward, so a
  subtree whose projected mask misses ``T`` is skipped whole). At
  ``n_workers > 1`` the engine runs the same contract through
  :func:`repro.parallel.miner.fpclose_sharded` instead, which projects
  each shard's rows onto the union of the touched rows' items — every
  delta-affected closed itemset is contained in some touched row,
  hence in that union — and filters the merged result by
  mask-intersects-``T``; byte-identity with the single-process delta
  is part of the differential contract below.

The two sets partition the new closed family, so ``carried ∪ re-mined``
is exactly what a from-scratch mine would return — the differential
harness in ``tests/incremental`` asserts byte-identical exports.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.mining.transactions import (
    FrequentItemset,
    Itemset,
    TransactionDatabase,
)


def carry_closed_itemsets(
    prev_closed: Sequence[FrequentItemset],
    database: TransactionDatabase,
    touched_tids: Sequence[int],
    threshold: int,
) -> tuple[list[FrequentItemset], int]:
    """Split the previous closed set into (carried, n_dropped_suspects).

    ``touched_tids`` are the rows the delta appended or rewrote;
    ``database`` must already reflect the new contents. An itemset
    contained in any touched row is a *suspect* — its support or closure
    may have changed — and is dropped here because the delta-restricted
    miner re-emits its (possibly updated) closed form. Everything else
    is carried with its support verbatim, filtered by the (possibly
    risen) ``threshold``.

    Correct only for grow-only deltas (appends + item additions): a row
    that *lost* items could silently strand a stale support. The engine
    guards that path with a full rebuild.
    """
    touched_rows: list[Itemset] = [database[tid] for tid in touched_tids]
    # Cheap prefilter: an itemset can only be inside a touched row if it
    # is inside the union of all touched rows' items — which rules most
    # carried itemsets out with a single (short-circuiting) subset test.
    touched_universe: Itemset = (
        frozenset().union(*touched_rows) if touched_rows else frozenset()
    )
    carried: list[FrequentItemset] = []
    suspects = 0
    for fi in prev_closed:
        items = fi.items
        if items <= touched_universe and any(
            items <= row for row in touched_rows
        ):
            suspects += 1
            continue
        if fi.support >= threshold:
            carried.append(fi)
    return carried, suspects
