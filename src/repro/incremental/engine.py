"""The stateful incremental surveillance engine.

One :class:`IncrementalEngine` instance owns the accumulated state of a
surveillance stream and turns each ingested batch into a full
:class:`~repro.core.pipeline.MarasResult` at a cost proportional to the
*delta*, not the history:

1. **Incremental cleaning** — the per-case merge state lives in an
   :class:`~repro.incremental.cleaning.IncrementalCleaner`; only the
   batch's rows are normalized (optionally in a process pool that
   shards the *delta*), and the cleaner reports exactly which kept
   cases appeared or changed.
2. **Append-only encoding** — the
   :class:`~repro.incremental.encoding.IncrementalEncoder` grows the
   item catalog and the per-item bitmask tidsets in place: appended
   cases set new bits at the top, a follow-up version invalidates one
   row's bits.
3. **Delta-aware re-mining** — previously closed itemsets contained in
   no touched row are carried verbatim
   (:func:`~repro.incremental.mining.carry_closed_itemsets`);
   :func:`~repro.mining.fpclose.fpclose` with ``touched_mask`` re-mines
   only the subtrees whose conditional databases intersect the delta.
   The two halves partition the new closed family exactly. At
   ``n_workers > 1`` the delta re-mine itself is sharded across the
   engine's long-lived process pool
   (:func:`~repro.parallel.miner.fpclose_sharded` with the same
   ``touched_mask`` contract): shard rows are projected onto the
   touched rows' item universe, so worker cost tracks the delta's
   neighbourhood rather than the accumulated history.
4. **Downstream reuse** — the support oracle is warm-started from the
   previous batch (entries disjoint from the delta's item universe keep
   their counts), support types of carried itemsets are reused
   (classification reads only the containing transactions, which did
   not change), and whole rule/association/cluster triples are reused
   when the transaction count is unchanged too (metrics embed
   ``n_total``).

Any batch the in-place invariants cannot absorb — a kept/dropped status
flip in cleaning, a catalog-order violation in encoding, or a delta
larger than ``config.incremental_rebuild_fraction`` of the database —
falls back to a full rebuild that mirrors the one-shot pipeline's
mining invocation exactly (including sharded mining at
``n_workers > 1``). On every path the emitted result is byte-identical
to ``Maras(config).run(history_so_far)`` — the differential harness in
``tests/incremental`` enforces this across seed grids, batch schedules,
follow-up injections and worker counts.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.association import (
    DrugADRAssociation,
    SupportType,
    classify_support,
)
from repro.core.context import MCAC, build_cluster
from repro.core.pipeline import MarasConfig, MarasResult
from repro.errors import ConfigError, StoreError
from repro.faers.dataset import (
    ADR_KIND,
    DRUG_KIND,
    EncodedDataset,
    ReportDataset,
)
from repro.faers.schema import CaseReport
from repro.incremental.cleaning import CleaningDelta, IncrementalCleaner
from repro.incremental.encoding import IncrementalEncoder
from repro.incremental.mining import carry_closed_itemsets
from repro.mining.bitsets import BitsetIndex, SupportOracle
from repro.mining.fpclose import fpclose
from repro.mining.measures import RuleMetrics
from repro.mining.rules import AssociationRule
from repro.mining.transactions import (
    FrequentItemset,
    Itemset,
    canonical_itemset_order,
    resolve_min_support,
)
from repro.obs import NULL_REGISTRY, use_registry
from repro.parallel.cleaning import normalize_batch
from repro.parallel.miner import fpclose_sharded, resolve_workers
from repro.parallel.pool import MiningPool
from repro.parallel.sharding import plan_shards

# Below this batch size the process-pool round trip costs more than the
# regex normalization it parallelizes.
PARALLEL_MIN_ROWS = 256

# (rule, association, cluster) of one closed itemset; any slot may be
# None when the itemset yields no drug→ADR rule / no multi-drug rule.
_Artifacts = tuple[
    AssociationRule | None, DrugADRAssociation | None, MCAC | None
]


class IncrementalEngine:
    """Stateful per-batch pipeline: cost ∝ delta, output ≡ one-shot run."""

    def __init__(
        self,
        config: MarasConfig,
        *,
        registry=None,
    ) -> None:
        if not config.use_bitsets:
            raise ConfigError(
                "incremental surveillance requires use_bitsets=True"
            )
        if config.count_rule_space:
            raise ConfigError(
                "incremental surveillance does not support count_rule_space"
            )
        self.config = config
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._cleaner = IncrementalCleaner() if config.clean else None
        self._seen_case_ids: set[str] = set()  # no-clean dedup state
        self._encoder = IncrementalEncoder()
        self._closed: list[FrequentItemset] = []
        self._oracle: SupportOracle | None = None
        self._artifacts: dict[Itemset, _Artifacts] = {}
        self._support_types: dict[Itemset, SupportType] = {}
        self._n_rows_prev = 0
        self._result: MarasResult | None = None
        self._pool: MiningPool | None = None
        self.n_batches = 0
        #: Reuse/delta accounting of the most recent batch (also emitted
        #: as the ``incremental.batch`` event).
        self.last_batch_stats: dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut down the mining/normalization pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "IncrementalEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def result(self) -> MarasResult | None:
        """The result of the latest batch (None before the first)."""
        return self._result

    # -- durable-store checkpoint support ------------------------------

    def checkpoint_state(self) -> dict:
        """The carried stream state, restorable by :meth:`from_state`.

        Deliberately minimal: the encoder (catalog + growable bitmask
        database) is *derived* state — the in-place-maintenance
        invariant guarantees it equals a fresh
        :meth:`~repro.incremental.encoding.IncrementalEncoder.rebuild`
        over the kept reports, so only the cleaner's merge state (or
        the raw kept rows in no-clean mode) and the carried closed set
        persist. The support oracle, per-itemset artifacts and the
        result are recomputed on restore; by the engine's own reuse
        invariants those recomputations are byte-identical to the
        values an uninterrupted process carries.
        """
        if self._result is None:
            raise StoreError("cannot checkpoint before the first batch")
        state: dict = {
            "n_batches": self.n_batches,
            "clean": self._cleaner is not None,
            "n_rows": len(self._encoder.database),
            "closed": [
                [sorted(fi.items), fi.support] for fi in self._closed
            ],
        }
        if self._cleaner is not None:
            state["cleaner"] = self._cleaner.merge_state()
        else:
            state["rows"] = list(self._encoder.row_reports)
        return state

    @classmethod
    def from_state(
        cls, config: MarasConfig, state: dict, *, registry=None
    ) -> "IncrementalEngine":
        """Rebuild an engine whose next :meth:`ingest` continues the stream.

        The resumed engine is observably identical to the one that wrote
        the checkpoint: same encoding (via the rebuild ≡ in-place
        invariant), same carried closed set, and downstream artifacts
        recomputed through the exact code path that produced them.
        """
        engine = cls(config, registry=registry)
        if bool(state["clean"]) != (engine._cleaner is not None):
            mode = "clean" if state["clean"] else "no-clean"
            raise StoreError(
                f"checkpoint was written in {mode} mode but the config "
                "requests the opposite; refusing to mix streams"
            )
        if engine._cleaner is not None:
            engine._cleaner = IncrementalCleaner.from_merge_state(
                state["cleaner"]
            )
            kept = engine._cleaner.kept_reports()
        else:
            kept = list(state["rows"])
            engine._seen_case_ids = {report.case_id for report in kept}
        engine._encoder.rebuild(kept)
        database = engine._encoder.database
        if len(database) != int(state["n_rows"]):
            raise StoreError(
                f"checkpoint claims {state['n_rows']} encoded rows but the "
                f"restored stream encodes {len(database)}; the stored state "
                "is inconsistent"
            )
        closed = [
            FrequentItemset(frozenset(items), int(support))
            for items, support in state["closed"]
        ]
        engine.n_batches = int(state["n_batches"])
        oracle = SupportOracle(BitsetIndex(database))
        for fi in closed:
            oracle.warm(fi.items, fi.support)
        # Recompute rules/associations/clusters and the result through
        # the normal downstream pass (no reuse): it also reinstates
        # _closed/_oracle/_artifacts/_support_types/_n_rows_prev.
        engine._downstream(
            closed,
            oracle,
            carried_keys=frozenset(),
            reuse_artifacts=False,
            registry=NULL_REGISTRY,
            stats={},
        )
        return engine

    # -- ingest --------------------------------------------------------

    def ingest(self, rows: Sequence[CaseReport]) -> MarasResult:
        """Fold one batch into the stream and return the updated result."""
        registry = self.registry
        with use_registry(registry), registry.timer("incremental.ingest"):
            return self._ingest(list(rows), registry)

    def _ingest(self, rows: list[CaseReport], registry) -> MarasResult:
        config = self.config
        self.n_batches += 1
        registry.counter("incremental.batches").inc()

        with registry.timer("incremental.clean"):
            delta = self._clean_batch(rows)

        n_touched = len(delta.appended) + len(delta.updated)
        reason = self._rebuild_reason(delta, n_touched)
        stats: dict[str, object] = {
            "batch_index": self.n_batches - 1,
            "n_rows_in": len(rows),
            "n_cases_new": delta.n_new_cases,
            "n_cases_updated": delta.n_updated_cases,
            "n_rows_appended": len(delta.appended),
            "n_rows_updated": len(delta.updated),
            "rebuild_reason": reason,
        }
        registry.counter("incremental.rows_appended").inc(len(delta.appended))
        registry.counter("incremental.rows_updated").inc(len(delta.updated))

        if reason is not None:
            registry.counter("incremental.full_rebuilds").inc()
            self._run_rebuild(delta, registry, stats)
        else:
            self._run_delta(delta, registry, stats)

        stats["n_transactions"] = len(self._encoder.database)
        stats["n_closed"] = len(self._closed)
        self.last_batch_stats = stats
        registry.emit("incremental.batch", **stats)
        assert self._result is not None
        return self._result

    def _clean_batch(self, rows: list[CaseReport]) -> CleaningDelta:
        if self._cleaner is None:
            # No-clean mode matches the monitor's historical semantics:
            # the first version of a case wins, later versions of the
            # same case id are dropped unseen.
            fresh: list[CaseReport] = []
            for report in rows:
                if report.case_id not in self._seen_case_ids:
                    self._seen_case_ids.add(report.case_id)
                    fresh.append(report)
            return CleaningDelta(appended=fresh, n_new_cases=len(fresh))
        normalized = None
        n_workers = resolve_workers(self.config.n_workers)
        if n_workers > 1 and len(rows) >= PARALLEL_MIN_ROWS:
            normalized = normalize_batch(
                rows, self._ensure_pool(n_workers), n_workers
            )
        return self._cleaner.ingest(rows, normalized=normalized)

    def _ensure_pool(self, n_workers: int) -> MiningPool:
        """The engine's long-lived pool, shared by cleaning and mining.

        A :class:`~repro.parallel.pool.MiningPool`, so workers keep
        shard rows resident between batches: each delta re-mine of the
        grown database ships per-leaf appends/updates instead of the
        accumulated history.
        """
        if self._pool is None:
            self._pool = MiningPool(n_workers)
        return self._pool

    def _rebuild_reason(
        self, delta: CleaningDelta, n_touched: int
    ) -> str | None:
        if self._result is None:
            return "initial build"
        if delta.needs_rebuild:
            return "case-version merge flipped a duplicate drop"
        reason = self._encoder.rebuild_reason(delta)
        if reason is not None:
            return reason
        n_after = len(self._encoder.database) + len(delta.appended)
        fraction = self.config.incremental_rebuild_fraction
        if n_after and n_touched / n_after > fraction:
            return (
                f"delta touches {n_touched}/{n_after} rows "
                f"(> rebuild fraction {fraction})"
            )
        return None

    # -- full rebuild path ---------------------------------------------

    def _run_rebuild(self, delta: CleaningDelta, registry, stats) -> None:
        config = self.config
        with registry.timer("incremental.encode"):
            if self._cleaner is not None:
                kept = self._cleaner.kept_reports()
            else:
                kept = list(self._encoder.row_reports) + delta.appended
            self._encoder.rebuild(kept)
        database = self._encoder.database
        threshold = resolve_min_support(config.min_support, len(database))
        oracle = SupportOracle.for_database(database)
        n_workers = resolve_workers(config.n_workers)
        with registry.timer("incremental.mine"):
            if n_workers > 1 and len(database) > 1:
                # Mirror the one-shot pipeline's sharded invocation
                # bit for bit — same plan, same shared oracle.
                dataset = ReportDataset.from_cleaned(
                    tuple(kept), self._encoder.quarter()
                )
                closed = fpclose_sharded(
                    database,
                    threshold,
                    max_len=config.max_itemset_len,
                    n_workers=n_workers,
                    plan=plan_shards(dataset, n_workers, config.shard_strategy),
                    oracle=oracle,
                    pool=self._ensure_pool(n_workers),
                )
            else:
                closed = fpclose(
                    database, threshold, max_len=config.max_itemset_len
                )
            closed = canonical_itemset_order(closed)
        stats.update(
            n_carried=0,
            n_mined=len(closed),
            n_suspects=0,
            reuse_ratio=0.0,
            oracle_entries_carried=0,
        )
        with registry.timer("incremental.downstream"):
            self._downstream(
                closed,
                oracle,
                carried_keys=frozenset(),
                reuse_artifacts=False,
                registry=registry,
                stats=stats,
            )

    # -- delta path ----------------------------------------------------

    def _run_delta(self, delta: CleaningDelta, registry, stats) -> None:
        config = self.config
        with registry.timer("incremental.encode"):
            effect = self._encoder.apply(delta)
        database = self._encoder.database
        threshold = resolve_min_support(config.min_support, len(database))

        if effect.touched_mask == 0:
            # Metadata-only delta (e.g. a follow-up that changed an
            # event date but no drug/ADR sets): the mining state is
            # untouched, everything carries.
            assert self._oracle is not None
            stats.update(
                n_carried=len(self._closed),
                n_mined=0,
                n_suspects=0,
                reuse_ratio=1.0,
                oracle_entries_carried=0,
            )
            with registry.timer("incremental.downstream"):
                self._downstream(
                    self._closed,
                    self._oracle,
                    carried_keys={fi.items for fi in self._closed},
                    reuse_artifacts=len(database) == self._n_rows_prev,
                    registry=registry,
                    stats=stats,
                )
            return

        touched_tids = effect.updated_tids + effect.appended_tids
        n_workers = resolve_workers(config.n_workers)
        with registry.timer("incremental.mine"):
            carried, suspects = carry_closed_itemsets(
                self._closed, database, touched_tids, threshold
            )
            if n_workers > 1 and len(database) > 1:
                # Shard the delta re-mine across the long-lived pool:
                # the same plan the one-shot pipeline would use, but
                # each shard's rows projected onto the touched rows'
                # item universe (see repro.parallel.miner), so worker
                # cost tracks the delta's neighbourhood, not history.
                dataset = ReportDataset.from_cleaned(
                    tuple(self._encoder.row_reports), self._encoder.quarter()
                )
                mined = fpclose_sharded(
                    database,
                    threshold,
                    max_len=config.max_itemset_len,
                    n_workers=n_workers,
                    plan=plan_shards(dataset, n_workers, config.shard_strategy),
                    pool=self._ensure_pool(n_workers),
                    touched_mask=effect.touched_mask,
                    updated_tids=effect.updated_tids,
                )
            else:
                mined = fpclose(
                    database,
                    threshold,
                    max_len=config.max_itemset_len,
                    touched_mask=effect.touched_mask,
                )
            closed = canonical_itemset_order(carried + mined)
        registry.counter("incremental.closed_carried").inc(len(carried))
        registry.counter("incremental.closed_mined").inc(len(mined))
        registry.counter("incremental.suspects_dropped").inc(suspects)

        # Fresh oracle over the mutated masks, warm-started with every
        # closed support plus the previous cache's delta-disjoint
        # entries (their masks cannot have changed).
        oracle = SupportOracle(BitsetIndex(database))
        for fi in closed:
            oracle.warm(fi.items, fi.support)
        oracle_carried = 0
        if self._oracle is not None:
            oracle_carried = oracle.warm_from(
                self._oracle, invalidated=frozenset(effect.delta_items)
            )
        registry.counter("incremental.oracle_entries_carried").inc(
            oracle_carried
        )
        n_closed = len(closed)
        stats.update(
            n_carried=len(carried),
            n_mined=len(mined),
            n_suspects=suspects,
            reuse_ratio=len(carried) / n_closed if n_closed else 1.0,
            oracle_entries_carried=oracle_carried,
        )
        with registry.timer("incremental.downstream"):
            self._downstream(
                closed,
                oracle,
                carried_keys={fi.items for fi in carried},
                reuse_artifacts=len(database) == self._n_rows_prev,
                delta_items=frozenset(effect.delta_items),
                registry=registry,
                stats=stats,
            )

    # -- downstream (rules / associations / clusters / result) --------

    def _downstream(
        self,
        closed: list[FrequentItemset],
        oracle: SupportOracle,
        *,
        carried_keys: frozenset[Itemset] | set[Itemset],
        reuse_artifacts: bool,
        delta_items: frozenset[int] = frozenset(),
        registry,
        stats: dict[str, object],
    ) -> None:
        config = self.config
        database = self._encoder.database
        catalog = database.catalog
        antecedent_ids = catalog.ids_of_kind(DRUG_KIND)
        consequent_ids = catalog.ids_of_kind(ADR_KIND)
        n_total = len(database)

        artifacts: dict[Itemset, _Artifacts] = {}
        support_types: dict[Itemset, SupportType] = {}
        associations: list[DrugADRAssociation] = []
        clusters: list[MCAC] = []
        n_rules = 0
        artifacts_carried = 0
        support_types_carried = 0

        for fi in closed:
            key = fi.items
            entry: _Artifacts | None = None
            if (
                reuse_artifacts
                and key in carried_keys
                and key.isdisjoint(delta_items)
            ):
                # Rule metrics and cluster levels are functions of the
                # supports of *subsets* of the itemset (antecedent
                # subsets, the consequent) plus n_total. A subset's
                # support can rise even when the carried itemset's own
                # tidset is untouched — a follow-up adding one item to
                # a row grows every subset that row now covers — so the
                # whole triple is reusable only when the itemset is
                # also disjoint from the delta's item universe (then no
                # subset can reach a changed row) and n_total is
                # unchanged.
                entry = self._artifacts.get(key)
                if entry is not None:
                    artifacts_carried += 1
            if entry is None:
                # Inline per-itemset partitioned_rules: same math, but
                # the kind partitions are hoisted out of the loop.
                antecedent = key & antecedent_ids
                consequent = key & consequent_ids
                rule: AssociationRule | None = None
                if (
                    antecedent
                    and consequent
                    and antecedent | consequent == key
                ):
                    metrics = RuleMetrics.from_counts(
                        n_joint=fi.support,
                        n_antecedent=oracle.support(antecedent),
                        n_consequent=oracle.support(consequent),
                        n_total=n_total,
                    )
                    if metrics.confidence >= config.min_confidence:
                        rule = AssociationRule(antecedent, consequent, metrics)
                if rule is None:
                    entry = (None, None, None)
                elif not 2 <= len(rule.antecedent) <= config.max_drugs:
                    entry = (rule, None, None)
                else:
                    if key in carried_keys and key in self._support_types:
                        # Support-type classification reads only the
                        # containing transactions — untouched for a
                        # carried itemset even when n_total changed.
                        support_type = self._support_types[key]
                        support_types_carried += 1
                    else:
                        support_type = classify_support(
                            database, key, oracle=oracle
                        )
                    association = DrugADRAssociation(
                        rule=rule, support_type=support_type
                    )
                    cluster = build_cluster(rule, database, oracle=oracle)
                    entry = (rule, association, cluster)
            artifacts[key] = entry
            rule, association, cluster = entry
            if rule is not None:
                n_rules += 1
            if association is not None:
                associations.append(association)
                clusters.append(cluster)
                support_types[key] = association.support_type

        unsupported = [
            a for a in associations if a.support_type is SupportType.UNSUPPORTED
        ]
        if unsupported:
            raise ConfigError(
                f"internal error: {len(unsupported)} closed rules classified "
                "as unsupported; Lemma 3.4.2 violated"
            )

        registry.counter("incremental.artifacts_carried").inc(artifacts_carried)
        registry.counter("incremental.support_types_carried").inc(
            support_types_carried
        )
        stats["artifacts_carried"] = artifacts_carried
        stats["support_types_carried"] = support_types_carried
        stats["n_rules"] = n_rules
        stats["n_associations"] = len(associations)

        dataset = ReportDataset.from_cleaned(
            tuple(self._encoder.row_reports), self._encoder.quarter()
        )
        encoded = EncodedDataset.from_parts(
            database,
            tuple(self._encoder.row_case_ids),
            dataset.reports,
            dict(self._encoder.report_by_case),
        )
        self._result = MarasResult(
            config=config,
            dataset=dataset,
            encoded=encoded,
            associations=associations,
            clusters=clusters,
            cleaning_stats=(
                self._cleaner.stats() if self._cleaner is not None else None
            ),
            rule_counts=None,
            metrics=registry.snapshot() if registry.enabled else None,
        )
        self._closed = list(closed)
        self._oracle = oracle
        self._artifacts = artifacts
        self._support_types = support_types
        self._n_rows_prev = n_total
