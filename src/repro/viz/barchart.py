"""The bar-chart rendering of an MCAC (Fig 5.3) — the user-study control.

The same information as the contextual glyph, but encoded as grouped
vertical bars: the target rule's confidence first (accent color), then
every contextual rule's confidence, grouped by antecedent cardinality
and colored with the glyph's level palette. The user study compares how
quickly analysts find interesting clusters with this encoding versus
the glyph.
"""

from __future__ import annotations

from repro.core.context import MCAC
from repro.viz.glyph import level_color
from repro.viz.svg import SVGDocument

_TARGET_COLOR = "#c24d3a"


def render_barchart(
    cluster: MCAC,
    catalog=None,
    *,
    bar_width: float = 26.0,
    bar_gap: float = 8.0,
    plot_height: float = 180.0,
) -> SVGDocument:
    """Render one MCAC as a grouped confidence bar-chart.

    Pass ``catalog`` to label bars with drug initials; without it bars
    are labelled by level index only (the user-study stimuli omit names
    so subjects judge shape, not vocabulary).
    """
    bars: list[tuple[float, str, str]] = [
        (cluster.target.metrics.confidence, _TARGET_COLOR, "R")
    ]
    for level in sorted(cluster.levels):
        for index, rule in enumerate(cluster.levels[level], start=1):
            if catalog is not None:
                label = "+".join(
                    name[:3] for name in catalog.labels(rule.antecedent)
                )
            else:
                label = f"{level}.{index}"
            bars.append((rule.metrics.confidence, level_color(level), label))

    margin_left, margin_top, margin_bottom = 36.0, 16.0, 34.0
    width = margin_left + len(bars) * (bar_width + bar_gap) + bar_gap
    height = margin_top + plot_height + margin_bottom
    doc = SVGDocument(width, height, background="#ffffff")

    # y axis with 0 / 0.5 / 1.0 gridlines.
    axis_x = margin_left - 6
    for fraction in (0.0, 0.5, 1.0):
        y = margin_top + plot_height * (1 - fraction)
        doc.line(axis_x, y, width - bar_gap, y, stroke="#dddddd", dashed=fraction != 0.0)
        doc.text(axis_x - 2, y + 4, f"{fraction:.1f}", size=9, anchor="end", fill="#777777")

    x = margin_left + bar_gap
    for confidence, color, label in bars:
        confidence = max(0.0, min(1.0, confidence))
        bar_height = plot_height * confidence
        doc.rect(
            x,
            margin_top + plot_height - bar_height,
            bar_width,
            bar_height,
            fill=color,
        )
        doc.text(
            x + bar_width / 2,
            margin_top + plot_height + 14,
            label,
            size=8,
            anchor="middle",
            fill="#555555",
        )
        x += bar_width + bar_gap
    return doc
