"""Plain-text and markdown renderings of MeDIAR results.

Deterministic textual companions to the SVG views:

- :func:`cluster_detail` — one MCAC in the layout of Table 3.1;
- :func:`top_k_table` / :func:`ranking_markdown` — the Table 5.2
  side-by-side method comparison;
- :func:`rule_reduction_table` — the Fig 5.1 per-quarter rule counts.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.context import MCAC
from repro.core.pipeline import RuleSpaceCounts
from repro.core.ranking import RankedCluster, RankingMethod

_METHOD_TITLES = {
    RankingMethod.CONFIDENCE: "Confidence",
    RankingMethod.LIFT: "Lift",
    RankingMethod.EXCLUSIVENESS_CONFIDENCE: "Exclusiveness w/ Confidence",
    RankingMethod.EXCLUSIVENESS_LIFT: "Exclusiveness w/ Lift",
    RankingMethod.IMPROVEMENT: "Improvement",
}


def cluster_detail(cluster: MCAC, catalog) -> str:
    """Table 3.1 layout: target first, context levels deepest-first."""
    lines = [
        f"R     {cluster.target.describe(catalog)}  "
        f"(conf={cluster.target.metrics.confidence:.3f}, "
        f"lift={cluster.target.metrics.lift:.2f}, "
        f"support={cluster.target.metrics.n_joint})"
    ]
    for level in sorted(cluster.levels, reverse=True):
        for index, rule in enumerate(cluster.levels[level], start=1):
            lines.append(
                f"R~{level}{index}   {rule.describe(catalog)}  "
                f"(conf={rule.metrics.confidence:.3f})"
            )
    return "\n".join(lines)


def _cluster_cell(entry: RankedCluster, catalog) -> str:
    drugs = " ".join(catalog.labels(entry.cluster.target.antecedent))
    adrs = " ".join(catalog.labels(entry.cluster.target.consequent))
    return f"{drugs} => {adrs} [{entry.score:.3f}]"


def top_k_table(
    table: Mapping[RankingMethod, Sequence[RankedCluster]], catalog
) -> str:
    """Table 5.2 as aligned plain text, one section per ranking method."""
    sections = []
    for method, entries in table.items():
        header = _METHOD_TITLES.get(method, method.value)
        rows = [f"== {header} =="]
        rows.extend(
            f"  {entry.rank}. {_cluster_cell(entry, catalog)}" for entry in entries
        )
        sections.append("\n".join(rows))
    return "\n\n".join(sections)


def ranking_markdown(
    table: Mapping[RankingMethod, Sequence[RankedCluster]], catalog
) -> str:
    """Table 5.2 as a markdown table (methods as columns, ranks as rows)."""
    methods = list(table)
    depth = max((len(entries) for entries in table.values()), default=0)
    header = "| Rank | " + " | ".join(
        _METHOD_TITLES.get(m, m.value) for m in methods
    ) + " |"
    divider = "|---" * (len(methods) + 1) + "|"
    lines = [header, divider]
    for rank_index in range(depth):
        cells = []
        for method in methods:
            entries = table[method]
            cells.append(
                _cluster_cell(entries[rank_index], catalog)
                if rank_index < len(entries)
                else ""
            )
        lines.append(f"| {rank_index + 1} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def rule_reduction_table(counts_by_quarter: Mapping[str, RuleSpaceCounts]) -> str:
    """Fig 5.1 as a table: per-quarter total / filtered / MCAC counts."""
    lines = [
        f"{'Quarter':10s} {'Total Rules':>14s} {'Filtered Rules':>16s} {'MCACs':>10s}",
    ]
    for quarter in sorted(counts_by_quarter):
        counts = counts_by_quarter[quarter]
        lines.append(
            f"{quarter:10s} {counts.total_rules:>14,d} "
            f"{counts.filtered_rules:>16,d} {counts.mcacs:>10,d}"
        )
    return "\n".join(lines)
