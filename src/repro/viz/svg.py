"""A minimal SVG document builder.

Just enough vector drawing for the MeDIAR glyphs and charts: circles,
rectangles, lines, text, annular sectors, and groups — accumulated as
elements and serialized to a standalone ``.svg`` string. No external
dependency; attribute values are escaped so arbitrary drug names are
safe to render.
"""

from __future__ import annotations

import math
from pathlib import Path
from xml.sax.saxutils import escape, quoteattr

from repro.errors import ConfigError


def _fmt(value: float) -> str:
    """Compact numeric formatting: 12.0 → '12', 12.345678 → '12.346'."""
    if value == int(value):
        return str(int(value))
    return f"{value:.3f}"


class SVGDocument:
    """An append-only SVG canvas.

    >>> doc = SVGDocument(100, 100)
    >>> doc.circle(50, 50, 20, fill="#4477aa")
    >>> text = doc.to_string()
    """

    def __init__(self, width: float, height: float, *, background: str | None = None) -> None:
        if width <= 0 or height <= 0:
            raise ConfigError(f"canvas must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self._elements: list[str] = []
        if background is not None:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    def _append(self, tag: str, attributes: dict[str, str], text: str | None = None) -> None:
        rendered = " ".join(
            f"{name}={quoteattr(value)}" for name, value in attributes.items()
        )
        if text is None:
            self._elements.append(f"<{tag} {rendered}/>")
        else:
            self._elements.append(f"<{tag} {rendered}>{escape(text)}</{tag}>")

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        *,
        fill: str = "none",
        stroke: str = "#333333",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        self._append(
            "circle",
            {
                "cx": _fmt(cx),
                "cy": _fmt(cy),
                "r": _fmt(r),
                "fill": fill,
                "stroke": stroke,
                "stroke-width": _fmt(stroke_width),
                "opacity": _fmt(opacity),
            },
        )

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        *,
        fill: str = "none",
        stroke: str = "none",
        stroke_width: float = 1.0,
    ) -> None:
        self._append(
            "rect",
            {
                "x": _fmt(x),
                "y": _fmt(y),
                "width": _fmt(width),
                "height": _fmt(height),
                "fill": fill,
                "stroke": stroke,
                "stroke-width": _fmt(stroke_width),
            },
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        stroke: str = "#333333",
        stroke_width: float = 1.0,
        dashed: bool = False,
    ) -> None:
        attributes = {
            "x1": _fmt(x1),
            "y1": _fmt(y1),
            "x2": _fmt(x2),
            "y2": _fmt(y2),
            "stroke": stroke,
            "stroke-width": _fmt(stroke_width),
        }
        if dashed:
            attributes["stroke-dasharray"] = "4 3"
        self._append("line", attributes)

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        size: float = 12.0,
        anchor: str = "start",
        fill: str = "#222222",
        weight: str = "normal",
    ) -> None:
        self._append(
            "text",
            {
                "x": _fmt(x),
                "y": _fmt(y),
                "font-size": _fmt(size),
                "text-anchor": anchor,
                "fill": fill,
                "font-weight": weight,
                "font-family": "Helvetica, Arial, sans-serif",
            },
            text=content,
        )

    def path(
        self,
        d: str,
        *,
        fill: str = "none",
        stroke: str = "#333333",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        self._append(
            "path",
            {
                "d": d,
                "fill": fill,
                "stroke": stroke,
                "stroke-width": _fmt(stroke_width),
                "opacity": _fmt(opacity),
            },
        )

    def annular_sector(
        self,
        cx: float,
        cy: float,
        inner_radius: float,
        outer_radius: float,
        start_angle: float,
        end_angle: float,
        *,
        fill: str = "#888888",
        stroke: str = "#ffffff",
        stroke_width: float = 0.5,
        opacity: float = 1.0,
    ) -> None:
        """Filled ring segment between two radii and two angles.

        Angles are in radians, measured **clockwise from 12 o'clock**
        (the glyph's layout convention). ``end_angle`` must exceed
        ``start_angle`` by less than 2π.
        """
        if inner_radius < 0 or outer_radius <= inner_radius:
            raise ConfigError(
                f"need 0 <= inner < outer, got {inner_radius}, {outer_radius}"
            )
        sweep = end_angle - start_angle
        if not 0 < sweep < 2 * math.pi:
            raise ConfigError(f"sweep must be in (0, 2π), got {sweep}")
        x0_outer, y0_outer = _polar(cx, cy, outer_radius, start_angle)
        x1_outer, y1_outer = _polar(cx, cy, outer_radius, end_angle)
        x0_inner, y0_inner = _polar(cx, cy, inner_radius, start_angle)
        x1_inner, y1_inner = _polar(cx, cy, inner_radius, end_angle)
        large_arc = 1 if sweep > math.pi else 0
        d = (
            f"M {_fmt(x0_outer)} {_fmt(y0_outer)} "
            f"A {_fmt(outer_radius)} {_fmt(outer_radius)} 0 {large_arc} 1 "
            f"{_fmt(x1_outer)} {_fmt(y1_outer)} "
            f"L {_fmt(x1_inner)} {_fmt(y1_inner)} "
            f"A {_fmt(inner_radius)} {_fmt(inner_radius)} 0 {large_arc} 0 "
            f"{_fmt(x0_inner)} {_fmt(y0_inner)} Z"
        )
        self.path(d, fill=fill, stroke=stroke, stroke_width=stroke_width, opacity=opacity)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def to_string(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">\n  '
            f"{body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> Path:
        """Write the document to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string(), encoding="utf-8")
        return path


def _polar(cx: float, cy: float, radius: float, angle: float) -> tuple[float, float]:
    """Clockwise-from-12-o'clock polar to SVG cartesian."""
    return (cx + radius * math.sin(angle), cy - radius * math.cos(angle))
