"""Static HTML dashboard — the demo front-end, offline.

MeDIAR is an interactive demo; the closest faithful offline artifact is
a single self-contained HTML page per mined quarter: the ranked glyph
panorama up top, a sortless top-k table with novelty/severity columns,
and a detail section per top cluster embedding its zoom glyph, its
bar-chart, the Table 3.1-style context listing, and the supporting case
ids. SVGs are inlined, so the file opens anywhere with no assets.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.core.pipeline import MarasResult
from repro.core.ranking import RankingMethod
from repro.errors import ConfigError
from repro.knowledge.ddi_reference import DDIReference, default_reference
from repro.knowledge.severity import SeverityIndex, default_severity_index
from repro.viz.barchart import render_barchart
from repro.viz.glyph import render_zoom_view
from repro.viz.panorama import render_panorama

# Tiny dependency-free column sorter: click a header to sort the
# ranking table by that column (numeric when the cells parse as
# numbers, lexicographic otherwise).
_SCRIPT = """
document.querySelectorAll('table.sortable th').forEach(function (th, col) {
  th.style.cursor = 'pointer';
  th.addEventListener('click', function () {
    var table = th.closest('table');
    var rows = Array.from(table.querySelectorAll('tr')).slice(1);
    var ascending = th.dataset.asc !== 'true';
    th.dataset.asc = ascending;
    rows.sort(function (a, b) {
      var x = a.children[col].textContent.trim();
      var y = b.children[col].textContent.trim();
      var nx = parseFloat(x), ny = parseFloat(y);
      var cmp = (!isNaN(nx) && !isNaN(ny)) ? nx - ny : x.localeCompare(y);
      return ascending ? cmp : -cmp;
    });
    rows.forEach(function (row) { table.appendChild(row); });
  });
});
"""

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 1080px; color: #222; }
h1 { border-bottom: 2px solid #c24d3a; padding-bottom: 0.3em; }
table { border-collapse: collapse; width: 100%; margin: 1em 0; }
th, td { border: 1px solid #ddd; padding: 6px 10px; text-align: left;
         font-size: 14px; }
th { background: #f4f4f4; }
tr.severe td { background: #fdf0ee; }
.cluster { border: 1px solid #e0e0e0; border-radius: 8px;
           padding: 1em 1.4em; margin: 1.4em 0; }
.visuals { display: flex; gap: 24px; align-items: flex-start;
           flex-wrap: wrap; }
.cases { color: #666; font-size: 13px; }
pre { background: #f8f8f8; padding: 0.8em; font-size: 13px;
      overflow-x: auto; }
"""


def render_dashboard(
    result: MarasResult,
    *,
    method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
    top_k: int = 10,
    detail_k: int = 3,
    reference: DDIReference | None = None,
    severity: SeverityIndex | None = None,
) -> str:
    """Render one quarter's results as a self-contained HTML page."""
    if top_k < 1 or detail_k < 0:
        raise ConfigError("top_k must be >= 1 and detail_k >= 0")
    reference = reference if reference is not None else default_reference()
    severity = severity if severity is not None else default_severity_index()
    catalog = result.catalog
    stats = result.dataset.stats()
    ranked = result.rank(method, top_k=top_k)
    if not ranked:
        raise ConfigError("nothing to render: no clusters mined")

    parts: list[str] = []
    parts.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    parts.append(f"<title>MeDIAR — {html.escape(stats.quarter or 'quarter')}</title>")
    parts.append(f"<style>{_STYLE}</style></head><body>")
    parts.append(
        f"<h1>MeDIAR — {html.escape(stats.quarter or 'unlabelled quarter')}</h1>"
    )
    parts.append(
        f"<p>{stats.n_reports:,d} reports · {stats.n_drugs:,d} distinct drugs · "
        f"{stats.n_adrs:,d} distinct ADRs · {len(result.clusters):,d} multi-drug "
        f"clusters · ranked by <b>{html.escape(method.value)}</b></p>"
    )

    parts.append("<h2>Panoramagram</h2>")
    parts.append(render_panorama(ranked, catalog).to_string())

    parts.append(f"<h2>Top {len(ranked)} interactions</h2>")
    parts.append("<p style='color:#888;font-size:13px'>click a column header to sort</p>")
    parts.append(
        "<table class='sortable'><tr><th>#</th><th>drugs</th><th>reactions</th>"
        "<th>score</th><th>support</th><th>novelty</th><th>severity</th></tr>"
    )
    for entry in ranked:
        drugs = catalog.labels(entry.cluster.target.antecedent)
        adrs = catalog.labels(entry.cluster.target.consequent)
        novelty = reference.classify(drugs, adrs)
        worst = severity.max_severity(adrs)
        row_class = " class='severe'" if severity.is_severe(adrs) else ""
        parts.append(
            f"<tr{row_class}><td>{entry.rank}</td>"
            f"<td>{html.escape(' + '.join(drugs))}</td>"
            f"<td>{html.escape(', '.join(adrs))}</td>"
            f"<td>{entry.score:.3f}</td>"
            f"<td>{entry.cluster.target.metrics.n_joint}</td>"
            f"<td>{html.escape(novelty)}</td>"
            f"<td>{html.escape(worst.name.replace('_', ' ').lower())}</td></tr>"
        )
    parts.append("</table>")

    for entry in ranked[:detail_k]:
        cluster = entry.cluster
        drugs = catalog.labels(cluster.target.antecedent)
        parts.append("<div class='cluster'>")
        parts.append(f"<h3>#{entry.rank} — {html.escape(' + '.join(drugs))}</h3>")
        parts.append("<div class='visuals'>")
        parts.append(render_zoom_view(cluster, catalog).to_string())
        parts.append(render_barchart(cluster, catalog).to_string())
        parts.append("</div>")
        from repro.viz.report import cluster_detail

        parts.append(f"<pre>{html.escape(cluster_detail(cluster, catalog))}</pre>")
        cases = [r.case_id for r in result.supporting_reports(cluster)]
        parts.append(
            f"<p class='cases'>supporting cases ({len(cases)}): "
            f"{html.escape(', '.join(cases[:12]))}"
            f"{' …' if len(cases) > 12 else ''}</p>"
        )
        parts.append("</div>")

    parts.append(f"<script>{_SCRIPT}</script>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(result: MarasResult, path: str | Path, **kwargs) -> Path:
    """Render and write the dashboard; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_dashboard(result, **kwargs), encoding="utf-8")
    return path
