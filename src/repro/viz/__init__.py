"""Visualization of drug-ADR associations (Chapter 4).

The paper's front-end encodes each MCAC as a *Contextual Glyph*: an
inner circle whose diameter carries the target rule's confidence,
surrounded by annular sectors — one per contextual rule — whose radial
extent carries the contextual confidence, laid out clockwise from 12
o'clock by antecedent cardinality (darker = more drugs) and, within a
cardinality, by descending confidence.

Everything renders to standalone SVG (no plotting dependency):

- :mod:`repro.viz.svg` — a minimal SVG document builder;
- :mod:`repro.viz.glyph` — the contextual glyph (Fig 4.1) and its
  labelled zoom view (Fig 4.3);
- :mod:`repro.viz.panorama` — the panoramagram grid of ranked glyphs
  (Fig 4.2);
- :mod:`repro.viz.barchart` — the bar-chart alternative the user study
  compares against (Fig 5.3);
- :mod:`repro.viz.report` — plain-text/markdown renderings of rankings
  and clusters (Tables 3.1 and 5.2, the Fig 5.1 count table).
"""

from repro.viz.barchart import render_barchart
from repro.viz.charts import (
    render_fig_5_1,
    render_fig_5_2,
    render_grouped_bars,
    render_line_chart,
    render_trend_chart,
)
from repro.viz.dashboard import render_dashboard, write_dashboard
from repro.viz.glyph import GlyphGeometry, render_glyph, render_zoom_view
from repro.viz.panorama import render_panorama
from repro.viz.report import (
    cluster_detail,
    rule_reduction_table,
    ranking_markdown,
    top_k_table,
)
from repro.viz.svg import SVGDocument

__all__ = [
    "GlyphGeometry",
    "SVGDocument",
    "cluster_detail",
    "ranking_markdown",
    "render_barchart",
    "render_dashboard",
    "render_fig_5_1",
    "render_fig_5_2",
    "render_glyph",
    "render_grouped_bars",
    "render_line_chart",
    "render_panorama",
    "render_trend_chart",
    "render_zoom_view",
    "rule_reduction_table",
    "top_k_table",
    "write_dashboard",
]
