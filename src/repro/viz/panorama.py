"""The panoramagram of glyphs (Fig 4.2).

A grid of contextual glyphs in rank order — the analyst's overview of a
quarter's multi-drug associations, score-annotated so similar-ranked
groups sit together and outliers pop out.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.ranking import RankedCluster
from repro.errors import ConfigError
from repro.viz.glyph import GlyphGeometry, draw_glyph
from repro.viz.svg import SVGDocument


def render_panorama(
    ranked: Sequence[RankedCluster],
    catalog,
    *,
    columns: int = 5,
    geometry: GlyphGeometry | None = None,
    cell_padding: float = 14.0,
) -> SVGDocument:
    """Render ranked clusters as a glyph grid, best first (left→right, top→bottom).

    Each cell is captioned with the rank, score and the target's drug
    combination (truncated to fit).
    """
    if not ranked:
        raise ConfigError("nothing to render: ranked clusters are empty")
    if columns < 1:
        raise ConfigError(f"columns must be >= 1, got {columns}")
    geometry = geometry if geometry is not None else GlyphGeometry(
        inner_max=22.0, inner_min=3.0, ring_inner=26.0, ring_depth=22.0
    )
    cell = 2 * geometry.extent + 2 * cell_padding
    caption_height = 30.0
    rows = (len(ranked) + columns - 1) // columns
    doc = SVGDocument(
        columns * cell,
        rows * (cell + caption_height),
        background="#ffffff",
    )
    for index, entry in enumerate(ranked):
        row, col = divmod(index, columns)
        cx = col * cell + cell / 2
        cy = row * (cell + caption_height) + cell / 2
        draw_glyph(doc, entry.cluster, cx, cy, geometry)
        drugs = " + ".join(catalog.labels(entry.cluster.target.antecedent))
        if len(drugs) > 34:
            drugs = drugs[:31] + "..."
        base_y = row * (cell + caption_height) + cell
        doc.text(
            cx,
            base_y + 12,
            f"#{entry.rank}  score {entry.score:.3f}",
            size=11,
            anchor="middle",
            weight="bold",
        )
        doc.text(cx, base_y + 25, drugs, size=9, anchor="middle", fill="#555555")
    return doc
