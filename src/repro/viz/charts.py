"""Grouped bar charts (linear or log scale) for the evaluation figures.

Fig 5.1 is a grouped *log-scale* bar chart (three rule-count series per
quarter); Fig 5.2 is a grouped percentage bar chart (two encodings per
drug count). :func:`render_grouped_bars` draws both from the same
primitive: categories on the x-axis, one bar per series within each
category, a legend, and either a linear or a log10 y-axis.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.pipeline import RuleSpaceCounts
from repro.errors import ConfigError
from repro.viz.svg import SVGDocument

SERIES_COLORS = ("#4477aa", "#c24d3a", "#5aa469", "#8a6fb3", "#c9a227")


@dataclass(frozen=True, slots=True)
class ChartLayout:
    """Pixel layout of a grouped bar chart."""

    plot_width: float = 420.0
    plot_height: float = 220.0
    margin_left: float = 64.0
    margin_right: float = 130.0  # legend column
    margin_top: float = 34.0
    margin_bottom: float = 40.0
    bar_gap: float = 2.0
    group_gap: float = 18.0

    @property
    def width(self) -> float:
        return self.margin_left + self.plot_width + self.margin_right

    @property
    def height(self) -> float:
        return self.margin_top + self.plot_height + self.margin_bottom


def render_grouped_bars(
    categories: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    y_label: str = "",
    log_scale: bool = False,
    percent: bool = False,
    layout: ChartLayout | None = None,
) -> SVGDocument:
    """Render a grouped bar chart.

    Parameters
    ----------
    categories:
        X-axis labels, one per group.
    series:
        Series name → one value per category. Iteration order fixes both
        bar order and legend order.
    log_scale:
        Log10 y-axis (all values must be ≥ 1); bars rise from 10⁰.
    percent:
        Format y ticks as percentages of a [0, 1] axis.
    """
    if not categories:
        raise ConfigError("categories must be non-empty")
    if not series:
        raise ConfigError("series must be non-empty")
    if log_scale and percent:
        raise ConfigError("log_scale and percent are mutually exclusive")
    for name, values in series.items():
        if len(values) != len(categories):
            raise ConfigError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
        if log_scale and any(v < 1 for v in values):
            raise ConfigError(f"log-scale values must be >= 1 (series {name!r})")
        if any(v < 0 for v in values):
            raise ConfigError(f"bar values must be >= 0 (series {name!r})")

    layout = layout if layout is not None else ChartLayout()
    doc = SVGDocument(layout.width, layout.height, background="#ffffff")
    if title:
        doc.text(layout.margin_left, 20, title, size=13, weight="bold")

    peak = max(max(values) for values in series.values())
    if percent:
        axis_max = 1.0
        ticks = [0.0, 0.25, 0.5, 0.75, 1.0]
    elif log_scale:
        decades = max(1, math.ceil(math.log10(max(peak, 10))))
        axis_max = float(decades)
        ticks = list(range(decades + 1))
    else:
        axis_max = peak if peak > 0 else 1.0
        ticks = [axis_max * f for f in (0.0, 0.25, 0.5, 0.75, 1.0)]

    def y_of(value: float) -> float:
        if log_scale:
            scaled = math.log10(value) / axis_max if value >= 1 else 0.0
        else:
            scaled = value / axis_max
        scaled = min(max(scaled, 0.0), 1.0)
        return layout.margin_top + layout.plot_height * (1.0 - scaled)

    # Gridlines and tick labels.
    for tick in ticks:
        y = (
            layout.margin_top
            + layout.plot_height * (1.0 - (tick / axis_max if axis_max else 0.0))
        )
        doc.line(
            layout.margin_left,
            y,
            layout.margin_left + layout.plot_width,
            y,
            stroke="#e3e3e3",
            dashed=tick != ticks[0],
        )
        if percent:
            label = f"{tick:.0%}"
        elif log_scale:
            label = f"1e{int(tick)}"
        else:
            label = f"{tick:,.0f}"
        doc.text(layout.margin_left - 6, y + 4, label, size=9, anchor="end", fill="#666666")
    if y_label:
        doc.text(layout.margin_left - 6, layout.margin_top - 10, y_label, size=10, anchor="end", fill="#444444")

    # Bars.
    n_groups = len(categories)
    n_series = len(series)
    group_width = (layout.plot_width - layout.group_gap * (n_groups - 1)) / n_groups
    bar_width = (group_width - layout.bar_gap * (n_series - 1)) / n_series
    baseline = layout.margin_top + layout.plot_height
    for group_index, category in enumerate(categories):
        group_x = layout.margin_left + group_index * (group_width + layout.group_gap)
        for series_index, (name, values) in enumerate(series.items()):
            value = values[group_index]
            x = group_x + series_index * (bar_width + layout.bar_gap)
            top = y_of(value)
            if baseline - top > 0.1:
                doc.rect(
                    x,
                    top,
                    bar_width,
                    baseline - top,
                    fill=SERIES_COLORS[series_index % len(SERIES_COLORS)],
                )
        doc.text(
            group_x + group_width / 2,
            baseline + 16,
            category,
            size=10,
            anchor="middle",
            fill="#444444",
        )

    # Legend.
    legend_x = layout.margin_left + layout.plot_width + 14
    for series_index, name in enumerate(series):
        y = layout.margin_top + 8 + series_index * 18
        doc.rect(
            legend_x,
            y - 8,
            10,
            10,
            fill=SERIES_COLORS[series_index % len(SERIES_COLORS)],
        )
        doc.text(legend_x + 15, y, name, size=10, fill="#333333")
    return doc


def render_line_chart(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float | None]],
    *,
    title: str = "",
    y_label: str = "",
    layout: ChartLayout | None = None,
) -> SVGDocument:
    """Render a multi-series line chart; ``None`` values break the line.

    Used for cross-quarter signal trajectories: a cluster absent from a
    quarter shows as a gap, matching how the trend classifier sees it.
    """
    if not x_labels:
        raise ConfigError("x_labels must be non-empty")
    if not series:
        raise ConfigError("series must be non-empty")
    values_flat = [
        v
        for values in series.values()
        for v in values
        if v is not None
    ]
    if not values_flat:
        raise ConfigError("series contain no values")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ConfigError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_labels)} x labels"
            )

    layout = layout if layout is not None else ChartLayout()
    doc = SVGDocument(layout.width, layout.height, background="#ffffff")
    if title:
        doc.text(layout.margin_left, 20, title, size=13, weight="bold")

    low = min(0.0, min(values_flat))
    high = max(values_flat)
    if high == low:
        high = low + 1.0

    def y_of(value: float) -> float:
        scaled = (value - low) / (high - low)
        return layout.margin_top + layout.plot_height * (1.0 - scaled)

    def x_of(index: int) -> float:
        if len(x_labels) == 1:
            return layout.margin_left + layout.plot_width / 2
        return layout.margin_left + layout.plot_width * index / (len(x_labels) - 1)

    for fraction in (0.0, 0.5, 1.0):
        value = low + fraction * (high - low)
        y = y_of(value)
        doc.line(
            layout.margin_left,
            y,
            layout.margin_left + layout.plot_width,
            y,
            stroke="#e3e3e3",
            dashed=fraction != 0.0,
        )
        doc.text(layout.margin_left - 6, y + 4, f"{value:.2f}", size=9, anchor="end", fill="#666666")
    if y_label:
        doc.text(layout.margin_left - 6, layout.margin_top - 10, y_label, size=10, anchor="end", fill="#444444")
    for index, label in enumerate(x_labels):
        doc.text(
            x_of(index),
            layout.margin_top + layout.plot_height + 16,
            label,
            size=10,
            anchor="middle",
            fill="#444444",
        )

    for series_index, (name, values) in enumerate(series.items()):
        color = SERIES_COLORS[series_index % len(SERIES_COLORS)]
        previous: tuple[float, float] | None = None
        for index, value in enumerate(values):
            if value is None:
                previous = None
                continue
            point = (x_of(index), y_of(value))
            if previous is not None:
                doc.line(*previous, *point, stroke=color, stroke_width=2.0)
            doc.circle(point[0], point[1], 3.0, fill=color, stroke="none")
            previous = point
        legend_y = layout.margin_top + 8 + series_index * 18
        legend_x = layout.margin_left + layout.plot_width + 14
        doc.rect(legend_x, legend_y - 8, 10, 10, fill=color)
        doc.text(legend_x + 15, legend_y, name, size=10, fill="#333333")
    return doc


def render_trend_chart(trends: Sequence, *, max_series: int = 6) -> SVGDocument:
    """Line chart of :class:`~repro.core.trends.SignalTrend` trajectories.

    Plots the first ``max_series`` trends' scores over their quarters;
    gaps where a cluster was not mined.
    """
    if not trends:
        raise ConfigError("no trends to chart")
    chosen = list(trends)[:max_series]
    quarters = chosen[0].quarters
    series = {}
    for trend in chosen:
        drugs, _ = trend.key
        name = " + ".join(drugs)
        if len(name) > 26:
            name = name[:23] + "..."
        series[name] = list(trend.scores)
    return render_line_chart(
        list(quarters),
        series,
        title="Signal trajectories across quarters",
        y_label="score",
    )


def render_fig_5_1(counts_by_quarter: Mapping[str, RuleSpaceCounts]) -> SVGDocument:
    """Fig 5.1: rule-space reduction as a log-scale grouped bar chart."""
    quarters = sorted(counts_by_quarter)
    if not quarters:
        raise ConfigError("no quarters to chart")
    series = {
        "Total Rules": [max(1, counts_by_quarter[q].total_rules) for q in quarters],
        "Filtered Rules": [
            max(1, counts_by_quarter[q].filtered_rules) for q in quarters
        ],
        "MCACs": [max(1, counts_by_quarter[q].mcacs) for q in quarters],
    }
    return render_grouped_bars(
        quarters,
        series,
        title="Fig 5.1 — reduction in number of rules",
        y_label="rules (log)",
        log_scale=True,
    )


def render_fig_5_2(
    glyph_accuracy: Mapping[int, float], barchart_accuracy: Mapping[int, float]
) -> SVGDocument:
    """Fig 5.2: user-study accuracy by drug count, glyph vs bar-chart."""
    drug_counts = sorted(set(glyph_accuracy) & set(barchart_accuracy))
    if not drug_counts:
        raise ConfigError("no shared drug counts between the two series")
    series = {
        "Contextual Glyph": [glyph_accuracy[n] for n in drug_counts],
        "Barchart": [barchart_accuracy[n] for n in drug_counts],
    }
    return render_grouped_bars(
        [f"{n} drugs" for n in drug_counts],
        series,
        title="Fig 5.2 — user study results",
        y_label="correct",
        percent=True,
    )
