"""The Contextual Glyph (Figs 4.1 and 4.3).

Encoding, following Chapter 4 exactly:

- inner circle: the target rule; its radius is proportional to the
  target's confidence — *larger inner circle = stronger target*;
- annular sectors: one per contextual rule; the distance from the inner
  ring to the sector's arc is proportional to that rule's confidence —
  *shorter sectors = weaker context = more exclusive target*;
- layout: sectors start at 12 o'clock and run clockwise with uniform
  angular width, grouped by antecedent cardinality (level 1 first);
  within a level, ordered by descending confidence; each level gets one
  color, darker for larger cardinality.

So the paper's reading rule — "the larger the inner circle and the
smaller the outer circles ... the higher the rank of the group" — holds
by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.context import MCAC, ContextualRule
from repro.errors import ConfigError
from repro.viz.svg import SVGDocument

# One color per antecedent cardinality, light → dark (levels beyond 5
# reuse the darkest; the paper's clusters stop at 4 drugs).
LEVEL_COLORS = ("#9ecae8", "#5698c8", "#2a6aa0", "#16436b", "#0a2540")


def level_color(cardinality: int) -> str:
    """The fill color of contextual rules with ``cardinality`` drugs."""
    if cardinality < 1:
        raise ConfigError(f"cardinality must be >= 1, got {cardinality}")
    return LEVEL_COLORS[min(cardinality, len(LEVEL_COLORS)) - 1]


@dataclass(frozen=True, slots=True)
class GlyphGeometry:
    """Radii of the glyph's concentric regions.

    ``inner_max`` is the inner circle's radius at confidence 1;
    sectors span the annulus from ``ring_inner`` to
    ``ring_inner + ring_depth × confidence``.
    """

    inner_max: float = 34.0
    inner_min: float = 4.0
    ring_inner: float = 40.0
    ring_depth: float = 36.0

    def __post_init__(self) -> None:
        if not 0 < self.inner_min < self.inner_max < self.ring_inner:
            raise ConfigError(
                "need 0 < inner_min < inner_max < ring_inner, got "
                f"{self.inner_min}, {self.inner_max}, {self.ring_inner}"
            )
        if self.ring_depth <= 0:
            raise ConfigError(f"ring_depth must be positive, got {self.ring_depth}")

    @property
    def extent(self) -> float:
        """Radius of the glyph's bounding circle."""
        return self.ring_inner + self.ring_depth

    def inner_radius(self, confidence: float) -> float:
        """Inner-circle radius for a target confidence in [0, 1]."""
        return self.inner_min + (self.inner_max - self.inner_min) * _clamp(confidence)

    def sector_outer_radius(self, confidence: float) -> float:
        """Outer radius of a contextual sector for its confidence."""
        return self.ring_inner + self.ring_depth * _clamp(confidence)


def _clamp(value: float) -> float:
    return max(0.0, min(1.0, value))


def glyph_layout(cluster: MCAC) -> list[tuple[ContextualRule, float, float]]:
    """Angular layout: (rule, start, end) in clockwise-from-12 radians.

    Levels ascend (single-drug context first), and each level's rules
    are already confidence-sorted by the MCAC builder.
    """
    ordered: list[ContextualRule] = []
    for level in sorted(cluster.levels):
        ordered.extend(cluster.levels[level])
    if not ordered:
        raise ConfigError("cluster has no contextual rules to lay out")
    width = 2 * math.pi / len(ordered)
    return [
        (rule, index * width, (index + 1) * width)
        for index, rule in enumerate(ordered)
    ]


def draw_glyph(
    doc: SVGDocument,
    cluster: MCAC,
    cx: float,
    cy: float,
    geometry: GlyphGeometry | None = None,
) -> None:
    """Draw one contextual glyph centered at (cx, cy) on an existing canvas."""
    geometry = geometry if geometry is not None else GlyphGeometry()
    # Reference ring: the confidence-1 extent, so short sectors read as short.
    doc.circle(cx, cy, geometry.extent, stroke="#dddddd", stroke_width=0.8)
    doc.circle(cx, cy, geometry.ring_inner, stroke="#eeeeee", stroke_width=0.8)
    for rule, start, end in glyph_layout(cluster):
        outer = geometry.sector_outer_radius(rule.metrics.confidence)
        if outer <= geometry.ring_inner:
            continue  # zero-confidence context leaves an empty slot
        doc.annular_sector(
            cx,
            cy,
            geometry.ring_inner,
            outer,
            start,
            end,
            fill=level_color(rule.cardinality),
        )
    doc.circle(
        cx,
        cy,
        geometry.inner_radius(cluster.target.metrics.confidence),
        fill="#c24d3a",
        stroke="#8c3526",
        stroke_width=1.0,
    )


def render_glyph(
    cluster: MCAC,
    *,
    geometry: GlyphGeometry | None = None,
    padding: float = 8.0,
) -> SVGDocument:
    """Fig 4.1: one glyph on its own canvas."""
    geometry = geometry if geometry is not None else GlyphGeometry()
    size = 2 * (geometry.extent + padding)
    doc = SVGDocument(size, size, background="#ffffff")
    draw_glyph(doc, cluster, size / 2, size / 2, geometry)
    return doc


def render_zoom_view(
    cluster: MCAC,
    catalog,
    *,
    geometry: GlyphGeometry | None = None,
) -> SVGDocument:
    """Fig 4.3: the zoomed glyph with per-sector labels and a legend.

    Each sector is labelled with its antecedent drugs and confidence,
    placed along the sector's bisector outside the ring; the target
    rule's text heads the canvas.
    """
    geometry = geometry if geometry is not None else GlyphGeometry()
    label_room = 240.0
    size = 2 * (geometry.extent + label_room)
    doc = SVGDocument(size, size + 40, background="#ffffff")
    cx, cy = size / 2, size / 2 + 40
    doc.text(
        12,
        20,
        f"Target: {cluster.target.describe(catalog)}  "
        f"(conf={cluster.target.metrics.confidence:.3f})",
        size=14,
        weight="bold",
    )
    draw_glyph(doc, cluster, cx, cy, geometry)
    for rule, start, end in glyph_layout(cluster):
        bisector = (start + end) / 2
        label_radius = geometry.extent + 14
        x = cx + label_radius * math.sin(bisector)
        y = cy - label_radius * math.cos(bisector)
        anchor = "start" if math.sin(bisector) >= 0 else "end"
        drugs = ", ".join(catalog.labels(rule.antecedent))
        doc.text(
            x,
            y,
            f"{drugs} ({rule.metrics.confidence:.2f})",
            size=10,
            anchor=anchor,
            fill=level_color(rule.cardinality),
        )
    return doc
