"""MedDRA-style grouping of reaction terms into System Organ Classes.

FAERS reactions are MedDRA *preferred terms* (PTs); regulators read
them grouped by *System Organ Class* (SOC) — "is this cluster a renal
story or a cardiac one?". Real MedDRA is licensed and cannot ship, so
this module provides the same shape with open machinery:

- a curated PT → SOC map covering every named term in the vocabulary;
- keyword inference for everything else (the synthetic ADR universe is
  built from ``QUALIFIER SITE CONDITION`` phrases, and real PTs carry
  the same anatomical tokens), falling back to
  ``"General disorders"``.

Used to add SOC columns/sections to reports and dashboards and to
filter clusters by body system.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

# System Organ Classes (a practical subset of MedDRA's 27).
SOC_BLOOD = "Blood and lymphatic system disorders"
SOC_CARDIAC = "Cardiac disorders"
SOC_EAR = "Ear and labyrinth disorders"
SOC_ENDOCRINE = "Endocrine disorders"
SOC_EYE = "Eye disorders"
SOC_GI = "Gastrointestinal disorders"
SOC_GENERAL = "General disorders"
SOC_HEPATIC = "Hepatobiliary disorders"
SOC_IMMUNE = "Immune system disorders"
SOC_METABOLIC = "Metabolism and nutrition disorders"
SOC_MSK = "Musculoskeletal and connective tissue disorders"
SOC_NERVOUS = "Nervous system disorders"
SOC_PSYCH = "Psychiatric disorders"
SOC_RENAL = "Renal and urinary disorders"
SOC_RESPIRATORY = "Respiratory, thoracic and mediastinal disorders"
SOC_SKIN = "Skin and subcutaneous tissue disorders"
SOC_VASCULAR = "Vascular disorders"

ALL_SOCS = (
    SOC_BLOOD,
    SOC_CARDIAC,
    SOC_EAR,
    SOC_ENDOCRINE,
    SOC_EYE,
    SOC_GI,
    SOC_GENERAL,
    SOC_HEPATIC,
    SOC_IMMUNE,
    SOC_METABOLIC,
    SOC_MSK,
    SOC_NERVOUS,
    SOC_PSYCH,
    SOC_RENAL,
    SOC_RESPIRATORY,
    SOC_SKIN,
    SOC_VASCULAR,
)

# Curated assignments for the named vocabulary's terms.
_CURATED: dict[str, str] = {
    "ASTHMA": SOC_RESPIRATORY,
    "OSTEOPOROSIS": SOC_MSK,
    "CHRONIC GRAFT VERSUS HOST DISEASE": SOC_IMMUNE,
    "ACUTE GRAFT VERSUS HOST DISEASE": SOC_IMMUNE,
    "DRUG INEFFECTIVE": SOC_GENERAL,
    "OSTEONECROSIS OF JAW": SOC_MSK,
    "OSTEOARTHRITIS": SOC_MSK,
    "NEUROPATHY PERIPHERAL": SOC_NERVOUS,
    "PAIN": SOC_GENERAL,
    "ANAEMIA": SOC_BLOOD,
    "ACUTE RENAL FAILURE": SOC_RENAL,
    "HAEMORRHAGE": SOC_VASCULAR,
    "GRANULOCYTE COLONY-STIMULATING FACTOR NOS": SOC_BLOOD,
    "ANXIETY": SOC_PSYCH,
    "BLOOD GLUCOSE INCREASED": SOC_METABOLIC,
    "BONE FRACTURE": SOC_MSK,
    "GASTROOESOPHAGEAL REFLUX DISEASE": SOC_GI,
}

# Anatomical-token inference for everything else (covers the synthetic
# universe's SITE tokens and common real-PT stems).
_SITE_KEYWORDS: tuple[tuple[str, str], ...] = (
    ("RENAL", SOC_RENAL),
    ("URINARY", SOC_RENAL),
    ("CARDIAC", SOC_CARDIAC),
    ("MYOCARD", SOC_CARDIAC),
    ("HEPATIC", SOC_HEPATIC),
    ("BILIARY", SOC_HEPATIC),
    ("PULMONARY", SOC_RESPIRATORY),
    ("RESPIRATORY", SOC_RESPIRATORY),
    ("BRONCH", SOC_RESPIRATORY),
    ("GASTRIC", SOC_GI),
    ("INTESTINAL", SOC_GI),
    ("OESOPHAGEAL", SOC_GI),
    ("PANCREATIC", SOC_GI),
    ("DERMAL", SOC_SKIN),
    ("SKIN", SOC_SKIN),
    ("OCULAR", SOC_EYE),
    ("RETIN", SOC_EYE),
    ("AURICULAR", SOC_EAR),
    ("NEURAL", SOC_NERVOUS),
    ("CEREBRAL", SOC_NERVOUS),
    ("SPINAL", SOC_NERVOUS),
    ("VASCULAR", SOC_VASCULAR),
    ("HAEMORRH", SOC_VASCULAR),
    ("THROMBO", SOC_VASCULAR),
    ("MUSCULAR", SOC_MSK),
    ("ARTICULAR", SOC_MSK),
    ("OSTEO", SOC_MSK),
    ("SPLENIC", SOC_BLOOD),
    ("ANAEM", SOC_BLOOD),
    ("THYROID", SOC_ENDOCRINE),
    ("ADRENAL", SOC_ENDOCRINE),
    ("GLUCOSE", SOC_METABOLIC),
)


class MedDRAHierarchy:
    """PT → SOC lookup with curated entries first, keywords after."""

    def __init__(self, curated: Mapping[str, str] | None = None) -> None:
        self._curated = dict(_CURATED if curated is None else curated)

    def soc_of(self, adr_term: str) -> str:
        term = adr_term.upper().strip()
        known = self._curated.get(term)
        if known is not None:
            return known
        for keyword, soc in _SITE_KEYWORDS:
            if keyword in term:
                return soc
        return SOC_GENERAL

    def socs_of(self, adr_terms: Iterable[str]) -> frozenset[str]:
        """The set of SOCs spanned by a cluster's reactions."""
        return frozenset(self.soc_of(term) for term in adr_terms)

    def group_by_soc(self, adr_terms: Iterable[str]) -> dict[str, list[str]]:
        """SOC → sorted terms, only for SOCs that occur."""
        grouped: dict[str, list[str]] = {}
        for term in adr_terms:
            grouped.setdefault(self.soc_of(term), []).append(term)
        return {soc: sorted(terms) for soc, terms in sorted(grouped.items())}


def default_hierarchy() -> MedDRAHierarchy:
    """The stock PT → SOC hierarchy (curated terms + keyword inference)."""
    return MedDRAHierarchy()
