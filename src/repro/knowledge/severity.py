"""ADR severity classes.

§1.3 and §4.1 describe filtering for "drug interactions that may lead to
severe ADRs which might need immediate action". FAERS itself only flags
report-level seriousness, so this module maintains a term-level severity
index: a handful of curated life-threatening terms, plus keyword
heuristics for everything else (MedDRA-style terms wear their severity
on their sleeve: "...FAILURE", "...NECROSIS", "HAEMORRHAGE", ...).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping


class Severity(enum.IntEnum):
    """Ordered severity classes; comparisons follow clinical urgency."""

    MILD = 1
    MODERATE = 2
    SEVERE = 3
    LIFE_THREATENING = 4


_CURATED: dict[str, Severity] = {
    "ACUTE RENAL FAILURE": Severity.LIFE_THREATENING,
    "HAEMORRHAGE": Severity.LIFE_THREATENING,
    "ACUTE GRAFT VERSUS HOST DISEASE": Severity.LIFE_THREATENING,
    "CHRONIC GRAFT VERSUS HOST DISEASE": Severity.SEVERE,
    "OSTEONECROSIS OF JAW": Severity.SEVERE,
    "OSTEOPOROSIS": Severity.MODERATE,
    "BONE FRACTURE": Severity.SEVERE,
    "NEUROPATHY PERIPHERAL": Severity.MODERATE,
    "OSTEOARTHRITIS": Severity.MODERATE,
    "ASTHMA": Severity.MODERATE,
    "DRUG INEFFECTIVE": Severity.MODERATE,
    "PAIN": Severity.MILD,
    "ANXIETY": Severity.MILD,
    "ANAEMIA": Severity.MODERATE,
    "BLOOD GLUCOSE INCREASED": Severity.MODERATE,
    "GASTROOESOPHAGEAL REFLUX DISEASE": Severity.MILD,
}

_LIFE_THREATENING_KEYWORDS = (
    "FAILURE",
    "HAEMORRHAGE",
    "ARREST",
    "INFARCTION",
    "SEPSIS",
    "ANAPHYLA",
    "RUPTURE",
)
_SEVERE_KEYWORDS = (
    "NECROSIS",
    "THROMBOSIS",
    "ISCHAEMIA",
    "STENOSIS",
    "ULCERATION",
    "INSUFFICIENCY",
    "FRACTURE",
)
_MODERATE_KEYWORDS = (
    "FIBROSIS",
    "OEDEMA",
    "INFLAMMATION",
    "EFFUSION",
    "HYPERPLASIA",
    "DEGENERATION",
    "DYSTROPHY",
    "EROSION",
    "CALCIFICATION",
    "ATROPHY",
    "SPASM",
    "HYPERTROPHY",
)


class SeverityIndex:
    """Severity lookup: curated entries first, keyword heuristics after."""

    def __init__(self, curated: Mapping[str, Severity] | None = None) -> None:
        self._curated = dict(_CURATED if curated is None else curated)

    def severity_of(self, adr_term: str) -> Severity:
        term = adr_term.upper().strip()
        known = self._curated.get(term)
        if known is not None:
            return known
        if any(keyword in term for keyword in _LIFE_THREATENING_KEYWORDS):
            return Severity.LIFE_THREATENING
        if any(keyword in term for keyword in _SEVERE_KEYWORDS):
            return Severity.SEVERE
        if any(keyword in term for keyword in _MODERATE_KEYWORDS):
            return Severity.MODERATE
        return Severity.MILD

    def max_severity(self, adr_terms: Iterable[str]) -> Severity:
        """Worst severity among ``adr_terms`` (MILD for an empty iterable)."""
        worst = Severity.MILD
        for term in adr_terms:
            worst = max(worst, self.severity_of(term))
        return worst

    def is_severe(self, adr_terms: Iterable[str]) -> bool:
        """The §4.1 filter: does the cluster carry a SEVERE+ reaction?"""
        return self.max_severity(adr_terms) >= Severity.SEVERE


def default_severity_index() -> SeverityIndex:
    """The stock severity index (curated terms + keyword heuristics)."""
    return SeverityIndex()
