"""Domain-knowledge substrate.

The paper validates its top-ranked interactions against Drugs.com and
DrugBank (§5.4) and proposes highlighting interactions "that are not
unknown or may lead to particularly severe adverse reactions" (§1.3).
This package is the offline stand-in for those resources:

- :mod:`repro.knowledge.ddi_reference` — a curated reference of known
  drug-drug interactions (seeded with every interaction the paper cites)
  with membership lookup and novelty classification;
- :mod:`repro.knowledge.severity` — ADR severity classes used to flag
  clusters whose reactions are life-threatening.
"""

from repro.knowledge.ddi_reference import (
    DDIReference,
    KnownInteraction,
    default_reference,
)
from repro.knowledge.meddra import MedDRAHierarchy, default_hierarchy
from repro.knowledge.severity import Severity, SeverityIndex, default_severity_index

__all__ = [
    "DDIReference",
    "KnownInteraction",
    "MedDRAHierarchy",
    "Severity",
    "SeverityIndex",
    "default_hierarchy",
    "default_reference",
    "default_severity_index",
]
