"""Curated drug-drug-interaction reference (Drugs.com / DrugBank stand-in).

A :class:`DDIReference` answers the two questions the MeDIAR front-end
asks of domain knowledge:

- *is this drug combination a known interaction?* (validation, §5.4);
- *if so, which reactions does the literature associate with it?*
  (novelty: a mined cluster whose combination is known but whose ADR is
  not listed is still an "unknown ADR of a known interaction").

The default reference ships every interaction the paper cites —
Aspirin+Warfarin (Chan 1995), the three §5.4 case studies, the
Paroxetine+Pravastatin discovery of Tatonetti et al., and the PPI
therapeutic-duplication pair — so the case-study benchmarks can validate
against exactly the sources the authors used.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class KnownInteraction:
    """One literature-documented interaction."""

    drugs: frozenset[str]
    adrs: frozenset[str]
    source: str
    mechanism: str = ""

    def __post_init__(self) -> None:
        if len(self.drugs) < 2:
            raise ConfigError(
                f"an interaction involves at least two drugs, got {sorted(self.drugs)}"
            )
        if not self.adrs:
            raise ConfigError("an interaction lists at least one reaction")


class DDIReference:
    """Membership and novelty lookup over known interactions."""

    def __init__(self, interactions: Iterable[KnownInteraction]) -> None:
        self._interactions = tuple(interactions)
        self._by_drugs: dict[frozenset[str], list[KnownInteraction]] = {}
        for interaction in self._interactions:
            self._by_drugs.setdefault(interaction.drugs, []).append(interaction)

    def __len__(self) -> int:
        return len(self._interactions)

    def __iter__(self):
        return iter(self._interactions)

    def lookup(self, drugs: Iterable[str]) -> list[KnownInteraction]:
        """Known interactions whose drug set is exactly ``drugs``."""
        return list(self._by_drugs.get(frozenset(drugs), ()))

    def is_known_combination(self, drugs: Iterable[str]) -> bool:
        """True when ``drugs`` (or any subset pair of it) is documented.

        A mined 3-drug combination containing a documented 2-drug
        interaction counts as known — a safety evaluator would not call
        it a new discovery.
        """
        drugs = frozenset(drugs)
        return any(known <= drugs for known in self._by_drugs)

    def classify(
        self, drugs: Iterable[str], adrs: Iterable[str]
    ) -> str:
        """Novelty class of one mined (drugs, adrs) association.

        Returns one of:

        - ``"known"`` — a documented interaction covers the combination
          *and* at least one of the mined ADRs;
        - ``"known-combination-new-adr"`` — the combination is
          documented but none of the mined ADRs are;
        - ``"unknown"`` — no documented interaction within the
          combination.
        """
        drugs = frozenset(drugs)
        adrs = frozenset(adrs)
        covered = [
            interaction
            for known_drugs, interactions in self._by_drugs.items()
            if known_drugs <= drugs
            for interaction in interactions
        ]
        if not covered:
            return "unknown"
        if any(interaction.adrs & adrs for interaction in covered):
            return "known"
        return "known-combination-new-adr"

    def merged_with(self, extra: Sequence[KnownInteraction]) -> "DDIReference":
        """A new reference with ``extra`` appended (user-supplied knowledge)."""
        return DDIReference((*self._interactions, *extra))


def default_reference() -> DDIReference:
    """The interactions cited in the paper, with their sources."""
    return DDIReference(
        (
            KnownInteraction(
                drugs=frozenset({"ASPIRIN", "WARFARIN"}),
                adrs=frozenset({"HAEMORRHAGE"}),
                source="Chan 1995, Annals of Pharmacotherapy",
                mechanism="additive anticoagulant / antiplatelet effect",
            ),
            KnownInteraction(
                drugs=frozenset({"IBUPROFEN", "METAMIZOLE"}),
                adrs=frozenset({"ACUTE RENAL FAILURE"}),
                source="WHO Pharmaceuticals Newsletter 2014 (VigiBase)",
                mechanism="combined NSAID nephrotoxicity",
            ),
            KnownInteraction(
                drugs=frozenset({"METHOTREXATE", "PROGRAF"}),
                adrs=frozenset({"DRUG INEFFECTIVE", "ACUTE RENAL FAILURE"}),
                source="Drugs.com; DrugBank 4.0",
                mechanism="overlapping nephrotoxicity of methotrexate and tacrolimus",
            ),
            KnownInteraction(
                drugs=frozenset({"NEXIUM", "PREVACID"}),
                adrs=frozenset({"OSTEOPOROSIS", "BONE FRACTURE"}),
                source="Drugs.com (therapeutic duplication); Targownik 2008 CMAJ",
                mechanism="duplicated proton-pump inhibition, reduced calcium absorption",
            ),
            KnownInteraction(
                drugs=frozenset({"PAROXETINE", "PRAVASTATIN"}),
                adrs=frozenset({"BLOOD GLUCOSE INCREASED"}),
                source="Tatonetti 2011, Clinical Pharmacology & Therapeutics",
                mechanism="unexpected synergistic hyperglycaemia",
            ),
        )
    )
