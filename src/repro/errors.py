"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can guard a whole pipeline run with a
single ``except ReproError`` without accidentally swallowing genuine
programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid parameter value was supplied to a public API."""


class MiningError(ReproError):
    """The itemset-mining substrate was used inconsistently.

    Examples: asking for rules before mining itemsets, or querying the
    support of an item that is not in the catalog.
    """


class UnknownItemError(MiningError, KeyError):
    """An item label or item id was not found in the catalog."""

    def __init__(self, item: object) -> None:
        super().__init__(item)
        self.item = item

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return f"unknown item: {self.item!r}"


class ParseError(ReproError):
    """A FAERS source file could not be parsed.

    Attributes
    ----------
    path:
        The file being parsed, if known.
    line_number:
        1-based line number of the offending record, if known.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        line_number: int | None = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.line_number = line_number

    def __str__(self) -> str:
        location = ""
        if self.path is not None:
            location = f" [{self.path}"
            if self.line_number is not None:
                location += f":{self.line_number}"
            location += "]"
        return super().__str__() + location


class ValidationError(ReproError):
    """A data record violated a schema-level invariant."""


class StoreError(ReproError):
    """A durable run store could not be opened, read, or written.

    Raised by the :mod:`repro.store` backends for unknown URIs, corrupt
    or missing payloads, invalid run names, and checkpoint/resume
    mismatches. The CLI maps it (like every :class:`ReproError`) to a
    one-line message and a nonzero exit status.
    """


class QueryError(ReproError):
    """A serving-layer query could not be answered.

    Carries the HTTP status the JSON API maps it to, so the transport
    layer never needs to pattern-match on message strings.
    """

    status = 400


class BadQueryError(QueryError):
    """The query parameters were malformed (HTTP 400)."""

    status = 400


class NotFoundError(QueryError):
    """The named run / resource does not exist (HTTP 404)."""

    status = 404
