"""The threaded (sync) HTTP transport in front of the shared responder.

A :class:`~http.server.ThreadingHTTPServer` (one thread per connection,
daemonized) that hands every ``GET``/``HEAD`` request to the shared
:class:`~repro.serve.api.ApiResponder` — routing, byte-cache probes,
ETags, and error mapping all live there, so this transport and the
asyncio one (:mod:`repro.serve.aio`) produce byte-identical bodies.

This is the ``mediar serve --sync`` fallback and the simplest embedding
(:func:`running_server` for tests and notebooks). What remains here is
socket plumbing plus **graceful shutdown**: the server tracks in-flight
requests and :meth:`MediarHTTPServer.drain` blocks until they complete
(or a deadline passes), so a SIGTERM stops accepting, finishes what is
being written, and exits cleanly instead of dying mid-response.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.api import CONTENT_TYPE, ApiResponder, ApiResponse
from repro.serve.engine import QueryEngine

API_PREFIX = "/v1"


class MediarRequestHandler(BaseHTTPRequestHandler):
    """Hands one GET/HEAD request to the responder and writes the answer."""

    server: "MediarHTTPServer"
    server_version = "mediar-serve/1"
    protocol_version = "HTTP/1.1"
    # Response head and body go out as separate writes; without
    # TCP_NODELAY the Nagle/delayed-ACK interaction stalls every
    # keep-alive response by ~40ms.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle("GET")

    def do_HEAD(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle("HEAD")

    # Write methods route through the responder so clients get the API's
    # JSON 405 + Allow header, not the stdlib's bare 501.
    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle("DELETE")

    def do_PATCH(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle("PATCH")

    def _handle(self, method: str) -> None:
        with self.server.in_flight():
            headers = {
                key.lower(): value for key, value in self.headers.items()
            }
            # Discard any request body to keep the persistent connection
            # framed (the next request must start at the right byte).
            remaining = int(headers.get("content-length", 0) or 0)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            response = self.server.responder.handle(method, self.path, headers)
            self._respond(response)

    def _respond(self, response: ApiResponse) -> None:
        self.send_response(response.status)
        if response.status != 304:
            self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(response.content_length))
        if response.etag is not None:
            self.send_header("ETag", response.etag)
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        if response.send_body:
            self.wfile.write(response.body)

    def log_message(self, format: str, *args) -> None:
        """Default request logging is suppressed; obs counters cover it."""
        if self.server.verbose:  # pragma: no cover — manual serving only
            super().log_message(format, *args)


class MediarHTTPServer(ThreadingHTTPServer):
    """The sync serving process: a threading HTTP server, one responder."""

    daemon_threads = True

    def __init__(
        self,
        engine: QueryEngine | ApiResponder,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), MediarRequestHandler)
        if isinstance(engine, ApiResponder):
            self.responder = engine
        else:
            self.responder = ApiResponder(engine)
        self.verbose = verbose
        self._in_flight = 0
        self._drained = threading.Condition()

    @property
    def engine(self) -> QueryEngine:
        return self.responder.engine

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @contextmanager
    def in_flight(self) -> Iterator[None]:
        """Count one request for :meth:`drain` while it is being served."""
        with self._drained:
            self._in_flight += 1
        try:
            yield
        finally:
            with self._drained:
                self._in_flight -= 1
                if self._in_flight == 0:
                    self._drained.notify_all()

    def drain(self, deadline: float = 5.0) -> bool:
        """Wait until no request is in flight; True if fully drained.

        Call after :meth:`shutdown` (which stops the accept loop): the
        pair is the graceful-stop sequence — stop accepting, finish
        what is already being answered, then close the socket.
        """
        with self._drained:
            return self._drained.wait_for(
                lambda: self._in_flight == 0, timeout=deadline
            )


@contextmanager
def running_server(
    engine: QueryEngine | ApiResponder, host: str = "127.0.0.1", port: int = 0
) -> Iterator[MediarHTTPServer]:
    """Run a server on a background thread for the enclosed block.

    ``port=0`` binds an ephemeral port (read it off ``server.url``) —
    the shape tests and the example client use.
    """
    server = MediarHTTPServer(engine, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.drain()
        server.server_close()
        thread.join(timeout=5)
