"""The stdlib HTTP/JSON transport in front of the query engine.

A :class:`~http.server.ThreadingHTTPServer` (one thread per in-flight
request, daemonized) dispatching GET routes to
:class:`~repro.serve.engine.QueryEngine` methods:

====================  =================================================
``/v1/healthz``       liveness + loaded run names
``/v1/metrics``       :mod:`repro.obs` snapshot + LRU cache accounting
``/v1/runs``          run listing with dataset stats and sort keys
``/v1/associations``  flat rule listing (filter/sort/paginate)
``/v1/clusters``      MCAC listing; ``/v1/clusters/<id>`` for one
``/v1/drugs/<name>``  drug profile: partners, ADRs, cluster ids
``/v1/search``        prefix-token vocabulary search (``q=``, ``kind=``)
====================  =================================================

Error mapping is type-driven: :class:`~repro.errors.QueryError`
subclasses carry their HTTP status (400/404), any other library error
is a 400, and unexpected exceptions are a 500 whose body never leaks a
traceback. All responses — errors included — are
``{"error": {...}}``/payload JSON with ``Content-Type:
application/json``.

The engine is transport-agnostic; everything here is parsing, routing,
serialization, and per-route :mod:`repro.obs` request accounting.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import NotFoundError, QueryError, ReproError
from repro.serve.engine import QueryEngine

API_PREFIX = "/v1"


class MediarRequestHandler(BaseHTTPRequestHandler):
    """Routes one GET request into the engine and serializes the answer."""

    server: "MediarHTTPServer"
    server_version = "mediar-serve/1"
    protocol_version = "HTTP/1.1"

    # -- routing --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        params = dict(parse_qsl(split.query))
        engine = self.server.engine
        registry = engine.registry
        registry.counter("serve.http.requests").inc()
        try:
            with registry.timer("serve.http.request"):
                status, payload = self._dispatch(engine, route, params)
        except QueryError as error:
            status, payload = error.status, _error_body(error.status, str(error))
        except ReproError as error:
            status, payload = 400, _error_body(400, str(error))
        except Exception:  # pragma: no cover — defensive 500 path
            status, payload = 500, _error_body(500, "internal server error")
        registry.counter(f"serve.http.status.{status}").inc()
        self._respond(status, payload)

    def _dispatch(
        self, engine: QueryEngine, route: str, params: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        if route == f"{API_PREFIX}/healthz":
            return 200, {"status": "ok", "runs": engine.store.names()}
        if route == f"{API_PREFIX}/metrics":
            return 200, {
                "metrics": engine.registry.snapshot().as_dict(),
                "cache": engine.cache_stats(),
            }
        if route == f"{API_PREFIX}/runs":
            return 200, engine.runs()
        if route == f"{API_PREFIX}/associations":
            return 200, engine.associations(**_engine_params(params))
        if route == f"{API_PREFIX}/clusters":
            if "id" in params:
                return 200, engine.cluster(params["id"], run=params.get("run"))
            return 200, engine.clusters(**_engine_params(params))
        if route.startswith(f"{API_PREFIX}/clusters/"):
            cluster_id = unquote(route.rsplit("/", 1)[1])
            return 200, engine.cluster(cluster_id, run=params.get("run"))
        if route.startswith(f"{API_PREFIX}/drugs/"):
            name = unquote(route.rsplit("/", 1)[1])
            return 200, engine.drug(name, run=params.get("run"))
        if route == f"{API_PREFIX}/search":
            if "q" not in params:
                raise QueryError("search requires a q parameter")
            return 200, engine.search(
                params["q"],
                run=params.get("run"),
                kind=params.get("kind"),
                limit=params.get("limit", 20),
            )
        raise NotFoundError(f"no such endpoint: {route}")

    # -- plumbing -------------------------------------------------------

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Default request logging is suppressed; obs counters cover it."""
        if self.server.verbose:  # pragma: no cover — manual serving only
            super().log_message(format, *args)


def _engine_params(params: dict[str, str]) -> dict[str, str]:
    """Query-string params as engine kwargs (engine validates values)."""
    return {key: value for key, value in params.items() if key != ""}


def _error_body(status: int, message: str) -> dict[str, Any]:
    return {"error": {"status": status, "message": message}}


class MediarHTTPServer(ThreadingHTTPServer):
    """The serving process: a threading HTTP server bound to one engine."""

    daemon_threads = True

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), MediarRequestHandler)
        self.engine = engine
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


@contextmanager
def running_server(
    engine: QueryEngine, host: str = "127.0.0.1", port: int = 0
) -> Iterator[MediarHTTPServer]:
    """Run a server on a background thread for the enclosed block.

    ``port=0`` binds an ephemeral port (read it off ``server.url``) —
    the shape tests and the example client use.
    """
    server = MediarHTTPServer(engine, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
