"""The transport-agnostic HTTP semantics of the ``/v1`` API.

Both transports — the threaded :mod:`repro.serve.http` fallback and the
asyncio :mod:`repro.serve.aio` front-end — delegate every request to
one shared :class:`ApiResponder`, which owns routing, parameter
parsing, the hot-path byte cache, conditional GETs, and error mapping.
The transports only move bytes between sockets and this object, so the
"sync and async responses are byte-identical" contract holds by
construction (and is still asserted end-to-end by
``tests/serve/test_parity.py``).

Request handling, in order:

1. **method** — ``GET`` and ``HEAD`` are served (``HEAD`` returns the
   exact ``GET`` headers, body withheld); anything else is a JSON 405
   with an ``Allow`` header.
2. **parse** — the query string is split with duplicate detection:
   ``?run=a&run=b`` is a 400, never a silent last-value-wins.
3. **byte cache** — id-addressed resources and default-shaped listing
   pages are answered from :class:`~repro.serve.bytecache`
   precomputed bytes (``serve.responses.precomputed``); everything
   else goes through the :class:`~repro.serve.engine.QueryEngine` and
   is encoded per request (``serve.responses.encoded``).
4. **conditional** — when the response carries a strong ETag and the
   request's ``If-None-Match`` matches, a bodyless 304 is returned.

Error mapping is type-driven exactly as before:
:class:`~repro.errors.QueryError` subclasses carry their status,
any other library error is a 400, unexpected exceptions are a 500
whose body never leaks a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import BadQueryError, NotFoundError, QueryError, ReproError
from repro.serve.bytecache import ByteCacheDirectory, encode_payload, strong_etag
from repro.serve.engine import QueryEngine, spec_key, validated_params

API_PREFIX = "/v1"

#: Response Content-Type of every body-carrying answer, errors included.
CONTENT_TYPE = "application/json; charset=utf-8"


@dataclass(slots=True)
class ApiResponse:
    """One fully-formed response, transport details excluded.

    ``body`` always holds the full GET representation — for a ``HEAD``
    answer the transport declares ``len(body)`` but writes nothing, so
    the headers are exactly the GET headers. A 304 carries an empty
    body and its validator ETag.
    """

    status: int
    body: bytes
    etag: str | None = None
    headers: tuple[tuple[str, str], ...] = ()
    head: bool = False

    @property
    def content_length(self) -> int:
        return len(self.body)

    @property
    def send_body(self) -> bool:
        return not self.head and self.status != 304 and bool(self.body)


def error_body(status: int, message: str) -> dict[str, Any]:
    """The JSON error envelope (shared with transport-level responses)."""
    return {"error": {"status": status, "message": message}}


def shed_response(retry_after: int = 1) -> ApiResponse:
    """The load-shedding answer: 503 + ``Retry-After`` (transport sends it)."""
    body = encode_payload(
        error_body(503, "server overloaded, retry after a moment")
    )
    return ApiResponse(
        503, body, headers=(("Retry-After", str(retry_after)),)
    )


def _etag_matches(header_value: str | None, etag: str) -> bool:
    if not header_value:
        return False
    candidates = [token.strip() for token in header_value.split(",")]
    return "*" in candidates or etag in candidates


class ApiResponder:
    """Routes one parsed request into bytes; shared by every transport."""

    def __init__(
        self,
        engine: QueryEngine,
        *,
        metrics_extra: Callable[[dict[str, Any]], dict[str, Any]] | None = None,
    ) -> None:
        self.engine = engine
        self.bytes = ByteCacheDirectory()
        #: Hook for multi-worker serving: maps the single-process
        #: ``/v1/metrics`` payload to the aggregated cross-worker view.
        self.metrics_extra = metrics_extra
        engine.store.subscribe(self._run_replaced)

    # -- public entry points --------------------------------------------

    def handle(
        self,
        method: str,
        target: str,
        headers: Mapping[str, str] | None = None,
    ) -> ApiResponse:
        """Answer ``method target`` (headers drive conditional GETs)."""
        registry = self.engine.registry
        registry.counter("serve.http.requests").inc()
        if method not in ("GET", "HEAD"):
            response = ApiResponse(
                405,
                encode_payload(
                    error_body(405, f"method {method} not allowed")
                ),
                headers=(("Allow", "GET, HEAD"),),
            )
        else:
            try:
                with registry.timer("serve.http.request"):
                    response = self._routed(target)
            except QueryError as err:
                response = self._error(err.status, str(err))
            except ReproError as err:
                response = self._error(400, str(err))
            except Exception:  # pragma: no cover — defensive 500 path
                response = self._error(500, "internal server error")
            if (
                response.status == 200
                and response.etag is not None
                and headers is not None
                and _etag_matches(headers.get("if-none-match"), response.etag)
            ):
                response = ApiResponse(304, b"", etag=response.etag)
        registry.counter(f"serve.http.status.{response.status}").inc()
        response.head = method == "HEAD"
        return response

    def warm(self) -> int:
        """Precompute every registered run's byte table (server boot).

        Returns the number of precomputed entries, so callers can log
        what the hot path was primed with.
        """
        store = self.engine.store
        return sum(
            self.bytes.for_snapshot(store.get(name)).n_entries
            for name in store.names()
        )

    # -- routing --------------------------------------------------------

    def _routed(self, target: str) -> ApiResponse:
        split = urlsplit(target)
        route = split.path.rstrip("/") or "/"
        params = self._parsed_params(split.query)
        engine = self.engine
        if route == f"{API_PREFIX}/healthz":
            return self._encoded({"status": "ok", "runs": engine.store.names()})
        if route == f"{API_PREFIX}/metrics":
            return self._encoded(self._metrics_payload())
        if route == f"{API_PREFIX}/runs":
            return self._encoded(engine.runs())
        if route == f"{API_PREFIX}/associations":
            return self._page("associations", engine.associations, params)
        if route == f"{API_PREFIX}/clusters":
            if "id" in params:
                return self._cluster(params["id"], params.get("run"))
            return self._page("clusters", engine.clusters, params)
        if route.startswith(f"{API_PREFIX}/clusters/"):
            return self._cluster(
                unquote(route.rsplit("/", 1)[1]), params.get("run")
            )
        if route.startswith(f"{API_PREFIX}/drugs/"):
            return self._drug(unquote(route.rsplit("/", 1)[1]), params.get("run"))
        if route == f"{API_PREFIX}/search":
            if "q" not in params:
                raise QueryError("search requires a q parameter")
            return self._encoded(
                engine.search(
                    params["q"],
                    run=params.get("run"),
                    kind=params.get("kind"),
                    limit=params.get("limit", 20),
                )
            )
        raise NotFoundError(f"no such endpoint: {route}")

    @staticmethod
    def _parsed_params(query: str) -> dict[str, str]:
        """Query-string pairs with duplicate keys rejected, not dropped."""
        params: dict[str, str] = {}
        duplicates: set[str] = set()
        for key, value in parse_qsl(query):
            if not key:
                continue
            if key in params:
                duplicates.add(key)
            params[key] = value
        if duplicates:
            raise BadQueryError(
                f"duplicate query parameter(s) {sorted(duplicates)}; "
                "send each parameter at most once"
            )
        return params

    # -- hot-path endpoints ---------------------------------------------

    def _cluster(self, cluster_id: str, run: str | None) -> ApiResponse:
        registry = self.engine.registry
        registry.counter("serve.requests.cluster").inc()
        snapshot = self.engine.resolve(run)
        entry = self.bytes.for_snapshot(snapshot).cluster(cluster_id)
        if entry is None:
            raise NotFoundError(
                f"unknown cluster {cluster_id!r} in run {snapshot.name!r}"
            )
        registry.counter("serve.responses.precomputed").inc()
        body, etag = entry
        return ApiResponse(200, body, etag=etag)

    def _drug(self, name: str, run: str | None) -> ApiResponse:
        registry = self.engine.registry
        registry.counter("serve.requests.drug").inc()
        snapshot = self.engine.resolve(run)
        entry = self.bytes.for_snapshot(snapshot).drug(name)
        if entry is None:
            raise NotFoundError(
                f"unknown drug {name!r} in run {snapshot.name!r}"
            )
        registry.counter("serve.responses.precomputed").inc()
        body, etag = entry
        return ApiResponse(200, body, etag=etag)

    def _page(
        self, endpoint: str, engine_method, params: dict[str, str]
    ) -> ApiResponse:
        snapshot = self.engine.resolve(params.get("run"))
        spec = validated_params(
            snapshot, {k: v for k, v in params.items() if k != "run"}
        )
        entry = self.bytes.for_snapshot(snapshot).page(endpoint, spec_key(spec))
        if entry is not None:
            registry = self.engine.registry
            registry.counter(f"serve.requests.{endpoint}").inc()
            registry.counter("serve.responses.precomputed").inc()
            return ApiResponse(200, entry[0])
        return self._encoded(engine_method(**params))

    # -- plumbing -------------------------------------------------------

    def _run_replaced(self, old, new) -> None:
        if self.bytes.invalidate(old.token):
            self.engine.registry.counter("serve.bytecache.invalidated").inc()

    def base_metrics_payload(self) -> dict[str, Any]:
        """This process's own ``/v1/metrics`` view, aggregation hook excluded.

        The multi-worker hub flushes this payload to its per-worker file
        and feeds it back through :attr:`metrics_extra` for the merged
        fleet view — calling the un-hooked form here is what keeps that
        from recursing.
        """
        return {
            "metrics": self.engine.registry.snapshot().as_dict(),
            "cache": self.engine.cache_stats(),
            "bytecache": self.bytes.stats(),
        }

    def _metrics_payload(self) -> dict[str, Any]:
        payload = self.base_metrics_payload()
        if self.metrics_extra is not None:
            payload = self.metrics_extra(payload)
        return payload

    def _encoded(self, payload: dict[str, Any]) -> ApiResponse:
        self.engine.registry.counter("serve.responses.encoded").inc()
        return ApiResponse(200, encode_payload(payload))

    def _error(self, status: int, message: str) -> ApiResponse:
        return ApiResponse(status, encode_payload(error_body(status, message)))
