"""The transport-agnostic query engine of the serving layer.

Every public method takes plain keyword parameters and returns a
JSON-compatible dict — the HTTP layer only parses query strings and
serializes; a notebook or test can call the engine directly and get the
exact payload a client would receive.

Request flow, in order:

1. **cache probe** — the canonicalized query key is looked up in the
   bounded :class:`~repro.serve.cache.LRUCache`; a hit skips everything
   below (and bumps ``serve.cache.hits``).
2. **index probe** — drug/ADR/pair/id criteria resolve to sorted
   position lists via :class:`~repro.serve.indexes.RunIndexes`;
   unfiltered sorted listings slice a precomputed best-first ordering.
   The full cluster list is never scanned at request time.
3. **predicate + page** — numeric floors (``min_support`` …) filter the
   candidates, then the pagination window is projected into response
   records.

Every query records a per-endpoint timer and counter into the active
:mod:`repro.obs` registry, which is what ``/v1/metrics`` surfaces.

The payload builders (:func:`cluster_payload`, :func:`drug_payload`,
:func:`page_payload`, :func:`search_payload`) and the parameter
validator (:func:`validated_params`) are module-level functions over an
immutable :class:`~repro.serve.store.RunSnapshot`: the engine's cached
methods delegate to them, and :mod:`repro.serve.bytecache` calls them
directly to precompute response bytes without touching the LRU — both
paths build byte-identical payloads because they *are* the same code.
"""

from __future__ import annotations

from typing import Any

from repro.core.ids import ASSOCIATION_PREFIX, CLUSTER_PREFIX
from repro.errors import BadQueryError, NotFoundError
from repro.obs import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.serve.cache import LRUCache
from repro.serve.indexes import intersect_sorted, rank_positions
from repro.serve.store import ResultStore, RunSnapshot

#: Hard ceiling on one page, so a single request cannot serialize an
#: entire quarter's clusters.
MAX_PAGE_SIZE = 500
DEFAULT_PAGE_SIZE = 20
DEFAULT_SORT = "exclusiveness_confidence"

_NUMERIC_FILTERS = ("min_support", "min_confidence", "min_lift")


def association_view(record: dict[str, Any]) -> dict[str, Any]:
    """The flat rule projection of one cluster record (``/v1/associations``)."""
    digest = record["id"].split("-", 1)[1]
    return {
        "id": f"{ASSOCIATION_PREFIX}-{digest}",
        "cluster_id": record["id"],
        "drugs": list(record["drugs"]),
        "adrs": list(record["adrs"]),
        "support": record["support"],
        "confidence": record["confidence"],
        "lift": record["lift"],
        "scores": dict(record["scores"]),
    }


def cluster_view(record: dict[str, Any]) -> dict[str, Any]:
    """The full MCAC projection, context levels included (``/v1/clusters``)."""
    view = association_view(record)
    view["id"] = record["id"]
    view["association_id"] = f"{ASSOCIATION_PREFIX}-{view['id'].split('-', 1)[1]}"
    del view["cluster_id"]
    view["context"] = [dict(rule) for rule in record.get("context", ())]
    if "case_ids" in record:
        view["case_ids"] = list(record["case_ids"])
    return view


# -- snapshot-level query functions -------------------------------------
#
# Pure functions of (immutable snapshot, validated parameters): the
# engine wraps them with run resolution + LRU caching, the byte-cache
# precomputes their output for the hot endpoints.


def _validated_int(value: Any, name: str, floor: int) -> int:
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise BadQueryError(f"{name} must be an integer, got {value!r}") from None
    if value < floor:
        raise BadQueryError(f"{name} must be >= {floor}, got {value}")
    return value


def _validated_float(value: Any, name: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise BadQueryError(f"{name} must be a number, got {value!r}") from None


def validated_limit(value: Any) -> int:
    limit = _validated_int(value, "limit", 1)
    if limit > MAX_PAGE_SIZE:
        raise BadQueryError(f"limit must be <= {MAX_PAGE_SIZE}, got {limit}")
    return limit


def validated_params(snapshot, params: dict[str, Any]) -> dict[str, Any]:
    """Canonicalize list-endpoint parameters against one snapshot.

    The canonical spec is what response caches key on: two requests
    that differ only in parameter spelling (``limit=20`` explicit vs
    defaulted) resolve to the same spec, the same cache entry, and the
    same bytes.
    """
    known = {
        "drug", "adr", "sort", "order", "limit", "offset", *_NUMERIC_FILTERS,
    }
    unknown = set(params) - known
    if unknown:
        raise BadQueryError(
            f"unknown parameters {sorted(unknown)}; valid: {sorted(known)}"
        )
    sort = params.get("sort", DEFAULT_SORT)
    if sort not in snapshot.indexes.order_by:
        raise BadQueryError(
            f"unknown sort key {sort!r}; valid: {list(snapshot.indexes.sort_keys)}"
        )
    order = params.get("order", "desc")
    if order not in ("asc", "desc"):
        raise BadQueryError(f"order must be 'asc' or 'desc', got {order!r}")
    spec: dict[str, Any] = {
        "sort": sort,
        "order": order,
        "limit": validated_limit(params.get("limit", DEFAULT_PAGE_SIZE)),
        "offset": _validated_int(params.get("offset", 0), "offset", 0),
    }
    for name in ("drug", "adr"):
        if params.get(name) is not None:
            spec[name] = str(params[name])
    for name in _NUMERIC_FILTERS:
        if params.get(name) is not None:
            spec[name] = _validated_float(params[name], name)
    return spec


def spec_key(spec: dict[str, Any]) -> tuple:
    """The hashable cache key of one canonical parameter spec."""
    return tuple(sorted(spec.items()))


def candidate_positions(
    snapshot, spec: dict[str, Any]
) -> list[int] | tuple[int, ...]:
    """Resolve index probes; ``None`` criteria select everything."""
    indexes = snapshot.indexes
    probes = []
    if "drug" in spec:
        probes.append(indexes.by_drug.get(spec["drug"], ()))
    if "adr" in spec:
        probes.append(indexes.by_adr.get(spec["adr"], ()))
    if not probes:
        ordered = indexes.order_by[spec["sort"]]
        return ordered if spec["order"] == "desc" else ordered[::-1]
    positions = intersect_sorted(probes)
    return rank_positions(
        snapshot.records,
        positions,
        spec["sort"],
        descending=spec["order"] == "desc",
    )


def page_payload(snapshot, spec: dict[str, Any], view) -> dict[str, Any]:
    """One listing page (``/v1/associations`` / ``/v1/clusters``)."""
    records = snapshot.records
    positions = candidate_positions(snapshot, spec)
    floors = [
        (name.removeprefix("min_"), spec[name])
        for name in _NUMERIC_FILTERS
        if name in spec
    ]
    if floors:
        positions = [
            p
            for p in positions
            if all(records[p][field] >= floor for field, floor in floors)
        ]
    total = len(positions)
    offset, limit = spec["offset"], spec["limit"]
    window = positions[offset : offset + limit]
    items = [view(records[p]) for p in window]
    return {
        "run": snapshot.name,
        "total": total,
        "offset": offset,
        "limit": limit,
        "count": len(items),
        "sort": spec["sort"],
        "order": spec["order"],
        "items": items,
    }


def cluster_payload(snapshot, cluster_id: str) -> dict[str, Any]:
    """One cluster by stable id (accepts the association alias too)."""
    lookup = cluster_id
    if lookup.startswith(f"{ASSOCIATION_PREFIX}-"):
        lookup = f"{CLUSTER_PREFIX}-{lookup.split('-', 1)[1]}"
    position = snapshot.indexes.by_id.get(lookup)
    if position is None:
        raise NotFoundError(
            f"unknown cluster {cluster_id!r} in run {snapshot.name!r}"
        )
    payload = cluster_view(snapshot.records[position])
    payload["run"] = snapshot.name
    return payload


def drug_payload(snapshot, name: str) -> dict[str, Any]:
    """The ``/v1/drugs/<name>`` profile payload."""
    indexes = snapshot.indexes
    positions = indexes.by_drug.get(name)
    if positions is None:
        raise NotFoundError(f"unknown drug {name!r} in run {snapshot.name!r}")
    records = snapshot.records
    partners: dict[str, int] = {}
    adrs: dict[str, int] = {}
    for position in positions:
        record = records[position]
        for drug in record["drugs"]:
            if drug != name:
                partners[drug] = partners.get(drug, 0) + 1
        for adr in record["adrs"]:
            adrs[adr] = adrs.get(adr, 0) + 1
    ranked = rank_positions(records, positions, DEFAULT_SORT)
    return {
        "run": snapshot.name,
        "drug": name,
        "n_clusters": len(positions),
        "partners": [
            {"drug": drug, "n_clusters": count}
            for drug, count in sorted(
                partners.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ],
        "adrs": [
            {"adr": adr, "n_clusters": count}
            for adr, count in sorted(adrs.items(), key=lambda kv: (-kv[1], kv[0]))
        ],
        "cluster_ids": [records[p]["id"] for p in ranked],
    }


def search_payload(
    snapshot, query: str, kind: str | None, limit: int
) -> dict[str, Any]:
    """The prefix-token vocabulary search payload."""
    indexes = snapshot.indexes
    matches = []
    for match_kind, label in indexes.prefixes.lookup(query, kind=kind):
        positions = (
            indexes.by_drug if match_kind == "drug" else indexes.by_adr
        ).get(label, ())
        matches.append(
            {
                "kind": match_kind,
                "label": label,
                "n_clusters": len(positions),
                "cluster_ids": [snapshot.records[p]["id"] for p in positions],
            }
        )
    matches.sort(key=lambda m: (-m["n_clusters"], m["kind"], m["label"]))
    return {
        "run": snapshot.name,
        "query": query,
        "total": len(matches),
        "matches": matches[:limit],
    }


class QueryEngine:
    """Paginated, sorted, filtered queries over a :class:`ResultStore`."""

    def __init__(
        self,
        store: ResultStore,
        *,
        cache_size: int = 512,
        registry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        self.store = store
        self.cache = LRUCache(maxsize=cache_size)
        self.registry = registry if registry is not None else NULL_REGISTRY
        # When a run is refreshed in place, drop exactly that run's
        # cached pages (keys lead with the snapshot token).
        store.subscribe(self._run_replaced)

    # -- public queries -------------------------------------------------

    def runs(self) -> dict[str, Any]:
        """The ``/v1/runs`` listing (never cached: it is the cheap query)."""
        with self.registry.timer("serve.query.runs"):
            return {"runs": [self.store.get(n).describe() for n in self.store.names()]}

    def associations(self, *, run: str | None = None, **params) -> dict[str, Any]:
        """Flat drug→ADR association listing."""
        return self._paged_query("associations", run, association_view, params)

    def clusters(self, *, run: str | None = None, **params) -> dict[str, Any]:
        """MCAC listing with full context levels."""
        return self._paged_query("clusters", run, cluster_view, params)

    def cluster(self, cluster_id: str, *, run: str | None = None) -> dict[str, Any]:
        """One cluster by stable id (accepts the association alias too)."""
        snapshot = self.resolve(run)
        key = (snapshot.token, "cluster", cluster_id)
        return self._cached(key, "cluster", cluster_payload, snapshot, cluster_id)

    def drug(self, name: str, *, run: str | None = None) -> dict[str, Any]:
        """The ``/v1/drugs/<name>`` profile: partners, ADRs, clusters."""
        snapshot = self.resolve(run)
        key = (snapshot.token, "drug", name)
        return self._cached(key, "drug", drug_payload, snapshot, name)

    def search(
        self,
        query: str,
        *,
        run: str | None = None,
        kind: str | None = None,
        limit: int = DEFAULT_PAGE_SIZE,
    ) -> dict[str, Any]:
        """Prefix-token search over the run's drug/ADR vocabulary."""
        if not query or not query.strip():
            raise BadQueryError("search requires a non-empty q parameter")
        if kind is not None and kind not in ("drug", "adr"):
            raise BadQueryError(f"kind must be 'drug' or 'adr', got {kind!r}")
        limit = validated_limit(limit)
        snapshot = self.resolve(run)
        key = (snapshot.token, "search", query.strip().lower(), kind, limit)
        return self._cached(
            key, "search", search_payload, snapshot, query, kind, limit
        )

    def cache_stats(self) -> dict[str, Any]:
        """The LRU cache's accounting, for ``/v1/metrics``."""
        stats = self.cache.stats()
        return {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "size": stats.size,
            "maxsize": stats.maxsize,
            "hit_rate": round(stats.hit_rate, 4),
        }

    def refresh(self, name: str, result) -> RunSnapshot:
        """Swap run ``name`` to a re-mined result; stale cache entries go.

        Convenience over :meth:`ResultStore.refresh` — the store
        notifies this engine's subscription, which invalidates the
        replaced snapshot's cache entries before the call returns.
        """
        return self.store.refresh(name, result)

    # -- mechanics ------------------------------------------------------

    def _run_replaced(self, old: RunSnapshot, new: RunSnapshot) -> None:
        token = old.token
        dropped = self.cache.evict_where(
            lambda key: isinstance(key, tuple) and key and key[0] == token
        )
        self.registry.counter("serve.cache.invalidated").inc(dropped)

    def resolve(self, run: str | None = None) -> RunSnapshot:
        """The snapshot a query addresses (the store default when unnamed)."""
        return self.store.get(run if run is not None else self.store.default_run())

    def _cached(self, key, endpoint: str, build, *args) -> dict[str, Any]:
        self.registry.counter(f"serve.requests.{endpoint}").inc()
        cached = self.cache.get(key)
        if cached is not None:
            self.registry.counter("serve.cache.hits").inc()
            return cached
        self.registry.counter("serve.cache.misses").inc()
        with self.registry.timer(f"serve.query.{endpoint}"):
            payload = build(*args)
        self.cache.put(key, payload)
        return payload

    def _paged_query(
        self, endpoint: str, run: str | None, view, params: dict[str, Any]
    ) -> dict[str, Any]:
        snapshot = self.resolve(run)
        spec = validated_params(snapshot, params)
        key = (snapshot.token, endpoint, spec_key(spec))
        return self._cached(key, endpoint, page_payload, snapshot, spec, view)
