"""Precomputed inverted indexes over one run's cluster records.

Everything the query API can ask for — "clusters mentioning DRUG",
"associations with ADR", "MCACs of this drug pair", "labels starting
with asp" — is answered by probing a dict or bisecting a sorted token
list built once when the run is registered. The hot path never scans
the full cluster list; a linear scan only happens at build time.

Positions, not objects: every index maps to positions into the run's
record tuple, so intersecting two criteria is a cheap merge of sorted
int tuples and the engine stays free to project records however the
endpoint needs.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Sequence
from itertools import combinations
from typing import Any

#: Sort keys every run supports beyond its per-method score names.
BASE_SORT_KEYS = ("support", "confidence", "lift")


def _sorted_positions(index: dict[Any, list[int]]) -> dict[Any, tuple[int, ...]]:
    return {key: tuple(sorted(positions)) for key, positions in index.items()}


def intersect_sorted(lists: Sequence[Sequence[int]]) -> list[int]:
    """Intersect ascending position lists, smallest-first for early exit."""
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    result = list(ordered[0])
    for other in ordered[1:]:
        if not result:
            break
        members = set(other)
        result = [p for p in result if p in members]
    return result


class PrefixTokenIndex:
    """Case-insensitive prefix lookup over labels, one entry per token.

    Built as a sorted list of ``(token, label)`` pairs per kind;
    a prefix query bisects to the first candidate and walks forward
    while the prefix still matches — O(log n + matches), no scan.
    Multi-token labels ("TRAGAL CITRATE") are reachable through any of
    their tokens, which is what an autocomplete box needs.
    """

    def __init__(self, labels_by_kind: dict[str, Iterable[str]]) -> None:
        self._tokens: dict[str, list[tuple[str, str]]] = {}
        for kind, labels in labels_by_kind.items():
            pairs: set[tuple[str, str]] = set()
            for label in labels:
                for token in label.lower().split():
                    pairs.add((token, label))
            self._tokens[kind] = sorted(pairs)

    @property
    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted(self._tokens))

    def lookup(self, prefix: str, *, kind: str | None = None) -> list[tuple[str, str]]:
        """All ``(kind, label)`` pairs with a token starting with ``prefix``."""
        prefix = prefix.lower().strip()
        if not prefix:
            return []
        kinds = (kind,) if kind is not None else self.kinds
        matches: set[tuple[str, str]] = set()
        for current in kinds:
            pairs = self._tokens.get(current, [])
            start = bisect_left(pairs, (prefix, ""))
            for token, label in pairs[start:]:
                if not token.startswith(prefix):
                    break
                matches.add((current, label))
        return sorted(matches)


class RunIndexes:
    """The full index set of one run snapshot.

    Attributes
    ----------
    by_id:
        stable cluster/association id → record position.
    by_drug / by_adr:
        label → ascending record positions mentioning it.
    by_pair:
        sorted drug-label pair → positions of MCACs whose target
        antecedent contains both drugs.
    order_by:
        sort key (``support``/``confidence``/``lift`` plus every score
        name present in the records) → all positions, best-first with
        deterministic label tie-breaks. Unfiltered sorted queries are a
        slice of one of these, no sorting at request time.
    prefixes:
        the :class:`PrefixTokenIndex` over drug and ADR labels.
    """

    __slots__ = ("by_id", "by_drug", "by_adr", "by_pair", "order_by", "prefixes")

    def __init__(self, records: Sequence[dict[str, Any]]) -> None:
        by_id: dict[str, int] = {}
        by_drug: dict[str, list[int]] = {}
        by_adr: dict[str, list[int]] = {}
        by_pair: dict[tuple[str, str], list[int]] = {}
        score_names: set[str] = set()
        for position, record in enumerate(records):
            by_id[record["id"]] = position
            drugs = record["drugs"]
            for drug in drugs:
                by_drug.setdefault(drug, []).append(position)
            for adr in record["adrs"]:
                by_adr.setdefault(adr, []).append(position)
            for pair in combinations(sorted(drugs), 2):
                by_pair.setdefault(pair, []).append(position)
            score_names.update(record.get("scores", ()))
        self.by_id = by_id
        self.by_drug = _sorted_positions(by_drug)
        self.by_adr = _sorted_positions(by_adr)
        self.by_pair = _sorted_positions(by_pair)
        self.order_by = {
            key: _ranked_positions(records, key)
            for key in (*BASE_SORT_KEYS, *sorted(score_names))
        }
        self.prefixes = PrefixTokenIndex(
            {"drug": by_drug.keys(), "adr": by_adr.keys()}
        )

    @property
    def sort_keys(self) -> tuple[str, ...]:
        return tuple(sorted(self.order_by))


def sort_value(record: dict[str, Any], key: str) -> float:
    """The value record sorts under ``key`` (score names fall back to 0)."""
    if key in BASE_SORT_KEYS:
        return float(record[key])
    return float(record.get("scores", {}).get(key, 0.0))


def rank_positions(
    records: Sequence[dict[str, Any]],
    positions: Iterable[int],
    key: str,
    *,
    descending: bool = True,
) -> list[int]:
    """Order ``positions`` by ``key`` with deterministic tie-breaks."""
    sign = -1.0 if descending else 1.0
    return sorted(
        positions,
        key=lambda p: (
            sign * sort_value(records[p], key),
            tuple(records[p]["drugs"]),
            tuple(records[p]["adrs"]),
        ),
    )


def _ranked_positions(
    records: Sequence[dict[str, Any]], key: str
) -> tuple[int, ...]:
    return tuple(rank_positions(records, range(len(records)), key))
