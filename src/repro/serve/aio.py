"""The asyncio (async) HTTP transport: built for concurrent traffic.

The threaded fallback spends a kernel thread per connection; under a
few hundred keep-alive clients the GIL and the scheduler, not the query
work, set the ceiling. This transport serves every connection from one
event loop per worker process:

- **hand-rolled HTTP/1.1** — a small stdlib-only request parser
  (request line + headers, size-capped) with persistent connections,
  so a closed-loop client pays one TCP handshake for its whole session;
- **shared immutable snapshots** — all request handling funnels into
  the same :class:`~repro.serve.api.ApiResponder` the sync transport
  uses; hot responses are precomputed bytes, so the per-request work on
  the loop is a dict probe and a socket write;
- **multi-worker** — :func:`forked_workers` binds one listening socket,
  forks N workers (snapshots are frozen *before* the fork, so the OS
  shares their pages copy-on-write), and every worker's event loop
  accepts from the inherited socket; per-worker metrics are merged into
  ``/v1/metrics`` through the file-based :class:`WorkerMetricsHub`;
- **backpressure + load shedding** — every response write awaits
  ``drain()`` against a bounded write buffer, and connections beyond
  ``max_connections`` receive an immediate ``503`` with ``Retry-After``
  instead of growing an unbounded accept queue;
- **graceful shutdown** — :meth:`AsyncHTTPServer.shutdown` stops
  accepting, lets in-flight responses finish within a grace deadline,
  then closes what remains. SIGTERM/SIGINT on ``mediar serve`` land
  here and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import sys
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from email.utils import formatdate
from http import HTTPStatus
from pathlib import Path
from typing import Any, Callable

from repro.obs import merge_metric_dicts
from repro.serve.api import CONTENT_TYPE, ApiResponder, ApiResponse, shed_response

SERVER_NAME = "mediar-serve/1"

#: Caps on one request's wire size — oversize requests get a 400/431
#: and the connection is closed, they never buffer unbounded memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_HEADERS = 100
#: Largest request body (on a GET/HEAD!) silently discarded to keep the
#: connection framed; anything larger closes the connection.
MAX_DISCARD_BODY = 1 << 20

#: Per-connection write-buffer high-water mark: ``drain()`` blocks the
#: connection's coroutine (not the loop) once this much is unflushed.
WRITE_HIGH_WATER = 64 * 1024


class _BadRequest(Exception):
    """A malformed/oversize request; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Connection:
    """Book-keeping for one live client connection."""

    __slots__ = ("task", "busy")

    def __init__(self, task: asyncio.Task) -> None:
        self.task = task
        self.busy = False


def _http_date() -> str:
    """RFC 7231 date, cached per wall-clock second (hot-path header)."""
    now = int(time.time())
    cached = _http_date._cache
    if cached[0] != now:
        _http_date._cache = (now, formatdate(now, usegmt=True))
    return _http_date._cache[1]


_http_date._cache = (0, "")


def render_head(response: ApiResponse, *, keep_alive: bool) -> bytes:
    """The status line + headers of one response, CRLF-framed."""
    reason = HTTPStatus(response.status).phrase
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Server: {SERVER_NAME}",
        f"Date: {_http_date()}",
    ]
    if response.status != 304:
        lines.append(f"Content-Type: {CONTENT_TYPE}")
    lines.append(f"Content-Length: {response.content_length}")
    if response.etag is not None:
        lines.append(f"ETag: {response.etag}")
    for name, value in response.headers:
        lines.append(f"{name}: {value}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, str, dict[str, str]] | None:
    """Parse one request head; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise _BadRequest(431, "request line too long") from None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise _BadRequest(431, "request line too long")
    parts = line.decode("latin-1").strip().split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(400, "malformed request line")
    method, target, version = parts
    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            header = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _BadRequest(431, "header section too large") from None
        if header in (b"\r\n", b"\n"):
            break
        if not header:
            return None
        total += len(header)
        if total > MAX_HEADER_BYTES or len(headers) >= MAX_HEADERS:
            raise _BadRequest(431, "header section too large")
        name, sep, value = header.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest(400, f"malformed header line {name!r}")
        headers[name.strip().lower()] = value.strip()
    return method, target, version, headers


class AsyncHTTPServer:
    """One worker's event-loop HTTP server over a shared responder."""

    def __init__(
        self,
        responder: ApiResponder,
        *,
        max_connections: int = 1024,
        grace: float = 5.0,
        hub: "WorkerMetricsHub | None" = None,
        flush_interval: float = 0.5,
    ) -> None:
        self.responder = responder
        self.max_connections = max_connections
        self.grace = grace
        self.hub = hub
        self.flush_interval = flush_interval
        if hub is not None:
            responder.metrics_extra = hub.merged
        self._server: asyncio.Server | None = None
        self._connections: set[_Connection] = set()
        self._closing = False
        self._stopped: asyncio.Event | None = None
        self._flush_task: asyncio.Task | None = None
        self.host = ""
        self.port = 0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        sock: socket.socket | None = None,
    ) -> None:
        """Bind (or adopt ``sock``, the forked-worker path) and accept."""
        self._stopped = asyncio.Event()
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock, limit=MAX_HEADER_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host, port, limit=MAX_HEADER_BYTES
            )
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        if self.hub is not None:
            self._flush_task = asyncio.create_task(self._flush_loop())

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`shutdown` (or :meth:`request_shutdown`) ran."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful stop: no new accepts, drain in-flight, then close."""
        if self._closing:
            return
        self._closing = True
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        # Idle keep-alive connections are parked in readline: cancel
        # them now. Busy ones get the grace period to finish writing.
        for connection in list(self._connections):
            if not connection.busy:
                connection.task.cancel()
        deadline = asyncio.get_running_loop().time() + self.grace
        while self._connections:
            if asyncio.get_running_loop().time() >= deadline:
                for connection in list(self._connections):
                    connection.task.cancel()
            await asyncio.sleep(0.01)
        if self._flush_task is not None:
            self._flush_task.cancel()
            self._flush_task = None
        if self.hub is not None:
            self.hub.flush(self.responder.base_metrics_payload())
        self._stopped.set()

    # -- connection handling --------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        registry = self.responder.engine.registry
        if self._closing or len(self._connections) >= self.max_connections:
            registry.counter("serve.http.shed").inc()
            registry.counter("serve.http.status.503").inc()
            await self._write_and_close(writer, shed_response())
            return
        connection = _Connection(asyncio.current_task())
        self._connections.add(connection)
        writer.transport.set_write_buffer_limits(high=WRITE_HIGH_WATER)
        registry.counter("serve.http.connections").inc()
        try:
            await self._serve_connection(reader, writer, connection, registry)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, TimeoutError, OSError):
            pass
        finally:
            self._connections.discard(connection)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self, reader, writer, connection: _Connection, registry
    ) -> None:
        while True:
            try:
                request = await _read_request(reader)
            except _BadRequest as err:
                registry.counter(f"serve.http.status.{err.status}").inc()
                response = ApiResponse(
                    err.status,
                    json.dumps(
                        {"error": {"status": err.status, "message": str(err)}},
                        sort_keys=True,
                    ).encode("utf-8"),
                )
                writer.write(render_head(response, keep_alive=False))
                writer.write(response.body)
                await writer.drain()
                return
            if request is None:
                return
            connection.busy = True
            method, target, version, headers = request
            if not await self._discard_body(reader, headers):
                return
            response = self.responder.handle(method, target, headers)
            keep_alive = (
                not self._closing
                and headers.get("connection", "").lower() != "close"
                and (
                    version == "HTTP/1.1"
                    or headers.get("connection", "").lower() == "keep-alive"
                )
            )
            writer.write(render_head(response, keep_alive=keep_alive))
            if response.send_body:
                writer.write(response.body)
            # Backpressure: a slow reader parks this coroutine here —
            # its own connection stalls, the loop keeps serving others.
            await writer.drain()
            connection.busy = False
            if not keep_alive:
                return

    @staticmethod
    async def _discard_body(reader, headers: dict[str, str]) -> bool:
        """Drain a (pointless) request body; False closes the connection."""
        if "transfer-encoding" in headers:
            return False
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return False
        if length <= 0:
            return True
        if length > MAX_DISCARD_BODY:
            return False
        await reader.readexactly(length)
        return True

    async def _write_and_close(self, writer, response: ApiResponse) -> None:
        try:
            writer.write(render_head(response, keep_alive=False))
            writer.write(response.body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _flush_loop(self) -> None:
        """Periodically publish this worker's metrics for the fleet view."""
        assert self.hub is not None
        while True:
            await asyncio.sleep(self.flush_interval)
            self.hub.flush(self.responder.base_metrics_payload())


# -- multi-worker serving ----------------------------------------------


class WorkerMetricsHub:
    """File-based per-worker metric aggregation for ``/v1/metrics``.

    Worker processes cannot share a :class:`~repro.obs.MetricsRegistry`,
    so each periodically flushes its own snapshot as JSON into a shared
    directory (atomic ``os.replace`` writes — a reader never sees a
    torn file). Whichever worker answers ``/v1/metrics`` flushes its own
    snapshot first, reads every peer file, and serves the merged view:
    counters and gauges sum, timers sum with worst-case ``max_seconds``
    (see :func:`repro.obs.merge_metric_dicts`), cache and byte-cache
    accounting sum field-wise, and a ``workers`` section itemizes each
    worker's request count for skew diagnosis.
    """

    def __init__(self, directory: str | Path, worker_id: int, n_workers: int) -> None:
        self.directory = Path(directory)
        self.worker_id = worker_id
        self.n_workers = n_workers

    def _path(self, worker_id: int) -> Path:
        return self.directory / f"worker-{worker_id}.json"

    def flush(self, payload: dict[str, Any]) -> None:
        record = {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "flushed_at": time.time(),
            **payload,
        }
        tmp = self._path(self.worker_id).with_suffix(".tmp")
        tmp.write_text(json.dumps(record), encoding="utf-8")
        os.replace(tmp, self._path(self.worker_id))

    def merged(self, own_payload: dict[str, Any]) -> dict[str, Any]:
        self.flush(own_payload)
        per_worker: list[dict[str, Any]] = []
        for path in sorted(self.directory.glob("worker-*.json")):
            try:
                per_worker.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, ValueError):  # a peer mid-restart; skip it
                continue
        merged_metrics = merge_metric_dicts(
            [record.get("metrics", {}) for record in per_worker]
        )
        cache = _sum_stats([record.get("cache", {}) for record in per_worker])
        total = cache.get("hits", 0) + cache.get("misses", 0)
        cache["hit_rate"] = round(cache.get("hits", 0) / total, 4) if total else 0.0
        return {
            "metrics": merged_metrics,
            "cache": cache,
            "bytecache": _sum_stats(
                [record.get("bytecache", {}) for record in per_worker]
            ),
            "workers": {
                "count": self.n_workers,
                "reporting": len(per_worker),
                "per_worker": [
                    {
                        "worker": record.get("worker"),
                        "pid": record.get("pid"),
                        "requests": record.get("metrics", {})
                        .get("counters", {})
                        .get("serve.http.requests", 0),
                    }
                    for record in per_worker
                ],
            },
        }


def _sum_stats(stats: list[dict[str, Any]]) -> dict[str, Any]:
    summed: dict[str, Any] = {}
    for record in stats:
        for name, value in record.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                summed[name] = summed.get(name, 0) + value
    return summed


def bind_server_socket(host: str, port: int, backlog: int = 512) -> socket.socket:
    """The listening socket forked workers inherit and accept from.

    Built with an explicit ``IPPROTO_TCP`` rather than
    ``socket.create_server`` (whose listener carries ``proto=0``):
    accepted sockets inherit the listener's proto, and asyncio only sets
    ``TCP_NODELAY`` on transports whose socket reports the TCP proto —
    a proto-0 listener silently reintroduces Nagle/delayed-ACK stalls
    (~40ms per response) on every forked-worker connection.
    """
    family, type_, proto, _, address = socket.getaddrinfo(
        host,
        port,
        type=socket.SOCK_STREAM,
        proto=socket.IPPROTO_TCP,
        flags=socket.AI_PASSIVE,
    )[0]
    sock = socket.socket(family, type_, proto)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(address)
        sock.listen(backlog)
        sock.setblocking(False)
    except BaseException:
        sock.close()
        raise
    return sock


def worker_main(
    responder: ApiResponder,
    sock: socket.socket,
    *,
    hub: WorkerMetricsHub | None = None,
    max_connections: int = 1024,
    grace: float = 5.0,
) -> None:
    """One worker process: an event loop accepting from the shared socket.

    Installs SIGTERM/SIGINT handlers that trigger the graceful shutdown
    path, then serves until it completes. Runs in the child after
    :func:`os.fork`, and equally works single-process in the parent.
    """

    async def main() -> None:
        server = AsyncHTTPServer(
            responder, max_connections=max_connections, grace=grace, hub=hub
        )
        await server.start(sock=sock)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: loop.create_task(server.shutdown())
            )
        await server.serve_until_stopped()

    asyncio.run(main())


def serve_forked(
    responder_or_factory: ApiResponder | Callable[[], ApiResponder],
    host: str,
    port: int,
    n_workers: int,
    *,
    metrics_dir: str | Path | None = None,
    max_connections: int = 1024,
    grace: float = 5.0,
    announce: Callable[[str], None] | None = None,
) -> int:
    """Bind, fork ``n_workers`` serving processes, supervise until exit.

    The responder (with its engine, store, and frozen snapshots) is
    built *before* the fork, so the workers share its memory
    copy-on-write — N workers do not hold N copies of a quarter.
    The parent only supervises: it forwards SIGTERM/SIGINT to the
    workers and returns a nonzero exit status only when a worker died
    abnormally. Requires :func:`os.fork` (POSIX).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    responder = (
        responder_or_factory
        if isinstance(responder_or_factory, ApiResponder)
        else responder_or_factory()
    )
    sock = bind_server_socket(host, port)
    bound_port = sock.getsockname()[1]
    if announce is not None:
        announce(f"http://{host}:{bound_port}")
    if n_workers == 1:
        try:
            worker_main(
                responder, sock, max_connections=max_connections, grace=grace
            )
        finally:
            sock.close()
        return 0

    metrics_dir = Path(metrics_dir) if metrics_dir is not None else None
    if metrics_dir is not None:
        metrics_dir.mkdir(parents=True, exist_ok=True)
    pids = []
    for worker_id in range(n_workers):
        pid = os.fork()
        if pid == 0:
            status = 0
            try:
                hub = (
                    WorkerMetricsHub(metrics_dir, worker_id, n_workers)
                    if metrics_dir is not None
                    else None
                )
                worker_main(
                    responder,
                    sock,
                    hub=hub,
                    max_connections=max_connections,
                    grace=grace,
                )
            except BaseException:  # noqa: BLE001 — worker exit status only
                status = 1
            finally:
                sys.stdout.flush()
                sys.stderr.flush()
                os._exit(status)
        pids.append(pid)
    sock.close()  # workers hold their inherited copies

    def forward(signum, frame) -> None:
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    previous = {
        signum: signal.signal(signum, forward)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    exit_status = 0
    try:
        for pid in pids:
            _, status = os.waitpid(pid, 0)
            if os.waitstatus_to_exitcode(status) not in (0, -signal.SIGTERM):
                exit_status = 1
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return exit_status


@contextmanager
def forked_workers(
    responder: ApiResponder,
    n_workers: int,
    *,
    host: str = "127.0.0.1",
    metrics_dir: str | Path | None = None,
    max_connections: int = 1024,
) -> Iterator[str]:
    """Run forked serving workers for the enclosed block (benchmarks/tests).

    Yields the base URL; on exit the workers receive SIGTERM and are
    reaped (SIGKILL after a timeout as a backstop).
    """
    sock = bind_server_socket(host, 0)
    port = sock.getsockname()[1]
    if metrics_dir is not None:
        Path(metrics_dir).mkdir(parents=True, exist_ok=True)
    pids = []
    for worker_id in range(n_workers):
        pid = os.fork()
        if pid == 0:
            status = 0
            try:
                hub = (
                    WorkerMetricsHub(metrics_dir, worker_id, n_workers)
                    if metrics_dir is not None
                    else None
                )
                worker_main(
                    responder, sock, hub=hub, max_connections=max_connections
                )
            except BaseException:  # noqa: BLE001 — worker exit status only
                status = 1
            finally:
                os._exit(status)
        pids.append(pid)
    sock.close()
    try:
        yield f"http://{host}:{port}"
    finally:
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + 10.0
        for pid in pids:
            while time.monotonic() < deadline:
                done, _ = os.waitpid(pid, os.WNOHANG)
                if done:
                    break
                time.sleep(0.02)
            else:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)


@contextmanager
def running_async_server(
    responder: ApiResponder,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_connections: int = 1024,
    grace: float = 5.0,
) -> Iterator[AsyncHTTPServer]:
    """Run one in-process async server on a background thread.

    The async twin of :func:`repro.serve.http.running_server` — the
    contract/parity tests and the load benchmark drive both through the
    same shape.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    async def main() -> None:
        server = AsyncHTTPServer(
            responder, max_connections=max_connections, grace=grace
        )
        await server.start(host, port)
        box["server"] = server
        box["loop"] = asyncio.get_running_loop()
        started.set()
        await server.serve_until_stopped()

    def runner() -> None:
        try:
            asyncio.run(main())
        except BaseException as error:  # noqa: BLE001 — surfaced to the caller
            box["error"] = error
            started.set()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    if not started.wait(timeout=10) or "error" in box:
        raise RuntimeError(f"async server failed to start: {box.get('error')}")
    server: AsyncHTTPServer = box["server"]
    loop: asyncio.AbstractEventLoop = box["loop"]
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(
            lambda: loop.create_task(server.shutdown())
        )
        thread.join(timeout=15)
