"""Precomputed response *bytes* for the hot serving endpoints.

The query engine's LRU caches Python dicts, which still leaves a full
``json.dumps`` on every request — at "millions of users" traffic the
serializer, not the index probe, dominates the hot path. This module
removes it: when a snapshot is first served, every id-addressed
resource (``/v1/clusters/<id>`` and its ``assoc-`` alias,
``/v1/drugs/<name>``) and every default-shaped listing page (first
page, default limit, descending, one per sort key, for both
``/v1/associations`` and ``/v1/clusters``) is rendered to wire bytes
**once**, together with its strong ETag. Requests matching those keys
are answered by a dict probe returning a ready ``bytes`` object — zero
per-request JSON encoding, which ``/v1/metrics`` proves via the
``serve.responses.precomputed`` vs ``serve.responses.encoded``
counters. Parameterized long-tail queries keep going through the
engine and its LRU.

Consistency: a table is built from exactly one immutable
:class:`~repro.serve.store.RunSnapshot`, and the directory swaps whole
tables keyed by the snapshot's process-unique ``token``. A reader that
resolved the old snapshot keeps serving the old snapshot's complete
bytes; a reader that resolves the new one gets the new table — there is
no state in which one response mixes two snapshots (the torn-response
hammer in ``tests/serve/test_refresh.py`` drives this under load).

ETags are the SHA-256 of the response body, *not* the cluster's stable
id: the id only hashes the rule's drug/ADR labels, while a refresh can
change support counts under the same id — a strong validator must
cover the representation, so a 304 is returned exactly when the bytes
the client holds are the bytes it would receive.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any

from repro.core.ids import ASSOCIATION_PREFIX
from repro.serve.engine import (
    DEFAULT_PAGE_SIZE,
    association_view,
    cluster_view,
    drug_payload,
    page_payload,
    spec_key,
)

#: Tables kept for distinct snapshot tokens before the oldest is
#: evicted — a backstop against the (tiny) race where a request holding
#: a just-replaced snapshot rebuilds its table after invalidation.
MAX_TABLES = 8


def encode_payload(payload: dict[str, Any]) -> bytes:
    """The one wire encoding of the API (shared by every response path)."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def strong_etag(body: bytes) -> str:
    """A strong validator: quoted SHA-256 content hash of the body."""
    return f'"{hashlib.sha256(body).hexdigest()[:32]}"'


class SnapshotBytes:
    """Every precomputed hot-path response of one run snapshot.

    Three probe surfaces, all returning ``(body, etag)`` with
    ``etag is None`` for listing pages (conditional GETs are an
    id-addressed contract):

    - :meth:`cluster` — stable cluster id or its association alias;
    - :meth:`drug` — canonical drug label;
    - :meth:`page` — canonical spec key of a default-shaped listing.
    """

    __slots__ = ("token", "n_entries", "n_bytes", "_clusters", "_drugs", "_pages")

    def __init__(self, snapshot) -> None:
        self.token = snapshot.token
        clusters: dict[str, tuple[bytes, str]] = {}
        drugs: dict[str, tuple[bytes, str]] = {}
        pages: dict[tuple, tuple[bytes, None]] = {}
        for record in snapshot.records:
            payload = cluster_view(record)
            payload["run"] = snapshot.name
            body = encode_payload(payload)
            entry = (body, strong_etag(body))
            clusters[record["id"]] = entry
            digest = record["id"].split("-", 1)[1]
            clusters[f"{ASSOCIATION_PREFIX}-{digest}"] = entry
        for name in snapshot.indexes.by_drug:
            body = encode_payload(drug_payload(snapshot, name))
            drugs[name] = (body, strong_etag(body))
        for endpoint, view in (
            ("associations", association_view),
            ("clusters", cluster_view),
        ):
            for sort in snapshot.indexes.sort_keys:
                spec = {
                    "sort": sort,
                    "order": "desc",
                    "limit": DEFAULT_PAGE_SIZE,
                    "offset": 0,
                }
                body = encode_payload(page_payload(snapshot, spec, view))
                pages[(endpoint, spec_key(spec))] = (body, None)
        self._clusters = clusters
        self._drugs = drugs
        self._pages = pages
        self.n_entries = len(clusters) + len(drugs) + len(pages)
        self.n_bytes = sum(
            len(body)
            for table in (clusters, drugs, pages)
            for body, _ in table.values()
        )

    def cluster(self, cluster_id: str) -> tuple[bytes, str] | None:
        return self._clusters.get(cluster_id)

    def drug(self, name: str) -> tuple[bytes, str] | None:
        return self._drugs.get(name)

    def page(self, endpoint: str, key: tuple) -> tuple[bytes, None] | None:
        return self._pages.get((endpoint, key))


class ByteCacheDirectory:
    """Snapshot token → :class:`SnapshotBytes`, swapped atomically.

    Tables are built lazily on the first hot-path request that sees a
    snapshot (one serialization pass over the run), then shared by
    every transport and worker thread. :meth:`invalidate` — wired to
    :meth:`ResultStore.subscribe` — drops a replaced snapshot's whole
    table in one dict deletion, so post-refresh requests can never be
    answered from superseded bytes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tables: dict[int, SnapshotBytes] = {}
        self.builds = 0

    def for_snapshot(self, snapshot) -> SnapshotBytes:
        table = self._tables.get(snapshot.token)
        if table is not None:
            return table
        with self._lock:
            table = self._tables.get(snapshot.token)
            if table is None:
                table = SnapshotBytes(snapshot)
                self._tables[snapshot.token] = table
                self.builds += 1
                while len(self._tables) > MAX_TABLES:
                    del self._tables[next(iter(self._tables))]
        return table

    def invalidate(self, token: int) -> bool:
        """Drop the table of snapshot ``token``; True if one was held."""
        with self._lock:
            return self._tables.pop(token, None) is not None

    def stats(self) -> dict[str, int]:
        """Size accounting for ``/v1/metrics``."""
        with self._lock:
            tables = list(self._tables.values())
        return {
            "tables": len(tables),
            "entries": sum(table.n_entries for table in tables),
            "bytes": sum(table.n_bytes for table in tables),
            "builds": self.builds,
        }
