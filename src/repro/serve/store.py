"""Named, immutable run snapshots and the store that serves them.

A :class:`RunSnapshot` is one mined quarter (or any named
:class:`~repro.core.pipeline.MarasResult`) frozen into the versioned
export wire format of :mod:`repro.core.export`, with stable cluster ids
and the full :class:`~repro.serve.indexes.RunIndexes` built on top. A
:class:`ResultStore` holds any number of snapshots keyed by run name —
one per FAERS quarter in the intended deployment — and can persist them
to a directory and load them back for warm restarts.

The snapshot *always* goes through the export format, even when built
from a live in-process result. That single normalization step is what
makes the round-trip guarantee trivial: a query served from a freshly
mined run and the same query served after ``save`` → ``load`` read the
exact same records, so the responses are byte-identical.
"""

from __future__ import annotations

import json
import threading
from itertools import count
from pathlib import Path
from typing import Any

from repro.core.export import FORMAT_VERSION, export_result
from repro.core.ids import cluster_id
from repro.core.pipeline import MarasResult
from repro.errors import ConfigError, NotFoundError, StoreError, ValidationError
from repro.serve.indexes import RunIndexes
from repro.store import open_backend, validate_run_name


def _validated_name(name: str) -> str:
    # One source of truth for the name grammar (repro.store), surfaced
    # as the serving layer's ConfigError.
    try:
        return validate_run_name(name)
    except StoreError as error:
        raise ConfigError(str(error)) from None


class RunSnapshot:
    """One named run in serving form: export payload + indexes.

    Immutable once built; every consumer (engine threads, the metrics
    endpoint, a save in progress) reads the same tuples and dicts.
    ``token`` is a process-unique sequence number: response-cache keys
    include it, so re-registering a run under the same name can never
    serve a stale cached page.
    """

    __slots__ = ("name", "payload", "records", "indexes", "token")

    _sequence = count()

    def __init__(self, name: str, payload: dict[str, Any]) -> None:
        self.token = next(self._sequence)
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise ValidationError(
                f"unsupported export format version {version!r} "
                f"(this store reads version {FORMAT_VERSION})"
            )
        self.name = _validated_name(name)
        records = []
        for record in payload["clusters"]:
            if "id" not in record:
                # Pre-stable-id exports: the id is a pure content hash,
                # so computing it now matches what export_result writes.
                record = {
                    "id": cluster_id(record["drugs"], record["adrs"]),
                    **record,
                }
            records.append(record)
        self.payload = {**payload, "clusters": records}
        self.records = tuple(records)
        self.indexes = RunIndexes(self.records)

    @classmethod
    def from_result(
        cls, name: str, result: MarasResult, *, include_case_ids: bool = True
    ) -> "RunSnapshot":
        """Snapshot a live pipeline result through the export format."""
        return cls(name, export_result(result, include_case_ids=include_case_ids))

    @property
    def quarter(self) -> str:
        return self.payload.get("quarter", "")

    @property
    def n_clusters(self) -> int:
        return len(self.records)

    def describe(self) -> dict[str, Any]:
        """The ``/v1/runs`` row of this snapshot."""
        return {
            "name": self.name,
            "quarter": self.quarter,
            "n_clusters": self.n_clusters,
            "dataset": dict(self.payload.get("dataset", {})),
            "config": dict(self.payload.get("config", {})),
            "sort_keys": list(self.indexes.sort_keys),
        }


class ResultStore:
    """Named run snapshots, with directory persistence for warm restarts.

    Registration is serialized by a lock; reads go through an atomically
    swapped dict reference so query threads never block on a writer.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._runs: dict[str, RunSnapshot] = {}
        self._subscribers: list[Any] = []

    def subscribe(self, callback) -> None:
        """Register ``callback(old, new)`` to fire when a run is replaced.

        ``old`` is the snapshot being superseded, ``new`` its
        replacement. First registrations (no previous snapshot under
        the name) do not notify. Callbacks run outside the store lock,
        in registration order, on the thread that performed the swap —
        the query-engine cache invalidation hangs off this.
        """
        with self._lock:
            self._subscribers.append(callback)

    def add_result(
        self,
        name: str,
        result: MarasResult,
        *,
        include_case_ids: bool = True,
    ) -> RunSnapshot:
        """Snapshot and register a live result under ``name``."""
        return self.add_snapshot(
            RunSnapshot.from_result(name, result, include_case_ids=include_case_ids)
        )

    def add_export(self, name: str, source: str | Path | dict[str, Any]) -> RunSnapshot:
        """Register a run from an export payload (path or parsed dict)."""
        if isinstance(source, (str, Path)):
            payload = json.loads(Path(source).read_text(encoding="utf-8"))
        else:
            payload = source
        return self.add_snapshot(RunSnapshot(name, payload))

    def add_snapshot(self, snapshot: RunSnapshot) -> RunSnapshot:
        with self._lock:
            runs = dict(self._runs)
            old = runs.get(snapshot.name)
            runs[snapshot.name] = snapshot
            self._runs = runs
            subscribers = tuple(self._subscribers)
        if old is not None:
            for callback in subscribers:
                callback(old, snapshot)
        return snapshot

    def refresh(
        self,
        name: str,
        result: MarasResult,
        *,
        include_case_ids: bool = True,
    ) -> RunSnapshot:
        """Replace an *existing* run with a re-mined result, atomically.

        The surveillance path: a monitor ingests a batch, and the
        serving layer swaps the run in place. The snapshot (export
        normalization + index build) is constructed entirely outside
        the lock; readers see either the old or the new snapshot, never
        a partial one, and subscribers (cache invalidation) fire after
        the swap. Unknown names raise :class:`NotFoundError` — use
        :meth:`add_result` to register a new run.
        """
        if name not in self._runs:
            raise NotFoundError(
                f"cannot refresh unknown run {name!r}; "
                f"have {sorted(self._runs) or 'no runs'}"
            )
        return self.add_result(name, result, include_case_ids=include_case_ids)

    def refresh_from(
        self,
        name: str,
        monitor,
        *,
        include_case_ids: bool = True,
    ) -> RunSnapshot:
        """Refresh ``name`` from a surveillance monitor's latest result.

        The warm-refresh wiring for a serving process that also ingests:
        keep ONE long-lived ``SurveillanceMonitor`` next to the store
        and call this after each ``monitor.ingest(batch)``. The
        monitor's incremental engine owns a persistent
        :class:`~repro.parallel.pool.MiningPool`, so each re-mine
        behind the refresh ships only the batch's delta to workers that
        already hold the accumulated shard rows — not the history.
        Constructing a fresh monitor per refresh works but forfeits
        exactly that residency (every mine is a cold start).
        """
        return self.refresh(
            name, monitor.result, include_case_ids=include_case_ids
        )

    def get(self, name: str) -> RunSnapshot:
        """The snapshot named ``name``; :class:`NotFoundError` if absent."""
        snapshot = self._runs.get(name)
        if snapshot is None:
            raise NotFoundError(
                f"unknown run {name!r}; have {sorted(self._runs) or 'no runs'}"
            )
        return snapshot

    def names(self) -> list[str]:
        return sorted(self._runs)

    def __len__(self) -> int:
        return len(self._runs)

    def __contains__(self, name: str) -> bool:
        return name in self._runs

    def default_run(self) -> str:
        """The run a query may omit: the only one, else an explicit error."""
        runs = self._runs
        if len(runs) == 1:
            return next(iter(runs))
        if not runs:
            raise NotFoundError("the store holds no runs")
        raise NotFoundError(
            f"multiple runs available, pass run=<name>: {sorted(runs)}"
        )

    def save(self, target: str | Path) -> list[Any]:
        """Persist every snapshot to the store at ``target``.

        ``target`` is a store URI (``dir:///path``, ``sqlite:///db``)
        or a bare directory path — the historical calling convention.
        Returns each saved run's location: the ``<name>.json`` file
        :class:`~pathlib.Path` for directory stores (written atomically
        via a temp file + ``os.replace``), a ``sqlite://…#name@vN``
        string for SQLite catalogs.
        """
        with open_backend(target) as backend:
            return [
                backend.save_run(name, self._runs[name].payload).location
                for name in self.names()
            ]

    @classmethod
    def load(cls, target: str | Path) -> "ResultStore":
        """Rebuild a store from a :meth:`save` target (warm restart).

        Raises :class:`NotFoundError` when the store holds no runs and
        :class:`~repro.errors.StoreError` when a stored payload is
        unreadable or corrupt — both one-line diagnoses, so a serving
        process started against a bad store fails fast and explains
        itself.
        """
        with open_backend(target) as backend:
            names = sorted({record.name for record in backend.list_runs()})
            if not names:
                raise NotFoundError(f"no run snapshots in {backend.uri}")
            store = cls()
            for name in names:
                store.add_snapshot(RunSnapshot(name, backend.load_run(name)))
        return store
