"""A bounded, thread-safe LRU cache for query responses.

The serving layer answers the same queries over and over — front-ends
poll the same top-k ranking, dashboards refresh the same drug pages —
so a small response cache absorbs most of the traffic before it touches
the query engine. Standard library only, one lock, O(1) get/put via
``dict`` insertion order (``move_to_end`` semantics done by delete +
re-insert, which on CPython dicts is O(1) amortized).

``functools.lru_cache`` is not usable here: it keys on function
arguments (the engine needs explicit, canonicalized keys), cannot be
invalidated per run, and offers no way to surface hit/miss counts into
:mod:`repro.obs` counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import ConfigError

_MISSING = object()


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Point-in-time hit/miss/size accounting of one cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded LRU map safe for concurrent readers and writers.

    All operations take the instance lock; the critical sections are a
    few dict operations, so contention stays negligible next to the
    query work the cache is saving.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ConfigError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._data: dict[Hashable, Any] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value of ``key`` (marking it most-recent), else ``default``."""
        with self._lock:
            value = self._data.pop(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data[key] = value  # re-insert → most recently used
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                oldest = next(iter(self._data))
                del self._data[oldest]
                self._evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop every entry (hit/miss accounting is preserved)."""
        with self._lock:
            self._data.clear()

    def evict_where(self, predicate) -> int:
        """Drop every entry whose *key* satisfies ``predicate``.

        Targeted invalidation for run refreshes: entries of a replaced
        snapshot are keyed by its token, so one pass drops exactly that
        run's pages while every other run stays cached. Returns the
        number of entries dropped (not counted as capacity evictions).
        """
        with self._lock:
            stale = [key for key in self._data if predicate(key)]
            for key in stale:
                del self._data[key]
            return len(stale)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self.maxsize,
            )
