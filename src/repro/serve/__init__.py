"""The MeDIAR serving layer: mined results as a queryable service.

The paper presents MeDIAR as an *interactive* system — clinicians query
mined multi-drug→ADR associations and MCAC clusters on demand, they do
not re-run the miner. This package is that layer, stdlib-only:

- :mod:`repro.serve.store` — :class:`ResultStore` /
  :class:`RunSnapshot`: named runs (one per FAERS quarter) frozen into
  the versioned export format, with directory save/load for warm
  restarts;
- :mod:`repro.serve.indexes` — precomputed inverted indexes
  (drug→clusters, ADR→clusters, drug-pair→MCACs, stable-id, prefix
  tokens) so every lookup is an index probe, never a scan;
- :mod:`repro.serve.cache` — the bounded thread-safe
  :class:`LRUCache` absorbing repeated parameterized queries;
- :mod:`repro.serve.engine` — the transport-agnostic
  :class:`QueryEngine` (pagination, sort-by, filter floors, response
  cache, :mod:`repro.obs` accounting);
- :mod:`repro.serve.bytecache` — precomputed response *bytes* + strong
  ETags for the hot endpoints, so serving them never JSON-encodes;
- :mod:`repro.serve.api` — the shared :class:`ApiResponder`: routing,
  conditional GETs, error mapping — one implementation behind both
  transports, which is why their bodies are byte-identical;
- :mod:`repro.serve.aio` — the asyncio HTTP/1.1 front-end
  (:class:`AsyncHTTPServer`), keep-alive, load shedding, graceful
  shutdown, and forked multi-worker serving over shared snapshots;
- :mod:`repro.serve.http` — the ``ThreadingHTTPServer`` fallback
  (``mediar serve --sync``).

>>> from repro.serve import QueryEngine, ResultStore, running_server
>>> store = ResultStore()
>>> _ = store.add_result("2014Q1", result)        # doctest: +SKIP
>>> engine = QueryEngine(store)
>>> with running_server(engine) as server:        # doctest: +SKIP
...     print(server.url)
"""

from repro.serve.aio import (
    AsyncHTTPServer,
    WorkerMetricsHub,
    forked_workers,
    running_async_server,
    serve_forked,
)
from repro.serve.api import ApiResponder, ApiResponse
from repro.serve.bytecache import ByteCacheDirectory, SnapshotBytes
from repro.serve.cache import CacheStats, LRUCache
from repro.serve.engine import (
    DEFAULT_PAGE_SIZE,
    DEFAULT_SORT,
    MAX_PAGE_SIZE,
    QueryEngine,
    association_view,
    cluster_view,
)
from repro.serve.http import MediarHTTPServer, MediarRequestHandler, running_server
from repro.serve.indexes import PrefixTokenIndex, RunIndexes
from repro.serve.store import ResultStore, RunSnapshot

__all__ = [
    "ApiResponder",
    "ApiResponse",
    "AsyncHTTPServer",
    "ByteCacheDirectory",
    "CacheStats",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_SORT",
    "LRUCache",
    "MAX_PAGE_SIZE",
    "MediarHTTPServer",
    "MediarRequestHandler",
    "PrefixTokenIndex",
    "QueryEngine",
    "ResultStore",
    "RunIndexes",
    "RunSnapshot",
    "SnapshotBytes",
    "WorkerMetricsHub",
    "association_view",
    "cluster_view",
    "forked_workers",
    "running_async_server",
    "running_server",
    "serve_forked",
]
