"""Maximal frequent itemsets.

The third classical condensed representation next to *all* frequent and
*closed* itemsets: an itemset is **maximal** when it is frequent and no
proper superset is. Maximal sets are the smallest summary (they lose
support information of subsets, which closed sets keep), so:

    maximal ⊆ closed ⊆ frequent

Used here for lattice diagnostics and as a test oracle for the
containment chain; computed by filtering the closed miner's output —
every maximal frequent itemset is closed (if it weren't, its closure
would be a frequent superset), so the filter is lossless.
"""

from __future__ import annotations

from repro.mining.fpclose import fpclose
from repro.mining.transactions import (
    FrequentItemset,
    TransactionDatabase,
)


def maximal_itemsets(
    database: TransactionDatabase,
    min_support: int | float = 1,
    *,
    max_len: int | None = None,
) -> list[FrequentItemset]:
    """Mine all maximal frequent itemsets.

    Same parameter contract as :func:`~repro.mining.fpclose.fpclose`.
    With ``max_len`` set, maximality is relative to the length-capped
    closed family (a capped run cannot see longer supersets).
    """
    closed = fpclose(database, min_support, max_len=max_len)
    if not closed:
        return []
    by_size: dict[int, list[FrequentItemset]] = {}
    for itemset in closed:
        by_size.setdefault(len(itemset.items), []).append(itemset)
    sizes = sorted(by_size, reverse=True)

    maximal: list[FrequentItemset] = []
    accepted: list[frozenset[int]] = []
    for size in sizes:
        for itemset in by_size[size]:
            if any(itemset.items < bigger for bigger in accepted):
                continue
            maximal.append(itemset)
            accepted.append(itemset.items)
    return maximal


def lattice_summary(
    database: TransactionDatabase,
    min_support: int | float = 1,
    *,
    max_len: int | None = None,
) -> dict[str, int]:
    """Sizes of the three representations — the compression picture."""
    from repro.mining.fpgrowth import fpgrowth

    frequent = fpgrowth(database, min_support, max_len=max_len)
    closed = fpclose(database, min_support, max_len=max_len)
    maximal = maximal_itemsets(database, min_support, max_len=max_len)
    return {
        "frequent": len(frequent),
        "closed": len(closed),
        "maximal": len(maximal),
    }
