"""Minimal generators and non-redundant association rules.

The paper's §3.2 cites Bastide et al. [6] and Zaki [30] for the theory
it builds on: closed itemsets compress the itemset lattice, and each
closure class is reachable from its **minimal generators** — the
smallest itemsets whose closure is that closed set. Zaki's
*non-redundant rules* are the rules ``g ⇒ C − g`` with ``g`` a minimal
generator: every other rule of the class has the same support and
confidence and can be derived, so emitting only these loses nothing.

This module provides both pieces over the repository's own closed-set
miner, plus the closed-lattice rule enumeration between closure classes
(most-general antecedent, most-specific consequent).
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations

from repro.errors import ConfigError
from repro.mining.rules import AssociationRule
from repro.mining.measures import RuleMetrics
from repro.mining.transactions import (
    FrequentItemset,
    Itemset,
    TransactionDatabase,
)


def minimal_generators_of(
    database: TransactionDatabase, closed: Itemset, support: int
) -> list[Itemset]:
    """All minimal generators of one closed itemset.

    A subset ``g ⊆ closed`` is a generator when ``support(g) ==
    support(closed)`` (its closure is then exactly ``closed``); it is
    *minimal* when no proper subset is also a generator. Enumerated
    level-wise with supersets-of-known-generators pruned, which is
    exponential only in ``|closed|`` — bounded in practice by the
    pipeline's itemset-length cap.
    """
    if not closed:
        raise ConfigError("the empty itemset has no generators")
    items = sorted(closed)
    found: list[Itemset] = []
    for size in range(1, len(items) + 1):
        for subset in combinations(items, size):
            candidate = frozenset(subset)
            if any(generator <= candidate for generator in found):
                continue
            if database.support(candidate) == support:
                found.append(candidate)
    return found


def minimal_generators(
    database: TransactionDatabase, closed_itemsets: Sequence[FrequentItemset]
) -> dict[Itemset, list[Itemset]]:
    """Minimal generators of every closed itemset, keyed by the closed set."""
    return {
        fi.items: minimal_generators_of(database, fi.items, fi.support)
        for fi in closed_itemsets
    }


def non_redundant_rules(
    database: TransactionDatabase,
    closed_itemsets: Sequence[FrequentItemset],
    *,
    min_confidence: float = 0.0,
) -> list[AssociationRule]:
    """Zaki's non-redundant rules over a set of closed itemsets.

    For every pair of closure classes ``C1 ⊆ C2`` (including
    ``C1 == C2`` when the class has more items than a generator), emit
    ``g ⇒ C2 − g`` for each minimal generator ``g`` of ``C1``. Such a
    rule has the *most general* antecedent and *most specific*
    consequent of its equivalence class; every redundant variant is
    derivable from it with identical support and confidence.
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise ConfigError(f"min_confidence must be in [0, 1], got {min_confidence}")
    support_of = {fi.items: fi.support for fi in closed_itemsets}
    generators = minimal_generators(database, closed_itemsets)
    ordered = sorted(closed_itemsets, key=lambda fi: len(fi.items))
    n_total = len(database)

    rules: list[AssociationRule] = []
    emitted: set[tuple[Itemset, Itemset]] = set()
    for smaller in ordered:
        for larger in ordered:
            if len(larger.items) < len(smaller.items):
                continue
            if not smaller.items <= larger.items:
                continue
            for generator in generators[smaller.items]:
                consequent = larger.items - generator
                if not consequent:
                    continue
                key = (generator, consequent)
                if key in emitted:
                    continue
                confidence = larger.support / smaller.support
                if confidence < min_confidence:
                    continue
                emitted.add(key)
                metrics = RuleMetrics.from_counts(
                    n_joint=larger.support,
                    n_antecedent=smaller.support,
                    n_consequent=database.support(consequent),
                    n_total=n_total,
                )
                rules.append(AssociationRule(generator, consequent, metrics))
    return rules


def redundancy_ratio(
    n_all_rules: int, n_non_redundant: int
) -> float:
    """Fraction of the traditional rule space that was redundant."""
    if n_all_rules < 0 or n_non_redundant < 0:
        raise ConfigError("rule counts must be non-negative")
    if n_all_rules == 0:
        return 0.0
    return 1.0 - min(n_non_redundant, n_all_rules) / n_all_rules
