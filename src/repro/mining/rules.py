"""Association-rule generation.

Two generators live here:

- :func:`generate_rules` — the traditional generator: every non-trivial
  split ``A ⇒ B`` of every mined itemset, optionally filtered by a
  minimum confidence. This is the "Total Rules" series of Fig 5.1.
- :func:`partitioned_rules` — the MeDIAR generator (§3.1): for each
  itemset containing at least one item of the antecedent kind (drugs)
  and one of the consequent kind (ADRs), emit the single rule whose
  antecedent is the itemset's full drug part and whose consequent is its
  full ADR part. Fed with *closed* itemsets this produces exactly the
  closed drug-ADR associations of §3.4.

Both attach a full :class:`~repro.mining.measures.RuleMetrics` computed
from exact counts against the originating database.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from itertools import combinations

from repro.errors import ConfigError
from repro.mining.measures import RuleMetrics
from repro.mining.transactions import (
    FrequentItemset,
    Itemset,
    SupportCounter,
    TransactionDatabase,
)


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """A rule ``antecedent ⇒ consequent`` with its metrics.

    ``antecedent`` and ``consequent`` are disjoint, non-empty itemsets of
    item ids; ``metrics`` carries support/confidence/lift/… computed from
    the database the rule was mined from.
    """

    antecedent: Itemset
    consequent: Itemset
    metrics: RuleMetrics

    def __post_init__(self) -> None:
        if not self.antecedent or not self.consequent:
            raise ConfigError("rule sides must be non-empty")
        if self.antecedent & self.consequent:
            raise ConfigError(
                f"rule sides overlap: {sorted(self.antecedent & self.consequent)}"
            )

    @property
    def items(self) -> Itemset:
        """The rule's complete itemset A ∪ B."""
        return self.antecedent | self.consequent

    @property
    def support(self) -> float:
        return self.metrics.support

    @property
    def confidence(self) -> float:
        return self.metrics.confidence

    @property
    def lift(self) -> float:
        return self.metrics.lift

    def describe(self, catalog) -> str:
        """Human-readable one-liner, e.g. ``[ASPIRIN] [WARFARIN] => [HAEMORRHAGE]``."""
        left = " ".join(f"[{label}]" for label in catalog.labels(self.antecedent))
        right = " ".join(f"[{label}]" for label in catalog.labels(self.consequent))
        return f"{left} => {right}"


def _metrics_for(
    database: TransactionDatabase,
    antecedent: Itemset,
    consequent: Itemset,
    n_joint: int | None = None,
    *,
    oracle: SupportCounter | None = None,
) -> RuleMetrics:
    counts = database if oracle is None else oracle
    joint = (
        n_joint
        if n_joint is not None
        else counts.support(antecedent | consequent)
    )
    return RuleMetrics.from_counts(
        n_joint=joint,
        n_antecedent=counts.support(antecedent),
        n_consequent=counts.support(consequent),
        n_total=len(database),
    )


def generate_rules(
    itemsets: Sequence[FrequentItemset],
    database: TransactionDatabase,
    *,
    min_confidence: float = 0.0,
    oracle: SupportCounter | None = None,
) -> list[AssociationRule]:
    """Generate every non-trivial split of every itemset of size ≥ 2.

    ``min_confidence`` filters the output; 0.0 keeps everything. Note the
    output size is exponential in itemset cardinality — use
    :func:`count_all_splits` when only the Fig 5.1 *count* is needed.
    ``oracle`` routes the side-support queries through a (usually
    memoized, bitset-backed) counter instead of the database; splits of
    different itemsets share sides, so the cache pays off quickly.
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise ConfigError(f"min_confidence must be in [0, 1], got {min_confidence}")
    rules: list[AssociationRule] = []
    for itemset in itemsets:
        items = sorted(itemset.items)
        if len(items) < 2:
            continue
        for split_size in range(1, len(items)):
            for antecedent_tuple in combinations(items, split_size):
                antecedent = frozenset(antecedent_tuple)
                consequent = itemset.items - antecedent
                metrics = _metrics_for(
                    database,
                    antecedent,
                    consequent,
                    n_joint=itemset.support,
                    oracle=oracle,
                )
                if metrics.confidence >= min_confidence:
                    rules.append(AssociationRule(antecedent, consequent, metrics))
    return rules


def count_all_splits(itemsets: Iterable[FrequentItemset]) -> int:
    """Number of rules :func:`generate_rules` would emit at min_confidence 0.

    Each itemset of cardinality k yields ``2^k − 2`` rules (every
    non-empty proper subset as antecedent).
    """
    return sum((1 << len(fi.items)) - 2 for fi in itemsets if len(fi.items) >= 2)


def partitioned_rules(
    itemsets: Sequence[FrequentItemset],
    database: TransactionDatabase,
    *,
    antecedent_kind: str = "drug",
    consequent_kind: str = "adr",
    min_confidence: float = 0.0,
    oracle: SupportCounter | None = None,
) -> list[AssociationRule]:
    """Generate MeDIAR drug→ADR rules from mined itemsets.

    For every itemset whose items split into a non-empty ``antecedent_kind``
    part and a non-empty ``consequent_kind`` part *with nothing left
    over*, emit the one rule `drug part ⇒ ADR part`. Itemsets containing
    an item of any other kind are skipped: such a rule would not be a
    drug-ADR association in the sense of §3.1.

    ``oracle`` routes the antecedent/consequent support queries through
    a shared (usually memoized, bitset-backed) counter; closed itemsets
    heavily share sides — the same ADR set appears as the consequent of
    many rules — so the cache collapses most of these queries.
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise ConfigError(f"min_confidence must be in [0, 1], got {min_confidence}")
    catalog = database.catalog
    antecedent_ids = catalog.ids_of_kind(antecedent_kind)
    consequent_ids = catalog.ids_of_kind(consequent_kind)
    rules: list[AssociationRule] = []
    for itemset in itemsets:
        antecedent = itemset.items & antecedent_ids
        consequent = itemset.items & consequent_ids
        if not antecedent or not consequent:
            continue
        if antecedent | consequent != itemset.items:
            continue
        metrics = _metrics_for(
            database,
            antecedent,
            consequent,
            n_joint=itemset.support,
            oracle=oracle,
        )
        if metrics.confidence >= min_confidence:
            rules.append(AssociationRule(antecedent, consequent, metrics))
    return rules


def count_partitioned_splits(
    itemsets: Iterable[FrequentItemset],
    antecedent_ids: frozenset[int],
    consequent_ids: frozenset[int],
) -> int:
    """Count the drug→ADR rules a traditional all-itemsets miner yields.

    This is the "Filtered Rules" series of Fig 5.1. Convention: each
    frequent itemset that splits cleanly into ≥1 drugs and ≥1 ADRs
    contributes exactly one rule (its full drug part ⇒ its full ADR
    part); all shorter drug→ADR rules are contributed by the
    sub-itemsets, which an all-frequent-itemsets miner enumerates as
    separate itemsets. The count is therefore the number of qualifying
    itemsets — no double counting, no exponential blow-up.
    """
    count = 0
    for fi in itemsets:
        antecedent = fi.items & antecedent_ids
        consequent = fi.items & consequent_ids
        if antecedent and consequent and antecedent | consequent == fi.items:
            count += 1
    return count
