"""Apriori: the level-wise frequent-itemset baseline.

Apriori (Agrawal & Srikant, VLDB'94) generates candidate k-itemsets by
joining frequent (k−1)-itemsets and prunes any candidate with an
infrequent subset. It is asymptotically slower than FP-Growth on dense
data, which is exactly why it earns its keep here twice over:

1. as the *correctness oracle* — the test suite asserts that FP-Growth
   and Apriori mine identical (itemset, support) sets on random data;
2. as the baseline series in the mining-scaling benchmark, showing the
   FP-Growth / closed-mining speedup the paper's pipeline relies on.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import ConfigError
from repro.mining.transactions import (
    FrequentItemset,
    Itemset,
    TransactionDatabase,
    resolve_min_support,
)


def apriori(
    database: TransactionDatabase,
    min_support: int | float = 1,
    *,
    max_len: int | None = None,
) -> list[FrequentItemset]:
    """Mine all frequent itemsets level by level.

    Same contract as :func:`repro.mining.fpgrowth.fpgrowth`: every
    itemset with support ≥ the threshold, order unspecified.
    """
    threshold = resolve_min_support(min_support, len(database))
    if max_len is not None and max_len < 1:
        raise ConfigError(f"max_len must be >= 1, got {max_len}")

    results: list[FrequentItemset] = []
    current: dict[Itemset, int] = {
        frozenset((item,)): count
        for item, count in database.item_supports().items()
        if count >= threshold
    }
    # Candidate counting is the hot loop; go straight to the shared
    # per-item bitmasks (one AND per item, one popcount per candidate)
    # instead of routing each query through `database.support`, which
    # re-normalizes the itemset per call.
    masks = database.item_masks() if current else {}
    bit_count = int.bit_count
    level = 1
    while current:
        results.extend(
            FrequentItemset(items, count) for items, count in current.items()
        )
        if max_len is not None and level >= max_len:
            break
        candidates = _generate_candidates(list(current), level + 1)
        current = {}
        for candidate in candidates:
            mask = -1  # all-ones; the first AND clips it to the first item
            for item in candidate:
                mask &= masks[item]
                if not mask:
                    break
            else:
                count = bit_count(mask)
                if count >= threshold:
                    current[candidate] = count
        level += 1
    return results


def _generate_candidates(
    frequent_prev: list[Itemset], target_size: int
) -> set[Itemset]:
    """Join step + prune step of Apriori.

    Two frequent (k−1)-itemsets sharing a (k−2)-prefix (in sorted-tuple
    form) join into a k-candidate; the candidate survives only if all of
    its (k−1)-subsets were frequent.
    """
    frequent_set = set(frequent_prev)
    sorted_prev = sorted(tuple(sorted(items)) for items in frequent_prev)
    candidates: set[Itemset] = set()
    for i, left in enumerate(sorted_prev):
        for right in sorted_prev[i + 1 :]:
            if left[:-1] != right[:-1]:
                break  # sorted order: no later right shares the prefix
            candidate = frozenset(left) | frozenset(right)
            if len(candidate) != target_size:
                continue
            if all(
                frozenset(subset) in frequent_set
                for subset in combinations(sorted(candidate), target_size - 1)
            ):
                candidates.add(candidate)
    return candidates
