"""Bitset-backed support oracle.

The default :class:`~repro.mining.transactions.TransactionDatabase`
keeps tidsets as ``frozenset[int]``; intersecting those allocates new
sets per query. At FAERS scale (10⁵+ reports) the hot path — support
counting during MCAC construction and contingency building — is better
served by *bitset* tidsets: one arbitrary-precision Python integer per
item, one bit per transaction, so an itemset support is a chain of
``&`` and one ``bit_count()``, all in C.

:class:`BitsetIndex` is a drop-in read-only accelerator built from an
existing database; the equivalence tests assert it agrees with the
set-based answers bit for bit, and the mining-scaling benchmark
measures the speedup.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import MiningError
from repro.mining.transactions import Itemset, TransactionDatabase


class BitsetIndex:
    """Per-item transaction bitmasks over a fixed database.

    Bit ``t`` of ``mask(item)`` is set iff transaction ``t`` contains
    the item. The index is immutable and tied to the database it was
    built from.
    """

    def __init__(self, database: TransactionDatabase) -> None:
        self._n_transactions = len(database)
        masks: dict[int, int] = {}
        for tid, transaction in enumerate(database):
            bit = 1 << tid
            for item in transaction:
                masks[item] = masks.get(item, 0) | bit
        self._masks = masks
        self._full = (1 << self._n_transactions) - 1

    def __len__(self) -> int:
        return self._n_transactions

    def mask(self, item: int) -> int:
        """The transaction bitmask of one item (0 if it never occurs)."""
        return self._masks.get(item, 0)

    def itemset_mask(self, itemset: Iterable[int]) -> int:
        """AND of the item masks; the full mask for the empty itemset."""
        result = self._full
        for item in itemset:
            result &= self._masks.get(item, 0)
            if not result:
                return 0
        return result

    def support(self, itemset: Iterable[int]) -> int:
        """Absolute support via popcount."""
        return self.itemset_mask(itemset).bit_count()

    def tidset(self, itemset: Iterable[int]) -> frozenset[int]:
        """Materialize the matching tids (for interop with set-based code)."""
        mask = self.itemset_mask(itemset)
        tids = []
        tid = 0
        while mask:
            if mask & 1:
                tids.append(tid)
            low_zeros = ((mask & -mask).bit_length() - 1) if mask else 0
            if low_zeros > 1:
                mask >>= low_zeros
                tid += low_zeros
            else:
                mask >>= 1
                tid += 1
        return frozenset(tids)

    def contingency_counts(
        self, exposure: Itemset, outcome: Itemset
    ) -> tuple[int, int, int, int]:
        """(a, b, c, d) cells of the exposure/outcome 2×2 table."""
        if not exposure or not outcome:
            raise MiningError("exposure and outcome must be non-empty")
        exposed = self.itemset_mask(exposure)
        with_outcome = self.itemset_mask(outcome)
        a = (exposed & with_outcome).bit_count()
        b = exposed.bit_count() - a
        c = with_outcome.bit_count() - a
        d = self._n_transactions - a - b - c
        return (a, b, c, d)
