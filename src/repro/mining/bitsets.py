"""Bitset-backed support oracle.

The default :class:`~repro.mining.transactions.TransactionDatabase`
keeps tidsets as ``frozenset[int]``; intersecting those allocates new
sets per query. At FAERS scale (10⁵+ reports) the hot path — support
counting during MCAC construction and contingency building — is better
served by *bitset* tidsets: one arbitrary-precision Python integer per
item, one bit per transaction, so an itemset support is a chain of
``&`` and one ``bit_count()``, all in C.

Two layers live here:

- :class:`BitsetIndex` — read-only per-item bitmask view over a fixed
  database. It shares the database's own lazily built mask table
  (:meth:`~repro.mining.transactions.TransactionDatabase.item_masks`),
  so index construction after any multi-item support query is free.
- :class:`SupportOracle` — a memoizing façade over a
  :class:`BitsetIndex`. The MCAC builder asks for the support of every
  one of a target's ``2^n − 2`` antecedent subsets, and clusters of
  overlapping targets share most of those subsets; the oracle computes
  each distinct itemset support once per pipeline run.

The equivalence tests assert both layers agree with the set-based
answers bit for bit, and the mining-scaling benchmark measures the
speedup.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import MiningError
from repro.mining.transactions import Itemset, TransactionDatabase


class BitsetIndex:
    """Per-item transaction bitmasks over a fixed database.

    Bit ``t`` of ``mask(item)`` is set iff transaction ``t`` contains
    the item. The index is immutable and tied to the database it was
    built from; the mask table itself is shared with the database
    (built at most once per database, whoever asks first).
    """

    def __init__(self, database: TransactionDatabase) -> None:
        self._n_transactions = len(database)
        self._masks = database.item_masks()
        self._full = (1 << self._n_transactions) - 1

    def __len__(self) -> int:
        return self._n_transactions

    def mask(self, item: int) -> int:
        """The transaction bitmask of one item (0 if it never occurs)."""
        return self._masks.get(item, 0)

    def itemset_mask(self, itemset: Iterable[int]) -> int:
        """AND of the item masks; the full mask for the empty itemset."""
        result = self._full
        for item in itemset:
            result &= self._masks.get(item, 0)
            if not result:
                return 0
        return result

    def support(self, itemset: Iterable[int]) -> int:
        """Absolute support via popcount."""
        return self.itemset_mask(itemset).bit_count()

    def tidset(self, itemset: Iterable[int]) -> frozenset[int]:
        """Materialize the matching tids (for interop with set-based code).

        Iterates *set bits only* — isolate the lowest set bit with
        ``mask & -mask``, convert to a tid with ``bit_length``, clear it
        — so the walk is O(popcount), not O(n_transactions).
        """
        mask = self.itemset_mask(itemset)
        tids = []
        while mask:
            low = mask & -mask
            tids.append(low.bit_length() - 1)
            mask ^= low
        return frozenset(tids)

    def contingency_counts(
        self, exposure: Itemset, outcome: Itemset
    ) -> tuple[int, int, int, int]:
        """(a, b, c, d) cells of the exposure/outcome 2×2 table."""
        if not exposure or not outcome:
            raise MiningError("exposure and outcome must be non-empty")
        exposed = self.itemset_mask(exposure)
        with_outcome = self.itemset_mask(outcome)
        a = (exposed & with_outcome).bit_count()
        b = exposed.bit_count() - a
        c = with_outcome.bit_count() - a
        d = self._n_transactions - a - b - c
        return (a, b, c, d)


class SupportOracle:
    """Memoized itemset-support answers over a shared :class:`BitsetIndex`.

    Duck-compatible with the support-counting surface of
    :class:`~repro.mining.transactions.TransactionDatabase`
    (``len(oracle)``, ``oracle.support(itemset)``), so the rule
    generators and the MCAC builder accept either. Each distinct
    itemset's support is computed once; ``hits``/``misses`` expose the
    cache effectiveness to the observability layer.
    """

    __slots__ = ("_index", "_cache", "hits", "misses")

    def __init__(self, index: BitsetIndex) -> None:
        self._index = index
        self._cache: dict[Itemset, int] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def for_database(cls, database: TransactionDatabase) -> "SupportOracle":
        return cls(BitsetIndex(database))

    @property
    def index(self) -> BitsetIndex:
        return self._index

    def __len__(self) -> int:
        return len(self._index)

    def support(self, itemset: Iterable[int]) -> int:
        """Absolute support of ``itemset``, memoized per distinct itemset."""
        key = itemset if isinstance(itemset, frozenset) else frozenset(itemset)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self._cache[key] = self._index.support(key)
        return result

    def warm(self, itemset: Iterable[int], support: int) -> None:
        """Seed the memo cache with an exactly-known support.

        The sharded merge recomputes every candidate's global support
        over the full bitmask table; warming those answers in means the
        downstream rule/cluster stages never re-intersect the tidsets
        of itemsets the merge already measured.
        """
        key = itemset if isinstance(itemset, frozenset) else frozenset(itemset)
        self._cache.setdefault(key, support)

    def warm_from(
        self, previous: "SupportOracle", *, invalidated: frozenset[int]
    ) -> int:
        """Carry still-valid memo entries from a previous batch's oracle.

        An itemset containing no invalidated item has the same tidset
        mask it had before the delta was applied (no touched row changed
        any of its items' bits for it), hence the same support — so its
        cached answer transfers verbatim. The empty itemset is skipped:
        its support is the transaction count, which the delta grew.
        Returns the number of entries carried.
        """
        carried = 0
        for key, support in previous._cache.items():
            if key and key.isdisjoint(invalidated):
                self._cache.setdefault(key, support)
                carried += 1
        return carried

    def tidset(self, itemset: Iterable[int]) -> frozenset[int]:
        """Matching tids (uncached — tidsets are large, supports are not)."""
        return self._index.tidset(itemset)

    def cache_size(self) -> int:
        return len(self._cache)


# ---------------------------------------------------------------------------
# Chunked tidset masks
#
# A monolithic Python-int mask makes every ``&`` cost O(n_transactions/64)
# words regardless of how few transactions actually match. The sharded
# merge intersects thousands of *narrow* tidsets (a candidate itemset
# rarely matches more than a few hundred of 10⁵ rows), so it represents
# masks as sparse dicts of fixed-width blocks: ``{block_index: block}``
# with each block a nonzero int of at most :data:`BLOCK_BITS` bits. The
# key set doubles as the nonzero-block skip list — intersections iterate
# the narrower operand's keys and touch only blocks both sides populate,
# so cost tracks itemset density instead of database width.
# ---------------------------------------------------------------------------

#: Bits per block. 4096 keeps per-block ints in the cheap small-int AND
#: regime while amortising dict overhead over 64 machine words.
BLOCK_BITS = 4096

_BLOCK_LOW = (1 << BLOCK_BITS) - 1

#: A chunked mask: block index -> nonzero block of ``BLOCK_BITS`` bits.
ChunkedMask = dict[int, int]


def chunk_mask(mask: int) -> ChunkedMask:
    """Split a monolithic bitmask into its nonzero fixed-width blocks."""
    blocks: ChunkedMask = {}
    index = 0
    while mask:
        block = mask & _BLOCK_LOW
        if block:
            blocks[index] = block
        mask >>= BLOCK_BITS
        index += 1
    return blocks


def chunk_unmask(blocks: ChunkedMask) -> int:
    """Reassemble the monolithic bitmask (interop with plain-int code)."""
    mask = 0
    for index, block in blocks.items():
        mask |= block << (index * BLOCK_BITS)
    return mask


def chunk_and(a: ChunkedMask, b: ChunkedMask) -> ChunkedMask:
    """Intersection; iterates the narrower side's skip list."""
    if len(b) < len(a):
        a, b = b, a
    get = b.get
    out: ChunkedMask = {}
    for index, block in a.items():
        common = block & get(index, 0)
        if common:
            out[index] = common
    return out


def chunk_popcount(blocks: ChunkedMask) -> int:
    return sum(block.bit_count() for block in blocks.values())


def chunk_disjoint(a: ChunkedMask, b: ChunkedMask) -> bool:
    if len(b) < len(a):
        a, b = b, a
    get = b.get
    return all(not (block & get(index, 0)) for index, block in a.items())


def chunk_tids(blocks: ChunkedMask) -> Iterator[int]:
    """Yield set tids; O(popcount) via lowest-set-bit isolation."""
    for index in sorted(blocks):
        block = blocks[index]
        base = index * BLOCK_BITS
        while block:
            low = block & -block
            yield base + low.bit_length() - 1
            block ^= low


class ChunkedItemMasks:
    """Per-item chunked masks with a diffset twist, built lazily.

    The merge's layered DP and closure scans test thousands of
    ``candidate_mask AND/⊆ item_mask`` pairs. Sparse items chunk well
    directly; *dense* items (support above half the database) would
    populate every block, so they are stored dEclat-style as the chunks
    of their **complement** — ``v & item == v & ~diff`` and
    ``v ⊆ item ⟺ v ∩ diff = ∅`` — making dense items exactly as cheap
    as their absence pattern is sparse.
    """

    __slots__ = (
        "_masks", "_supports", "_n", "_universe", "_entries",
        "_by_support", "_support_rank",
    )

    def __init__(
        self,
        item_masks: dict[int, int],
        item_supports: dict[int, int],
        n_transactions: int,
    ) -> None:
        self._masks = item_masks
        self._supports = item_supports
        self._n = n_transactions
        self._universe = (1 << n_transactions) - 1
        # item -> (diff?, blocks); built on first use per item.
        self._entries: dict[int, tuple[bool, ChunkedMask]] = {}
        self._by_support: list[int] | None = None
        self._support_rank: list[int] | None = None

    def support(self, item: int) -> int:
        return self._supports.get(item, 0)

    def entry(self, item: int) -> tuple[bool, ChunkedMask]:
        """(is_diffset, blocks) for one item, cached."""
        cached = self._entries.get(item)
        if cached is None:
            mask = self._masks.get(item, 0)
            if self._supports.get(item, 0) * 2 > self._n:
                cached = (True, chunk_mask(self._universe ^ mask))
            else:
                cached = (False, chunk_mask(mask))
            self._entries[item] = cached
        return cached

    def positive(self, item: int) -> ChunkedMask:
        """The item's own chunked tidset (never the diffset form)."""
        diff, blocks = self.entry(item)
        if not diff:
            return blocks
        return chunk_mask(self._masks.get(item, 0))

    def and_item(self, blocks: ChunkedMask, item: int) -> ChunkedMask:
        """``blocks & mask(item)`` honouring the diffset representation."""
        diff, item_blocks = self.entry(item)
        get = item_blocks.get
        out: ChunkedMask = {}
        if diff:
            for index, block in blocks.items():
                common = block & ~get(index, 0)
                if common:
                    out[index] = common
        else:
            for index, block in blocks.items():
                common = block & get(index, 0)
                if common:
                    out[index] = common
        return out

    def covers(self, item: int, blocks: ChunkedMask) -> bool:
        """``blocks ⊆ mask(item)``, early-exiting on the first miss."""
        diff, item_blocks = self.entry(item)
        get = item_blocks.get
        if diff:
            for index, block in blocks.items():
                if block & get(index, 0):
                    return False
        else:
            for index, block in blocks.items():
                if block & ~get(index, 0):
                    return False
        return True

    def items_by_support(self) -> tuple[list[int], list[int]]:
        """(items sorted by support descending, matching support list).

        Closure scans need every item whose support admits a superset
        tidset of the group's — a *prefix* of this order, found by
        bisecting the support list, instead of a full-vocabulary pass.
        """
        if self._by_support is None:
            items = sorted(
                self._supports, key=lambda i: (-self._supports[i], i)
            )
            self._by_support = items
            self._support_rank = [-self._supports[i] for i in items]
        return self._by_support, self._support_rank
