"""FP-Growth frequent itemset mining.

The paper's mining phase (§5.2) "use[s] FP-Growth trees for closed
item-set and rule generation"; this module is the all-frequent-itemsets
variant, used by the Fig 5.1 reproduction (the "Total Rules" series is
generated from *all* frequent itemsets) and as the substrate for the
closed miner in :mod:`repro.mining.fpclose`.

The recursion is implemented with an explicit work stack so that deep
conditional chains on dense pharmacovigilance data cannot hit Python's
recursion limit.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import ConfigError
from repro.mining.fptree import FPTree
from repro.mining.transactions import (
    FrequentItemset,
    Itemset,
    TransactionDatabase,
    resolve_min_support,
)
from repro.obs import get_registry


def fpgrowth(
    database: TransactionDatabase,
    min_support: int | float = 1,
    *,
    max_len: int | None = None,
) -> list[FrequentItemset]:
    """Mine all frequent itemsets of ``database``.

    Parameters
    ----------
    database:
        The transaction database to mine.
    min_support:
        Absolute count (``int >= 1``) or fraction of the database
        (``float`` in (0, 1]).
    max_len:
        Optional cap on itemset cardinality. The drug→ADR pipeline uses
        this to bound rule length (e.g. at most 4 drugs + a handful of
        ADRs per rule).

    Returns
    -------
    list[FrequentItemset]
        Every itemset with support ≥ the threshold, in no particular
        order. The empty itemset is never returned.
    """
    threshold = resolve_min_support(min_support, len(database))
    if max_len is not None and max_len < 1:
        raise ConfigError(f"max_len must be >= 1, got {max_len}")

    registry = get_registry()
    with registry.timer("fpgrowth"):
        supports = {
            item: count
            for item, count in database.item_supports().items()
            if count >= threshold
        }
        if not supports:
            return []
        tree = FPTree.from_transactions(database, supports)
        if registry.enabled:
            registry.counter("fpgrowth.fptree_nodes").inc(tree.node_count())
        results: list[FrequentItemset] = []
        _mine(tree, threshold, suffix=frozenset(), max_len=max_len, out=results)
        registry.counter("fpgrowth.itemsets").inc(len(results))
    return results


def _mine(
    tree: FPTree,
    threshold: int,
    suffix: Itemset,
    max_len: int | None,
    out: list[FrequentItemset],
) -> None:
    """Iterative FP-Growth over an explicit stack of (tree, suffix) jobs."""
    registry = get_registry()
    conditional_trees = registry.counter("fpgrowth.conditional_trees")
    conditional_nodes = registry.counter("fpgrowth.conditional_tree_nodes")
    stack: list[tuple[FPTree, Itemset]] = [(tree, suffix)]
    while stack:
        current_tree, current_suffix = stack.pop()
        if current_tree.is_empty():
            continue
        single = current_tree.single_path()
        if single is not None:
            _emit_single_path(single, current_suffix, max_len, out)
            continue
        for item in current_tree.items_by_ascending_frequency():
            item_support = current_tree.item_support(item)
            if item_support < threshold:
                continue
            new_suffix = current_suffix | {item}
            if max_len is not None and len(new_suffix) > max_len:
                continue
            out.append(FrequentItemset(new_suffix, item_support))
            if max_len is not None and len(new_suffix) == max_len:
                continue
            conditional = current_tree.conditional_tree(item, threshold)
            conditional_trees.inc()
            if registry.enabled:
                conditional_nodes.inc(conditional.node_count())
            if not conditional.is_empty():
                stack.append((conditional, new_suffix))


def _emit_single_path(
    path: list[tuple[int, int]],
    suffix: Itemset,
    max_len: int | None,
    out: list[FrequentItemset],
) -> None:
    """Enumerate all non-empty subsets of a single-path tree.

    For a chain i1:c1 → i2:c2 → ... (counts non-increasing), the support
    of any subset is the count of its deepest member, so every
    combination can be emitted without recursion.
    """
    remaining = None if max_len is None else max_len - len(suffix)
    if remaining is not None and remaining <= 0:
        return
    n = len(path)
    limit = n if remaining is None else min(n, remaining)
    for size in range(1, limit + 1):
        for combo in combinations(range(n), size):
            items = suffix | {path[i][0] for i in combo}
            support = path[combo[-1]][1]  # deepest selected node
            out.append(FrequentItemset(frozenset(items), support))
