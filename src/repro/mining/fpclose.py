"""Closed frequent itemset mining.

The paper's pipeline (§5.2) mines *closed* itemsets so that every
generated drug-ADR rule is a supported association (Lemma 3.4.2) and the
rule space collapses by orders of magnitude (Fig 5.1).

The miner here is an LCM-style prefix-preserving closure-extension
search (Uno et al., FIMI'04) over the database's vertical representation
— each candidate is extended by one item, the tidset is intersected, the
closure is computed, and the branch is kept only if the closure does not
disturb the prefix. This enumerates every closed itemset exactly once with
no duplicate-detection hash table.

Two implementations share that search shape:

- :func:`fpclose` — the production miner. Tidsets are **integer
  bitmasks** (one bit per transaction), so every intersection is a
  single C-level ``&`` and every support a ``bit_count()``. Each branch
  carries a *conditional candidate list*: only the items that survived
  the parent's intersection at ≥ threshold are re-examined, and the
  closure test is fused into the same scan that builds the child's
  candidate list — one popcount per (branch, candidate) pair decides
  "in closure", "still a candidate", or "pruned". Items are ordered by
  ascending support so low-support cores shed candidates as early as
  possible.
- :func:`fpclose_reference` — the original ``frozenset``-tidset miner,
  kept as the equivalence oracle and the "before" series of the
  set-vs-bitset benchmark group.

Both keep the name ``fpclose`` lineage after the FP-Growth-based closed
mining the paper describes; the output contract is identical (all closed
frequent itemsets with their supports) and the test suite cross-checks
them against each other and against a brute-force closure filter over
Apriori/FP-Growth output.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mining.transactions import (
    FrequentItemset,
    Itemset,
    TransactionDatabase,
    resolve_min_support,
)
from repro.obs import get_registry


def touched_universe(
    database: TransactionDatabase, touched_mask: int
) -> frozenset[int]:
    """Union of the touched rows' items — the delta re-mine's universe.

    Every closed itemset whose tidset intersects ``touched_mask`` is
    contained in some touched row, hence in this union, so projecting
    rows onto it preserves every support the delta contract needs.
    This is the shared pushdown hook of the sharded miner
    (:mod:`repro.parallel.miner`): the parent ships the universe to the
    workers, which project their *resident* rows onto it instead of
    receiving re-projected rows.
    """
    items: set[int] = set()
    remaining = touched_mask
    while remaining:
        low = remaining & -remaining
        items |= database[low.bit_length() - 1]
        remaining ^= low
    return frozenset(items)


def fpclose(
    database: TransactionDatabase,
    min_support: int | float = 1,
    *,
    max_len: int | None = None,
    touched_mask: int | None = None,
) -> list[FrequentItemset]:
    """Mine all closed frequent itemsets of ``database`` (bitset core).

    Parameters
    ----------
    database:
        The transaction database to mine.
    min_support:
        Absolute count (``int >= 1``) or fraction (``float`` in (0, 1]).
    max_len:
        Optional cap on the cardinality of *emitted* closed itemsets.
        Because the search only ever grows itemsets, branches whose
        closure already exceeds the cap are pruned entirely; closed
        itemsets within the cap are unaffected.
    touched_mask:
        Optional transaction bitmask restricting the search to closed
        itemsets whose tidset intersects the mask. Branch tidsets only
        shrink along a DFS path, so a branch whose projected mask is
        disjoint from ``touched_mask`` can never reach a touched
        transaction anywhere in its subtree and is skipped whole — this
        is what makes delta re-mining in :mod:`repro.incremental` cost
        proportional to the delta. ``None`` (the default) mines
        everything; ``0`` returns nothing.

    Returns
    -------
    list[FrequentItemset]
        Every closed itemset with support ≥ the threshold (the same set
        :func:`fpclose_reference` returns, enumeration order aside) —
        restricted, when ``touched_mask`` is given, to exactly those
        whose tidset intersects it. The empty itemset is never
        returned, even when no item is universal.
    """
    threshold = resolve_min_support(min_support, len(database))
    if max_len is not None and max_len < 1:
        raise ConfigError(f"max_len must be >= 1, got {max_len}")
    if touched_mask is not None and touched_mask < 0:
        raise ConfigError(f"touched_mask must be >= 0, got {touched_mask}")
    if touched_mask == 0:
        return []
    # -1 is all-ones: in the unrestricted case the filter below reduces
    # to `ext & -1 == ext`, always truthy for a non-empty tidset, so the
    # hot loop pays one C-level AND and no branch misprediction.
    touched = -1 if touched_mask is None else touched_mask

    registry = get_registry()
    branches = registry.counter("fpclose.branches")
    closures = registry.counter("fpclose.closure_calls")
    with registry.timer("fpclose"):
        n_transactions = len(database)
        supports = database.item_supports()
        # Ascending support (ties by item id, for determinism): rare
        # items become cores first, so their small tidsets prune the
        # deepest subtrees before dense items multiply the branching.
        order = sorted(
            (item for item, count in supports.items() if count >= threshold),
            key=lambda item: (supports[item], item),
        )
        if not order:
            return []
        masks = database.item_masks()
        rank_masks = [masks[item] for item in order]
        n_ranks = len(order)
        full = (1 << n_transactions) - 1

        results: list[FrequentItemset] = []
        # Hot-loop counters accumulate in plain locals and flush into
        # the registry once per call, so profiling never costs a Python
        # method call per branch/extension.
        n_branches = 0
        n_closures = 1
        n_skipped = 0
        item_checks = n_ranks

        # Root closure: items present in every transaction.
        root = [r for r in range(n_ranks) if rank_masks[r] == full]
        if root and (max_len is None or len(root) <= max_len):
            results.append(
                FrequentItemset(
                    frozenset(order[r] for r in root), n_transactions
                )
            )
        if max_len is not None and root and len(root) >= max_len:
            closures.inc(n_closures)
            registry.counter("fpclose.closed_itemsets").inc(len(results))
            registry.counter("fpclose.closure_item_checks").inc(item_checks)
            return results

        in_root = frozenset(root)
        # A candidate is (rank, projected mask, projected support): the
        # mask is the item's tidset already intersected with the owning
        # branch's tidset, the support its popcount. The parent's
        # closure scan computes both as a byproduct, so an extension
        # needs no AND and no popcount of its own — its tidset and
        # support are read straight off the candidate tuple.
        root_candidates = tuple(
            (r, rank_masks[r], supports[order[r]])
            for r in range(n_ranks)
            if r not in in_root
        )

        # Explicit DFS stack of (closed prefix ranks, conditional
        # candidates ascending by rank, extension start index).
        # Extensions only use candidates strictly greater than the core
        # rank (everything from ``start`` on), which is what makes the
        # enumeration duplicate-free; candidates before ``start`` are
        # carried anyway because one of them turning "universal" in a
        # deeper tidset is exactly the prefix-preservation violation
        # that must prune the branch.
        stack: list[
            tuple[tuple[int, ...], tuple[tuple[int, int, int], ...], int]
        ] = [(tuple(root), root_candidates, 0)]
        bit_count = int.bit_count  # unbound: saves a method bind per AND
        while stack:
            prefix, candidates, start = stack.pop()
            n_branches += 1
            n_candidates = len(candidates)
            for pos in range(start, n_candidates):
                r, ext, ext_count = candidates[pos]
                # Delta restriction: every tidset in this subtree is a
                # subset of `ext`, so if `ext` misses the touched rows
                # entirely, nothing below can intersect them either —
                # the closure scan and the whole subtree are skipped.
                if not ext & touched:
                    n_skipped += 1
                    continue
                n_closures += 1
                # Fused closure + conditional-candidate scan: for every
                # candidate j of the parent, one intersection popcount
                # classifies it. Equal to the branch support → j is in
                # the closure (a j before the core in support order
                # violates prefix preservation and kills the branch);
                # ≥ threshold → j stays a candidate for descendants;
                # below threshold → j disappears from this subtree.
                closed = list(prefix)
                closed.append(r)
                child_candidates: list[tuple[int, int, int]] = []
                child_start = 0
                preserved = True
                item_checks += n_candidates
                for j, j_mask, _ in candidates:
                    if j == r:
                        continue
                    intersection = j_mask & ext
                    if not intersection:
                        # Empty intersections are the common case deep
                        # in the tree; ext_count >= threshold >= 1, so
                        # this can be neither a closure member nor a
                        # surviving candidate — skip the popcount.
                        continue
                    count = bit_count(intersection)
                    if count == ext_count:
                        if j < r:
                            preserved = False
                            break
                        closed.append(j)
                    elif count >= threshold:
                        if j < r:
                            child_start += 1
                        child_candidates.append((j, intersection, count))
                if not preserved:
                    continue
                if max_len is not None and len(closed) > max_len:
                    continue
                results.append(
                    FrequentItemset(
                        frozenset(order[k] for k in closed), ext_count
                    )
                )
                if max_len is None or len(closed) < max_len:
                    stack.append(
                        (tuple(closed), tuple(child_candidates), child_start)
                    )
        branches.inc(n_branches)
        closures.inc(n_closures)
        if n_skipped:
            registry.counter("fpclose.delta_subtrees_skipped").inc(n_skipped)
        registry.counter("fpclose.closed_itemsets").inc(len(results))
        registry.counter("fpclose.closure_item_checks").inc(item_checks)
    return results


def fpclose_reference(
    database: TransactionDatabase,
    min_support: int | float = 1,
    *,
    max_len: int | None = None,
) -> list[FrequentItemset]:
    """The set-based closed miner (equivalence oracle / benchmark baseline).

    Same contract as :func:`fpclose`; tidsets are ``frozenset[int]`` and
    every closure call re-scans all frequent items. Kept verbatim so the
    bitset core has an in-tree referee and the mining-scaling benchmark
    can report the set-vs-bitset speedup.
    """
    threshold = resolve_min_support(min_support, len(database))
    if max_len is not None and max_len < 1:
        raise ConfigError(f"max_len must be >= 1, got {max_len}")

    registry = get_registry()
    branches = registry.counter("fpclose_reference.branches")
    closures = registry.counter("fpclose_reference.closure_calls")
    with registry.timer("fpclose_reference"):
        supports = database.item_supports()
        frequent = sorted(i for i, c in supports.items() if c >= threshold)
        if not frequent:
            return []
        tidsets = {i: database.tidset(i) for i in frequent}
        results: list[FrequentItemset] = []
        all_tids = frozenset(range(len(database)))
        n_frequent = len(frequent)
        item_checks = n_frequent

        root = _closure_over(frozenset(), all_tids, frequent, tidsets)
        closures.inc()
        if root and (max_len is None or len(root) <= max_len):
            results.append(FrequentItemset(root, len(all_tids)))
        if max_len is not None and root and len(root) >= max_len:
            registry.counter("fpclose_reference.closed_itemsets").inc(len(results))
            registry.counter("fpclose_reference.closure_item_checks").inc(item_checks)
            return results

        # Explicit DFS stack of (closed itemset, tidset, core item id).
        # Extensions only use items strictly greater than the core, which is
        # what makes the enumeration duplicate-free.
        stack: list[tuple[Itemset, frozenset[int], int]] = [(root, all_tids, -1)]
        while stack:
            prefix, tids, core = stack.pop()
            branches.inc()
            for item in frequent:
                if item <= core or item in prefix:
                    continue
                extended_tids = tids & tidsets[item]
                if len(extended_tids) < threshold:
                    continue
                closed = _closure_over(
                    prefix | {item}, extended_tids, frequent, tidsets
                )
                closures.inc()
                item_checks += n_frequent
                # Prefix-preserving test: the closure must not add any item
                # smaller than the extension item that was not already in the
                # prefix — otherwise this closed set is reachable (and will
                # be reached) from a lexicographically earlier branch.
                if any(j < item and j not in prefix for j in closed):
                    continue
                if max_len is not None and len(closed) > max_len:
                    continue
                results.append(FrequentItemset(closed, len(extended_tids)))
                if max_len is None or len(closed) < max_len:
                    stack.append((closed, extended_tids, item))
        registry.counter("fpclose_reference.closed_itemsets").inc(len(results))
        registry.counter("fpclose_reference.closure_item_checks").inc(item_checks)
    return results


def _closure_over(
    itemset: Itemset,
    tids: frozenset[int],
    frequent: list[int],
    tidsets: dict[int, frozenset[int]],
) -> Itemset:
    """Closure of ``itemset`` restricted to frequent items.

    An item belongs to the closure iff its tidset contains every tid of
    the branch. Restricting to frequent items is sound: an infrequent
    item has support below the threshold, so it cannot contain a branch
    tidset of size ≥ threshold.
    """
    size = len(tids)
    closed = set(itemset)
    for item in frequent:
        if item in closed:
            continue
        candidate = tidsets[item]
        if len(candidate) >= size and tids <= candidate:
            closed.add(item)
    return frozenset(closed)
