"""Closed frequent itemset mining.

The paper's pipeline (§5.2) mines *closed* itemsets so that every
generated drug-ADR rule is a supported association (Lemma 3.4.2) and the
rule space collapses by orders of magnitude (Fig 5.1).

The miner here is an LCM-style prefix-preserving closure-extension
search (Uno et al., FIMI'04) over the database's vertical representation
— each candidate is extended by one item, the tidset is intersected, the
closure is computed, and the branch is kept only if the closure does not
disturb the prefix. This enumerates every closed itemset exactly once with
no duplicate-detection hash table. The public entry point keeps the name
``fpclose`` after the FP-Growth-based closed-mining step the paper
describes; the output contract is identical (all closed frequent
itemsets with their supports) and the test suite cross-checks it against
a brute-force closure filter over Apriori output.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mining.transactions import (
    FrequentItemset,
    Itemset,
    TransactionDatabase,
    resolve_min_support,
)
from repro.obs import get_registry


def fpclose(
    database: TransactionDatabase,
    min_support: int | float = 1,
    *,
    max_len: int | None = None,
) -> list[FrequentItemset]:
    """Mine all closed frequent itemsets of ``database``.

    Parameters
    ----------
    database:
        The transaction database to mine.
    min_support:
        Absolute count (``int >= 1``) or fraction (``float`` in (0, 1]).
    max_len:
        Optional cap on the cardinality of *emitted* closed itemsets.
        Because the search only ever grows itemsets, branches whose
        closure already exceeds the cap are pruned entirely; closed
        itemsets within the cap are unaffected.

    Returns
    -------
    list[FrequentItemset]
        Every closed itemset with support ≥ the threshold. The empty
        itemset is never returned, even when no item is universal.
    """
    threshold = resolve_min_support(min_support, len(database))
    if max_len is not None and max_len < 1:
        raise ConfigError(f"max_len must be >= 1, got {max_len}")

    registry = get_registry()
    branches = registry.counter("fpclose.branches")
    closures = registry.counter("fpclose.closure_calls")
    with registry.timer("fpclose"):
        supports = database.item_supports()
        frequent = sorted(i for i, c in supports.items() if c >= threshold)
        if not frequent:
            return []
        tidsets = {i: database.tidset(i) for i in frequent}
        # For closure computation, examine candidate items most-frequent
        # first is unnecessary; we just need, per branch, the items whose
        # tidset is a superset of the branch tidset.
        results: list[FrequentItemset] = []
        all_tids = frozenset(range(len(database)))

        root = _closure_over(frozenset(), all_tids, frequent, tidsets)
        closures.inc()
        if root and (max_len is None or len(root) <= max_len):
            results.append(FrequentItemset(root, len(all_tids)))
        if max_len is not None and root and len(root) >= max_len:
            registry.counter("fpclose.closed_itemsets").inc(len(results))
            return results

        # Explicit DFS stack of (closed itemset, tidset, core item id).
        # Extensions only use items strictly greater than the core, which is
        # what makes the enumeration duplicate-free.
        stack: list[tuple[Itemset, frozenset[int], int]] = [(root, all_tids, -1)]
        while stack:
            prefix, tids, core = stack.pop()
            branches.inc()
            for item in frequent:
                if item <= core or item in prefix:
                    continue
                extended_tids = tids & tidsets[item]
                if len(extended_tids) < threshold:
                    continue
                closed = _closure_over(
                    prefix | {item}, extended_tids, frequent, tidsets
                )
                closures.inc()
                # Prefix-preserving test: the closure must not add any item
                # smaller than the extension item that was not already in the
                # prefix — otherwise this closed set is reachable (and will
                # be reached) from a lexicographically earlier branch.
                if any(j < item and j not in prefix for j in closed):
                    continue
                if max_len is not None and len(closed) > max_len:
                    continue
                results.append(FrequentItemset(closed, len(extended_tids)))
                if max_len is None or len(closed) < max_len:
                    stack.append((closed, extended_tids, item))
        registry.counter("fpclose.closed_itemsets").inc(len(results))
    return results


def _closure_over(
    itemset: Itemset,
    tids: frozenset[int],
    frequent: list[int],
    tidsets: dict[int, frozenset[int]],
) -> Itemset:
    """Closure of ``itemset`` restricted to frequent items.

    An item belongs to the closure iff its tidset contains every tid of
    the branch. Restricting to frequent items is sound: an infrequent
    item has support below the threshold, so it cannot contain a branch
    tidset of size ≥ threshold.
    """
    size = len(tids)
    closed = set(itemset)
    for item in frequent:
        if item in closed:
            continue
        candidate = tidsets[item]
        if len(candidate) >= size and tids <= candidate:
            closed.add(item)
    return frozenset(closed)
