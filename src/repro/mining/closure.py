"""The Galois closure operator on itemsets.

For an itemset ``X`` over a transaction database, the *closure* of ``X``
is the set of items contained in **every** transaction that contains
``X``. An itemset is *closed* (Definition 3.4.1 of the paper) exactly
when it equals its own closure — equivalently, when no proper superset
has the same support.

Lemma 3.4.2 of the paper rests on this operator: a drug-ADR rule whose
complete itemset is closed is always an explicitly or implicitly
supported association, never a spurious partial one.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.mining.transactions import Itemset, TransactionDatabase


def closure(database: TransactionDatabase, itemset: Iterable[int]) -> Itemset:
    """Return the closure of ``itemset`` in ``database``.

    The closure of an itemset with an empty tidset (one that occurs in no
    transaction) is, by the definition above, the set of *all* items —
    vacuously every transaction containing it contains everything. That
    degenerate case almost always signals a caller bug, so instead we
    return the itemset unchanged, which keeps ``closure`` idempotent and
    side-steps the vacuous explosion.

    The closure of the empty itemset is the set of items present in every
    transaction (usually empty for real report data).
    """
    itemset = frozenset(itemset)
    tids = database.tidset_of(itemset)
    if not tids:
        return itemset
    transactions = iter(sorted(tids))
    first = database[next(transactions)]
    closed = set(first)
    for tid in transactions:
        closed &= database[tid]
        if closed == itemset:
            break
    return frozenset(closed) | itemset


def is_closed(database: TransactionDatabase, itemset: Iterable[int]) -> bool:
    """True when ``itemset`` equals its own closure.

    An itemset that occurs in no transaction is reported as *not* closed:
    it cannot be a supported association of any kind.
    """
    itemset = frozenset(itemset)
    if not database.tidset_of(itemset):
        return False
    return closure(database, itemset) == itemset


def filter_closed(
    database: TransactionDatabase, itemsets: Iterable[Itemset]
) -> list[Itemset]:
    """Keep only the closed itemsets of ``itemsets``.

    A brute-force helper used by tests to cross-check the dedicated
    closed miner; do not use it on large mining output.
    """
    return [items for items in itemsets if is_closed(database, items)]
