"""Transaction database and item catalog.

The mining substrate works on *integer item ids* for speed and memory
locality; the :class:`ItemCatalog` is the bidirectional mapping between
human-readable item labels (drug names, ADR terms) and those ids. The
:class:`TransactionDatabase` stores one :class:`frozenset` of item ids per
transaction and maintains a *vertical* view (item id → set of transaction
ids) that the closed-itemset miner and the closure operator rely on.

Item *kinds* (e.g. ``"drug"`` vs ``"adr"``) are first-class: MeDIAR only
considers rules whose antecedent is drug-only and whose consequent is
ADR-only, and the partitioned rule generator needs to ask the catalog
which side of the fence an item lives on.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError, MiningError, UnknownItemError

Itemset = frozenset[int]
EMPTY_ITEMSET: Itemset = frozenset()


@runtime_checkable
class SupportCounter(Protocol):
    """Anything that can answer absolute itemset-support queries.

    Both :class:`TransactionDatabase` and
    :class:`~repro.mining.bitsets.SupportOracle` satisfy this; the rule
    generators and the MCAC builder accept either, so callers can swap
    the set-based backend for the memoized bitset oracle without code
    changes.
    """

    def __len__(self) -> int: ...

    def support(self, itemset: Iterable[int]) -> int: ...


class ItemCatalog:
    """Bidirectional mapping between item labels and dense integer ids.

    Ids are assigned in first-seen order starting at 0, which makes them
    usable as indices into dense arrays. Each item carries a *kind*
    string; the default kind is ``"item"``.

    Examples
    --------
    >>> catalog = ItemCatalog()
    >>> catalog.add("ASPIRIN", kind="drug")
    0
    >>> catalog.add("HAEMORRHAGE", kind="adr")
    1
    >>> catalog.label(0)
    'ASPIRIN'
    >>> catalog.kind_of(1)
    'adr'
    """

    def __init__(self) -> None:
        self._id_by_label: dict[str, int] = {}
        self._labels: list[str] = []
        self._kinds: list[str] = []

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: object) -> bool:
        return label in self._id_by_label

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def add(self, label: str, kind: str = "item") -> int:
        """Register ``label`` and return its id.

        Re-adding an existing label returns the existing id; a conflicting
        ``kind`` on re-add raises :class:`~repro.errors.MiningError`
        because an item cannot be both a drug and an ADR.
        """
        if not isinstance(label, str) or not label:
            raise ConfigError(f"item label must be a non-empty string, got {label!r}")
        existing = self._id_by_label.get(label)
        if existing is not None:
            if self._kinds[existing] != kind:
                raise MiningError(
                    f"item {label!r} already registered with kind "
                    f"{self._kinds[existing]!r}, cannot re-register as {kind!r}"
                )
            return existing
        item_id = len(self._labels)
        self._id_by_label[label] = item_id
        self._labels.append(label)
        self._kinds.append(kind)
        return item_id

    def rename_label(self, item_id: int, new_label: str) -> None:
        """Re-label an existing item in place, keeping its id and kind.

        The streaming encoder's collision repair
        (:mod:`repro.faers.ingest`) uses this: when a drug label arrives
        that collides with an already-encoded *unsuffixed* ADR label,
        the one-shot encoding — which sees all drugs before encoding any
        row — would have suffixed that ADR from the start. Renaming the
        ADR item restores byte-identity without re-encoding history
        (ids are first-seen-row ordered, and the rename does not change
        which row first contained the item). Renaming *to* an existing
        label raises :class:`~repro.errors.MiningError`: two items may
        never share one label.
        """
        if not isinstance(new_label, str) or not new_label:
            raise ConfigError(
                f"item label must be a non-empty string, got {new_label!r}"
            )
        try:
            old_label = self._labels[item_id]
        except IndexError:
            raise UnknownItemError(item_id) from None
        if new_label == old_label:
            return
        if new_label in self._id_by_label:
            raise MiningError(
                f"cannot rename item {item_id} ({old_label!r}) to "
                f"{new_label!r}: label already registered"
            )
        del self._id_by_label[old_label]
        self._id_by_label[new_label] = item_id
        self._labels[item_id] = new_label

    def id(self, label: str) -> int:
        """Return the id of ``label``, raising :class:`UnknownItemError` if absent."""
        try:
            return self._id_by_label[label]
        except KeyError:
            raise UnknownItemError(label) from None

    def get_id(self, label: str) -> int | None:
        """Return the id of ``label`` or ``None`` if it is not registered."""
        return self._id_by_label.get(label)

    def label(self, item_id: int) -> str:
        """Return the label of ``item_id``."""
        try:
            return self._labels[item_id]
        except IndexError:
            raise UnknownItemError(item_id) from None

    def kind_of(self, item_id: int) -> str:
        """Return the kind string of ``item_id``."""
        try:
            return self._kinds[item_id]
        except IndexError:
            raise UnknownItemError(item_id) from None

    def ids_of_kind(self, kind: str) -> frozenset[int]:
        """Return the ids of every item registered with ``kind``."""
        return frozenset(i for i, k in enumerate(self._kinds) if k == kind)

    def labels(self, itemset: Iterable[int]) -> tuple[str, ...]:
        """Return the labels of ``itemset`` sorted alphabetically.

        Sorting makes the output deterministic, which the renderers and
        report writers depend on.
        """
        return tuple(sorted(self.label(i) for i in itemset))

    def encode(self, labels: Iterable[str]) -> Itemset:
        """Translate an iterable of labels into an itemset of ids."""
        return frozenset(self.id(label) for label in labels)


class MiningCatalog:
    """A label-free catalog stand-in for mining-only databases.

    Mining consults a catalog for exactly one thing — ``len()``, to
    bound valid item ids. Worker processes used to materialise a real
    :class:`ItemCatalog` with formatted placeholder labels per shard per
    task, making setup cost grow with vocabulary size; this stand-in
    carries only the id bound. Labels are synthesised on demand in the
    (diagnostic-only) accessors.
    """

    __slots__ = ("_n_items",)

    def __init__(self, n_items: int) -> None:
        if n_items < 0:
            raise ConfigError(f"n_items must be >= 0, got {n_items}")
        self._n_items = n_items

    def __len__(self) -> int:
        return self._n_items

    def label(self, item_id: int) -> str:
        if not 0 <= item_id < self._n_items:
            raise UnknownItemError(item_id)
        return f"i{item_id}"

    def kind_of(self, item_id: int) -> str:
        if not 0 <= item_id < self._n_items:
            raise UnknownItemError(item_id)
        return "item"


@dataclass(frozen=True, slots=True)
class FrequentItemset:
    """A mined itemset together with its absolute support count.

    ``items`` holds item ids; translate with
    :meth:`ItemCatalog.labels` for display.
    """

    items: Itemset
    support: int

    def __post_init__(self) -> None:
        if self.support < 0:
            raise MiningError(f"support must be non-negative, got {self.support}")

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, item_id: object) -> bool:
        return item_id in self.items


class TransactionDatabase:
    """An immutable collection of transactions over an :class:`ItemCatalog`.

    Each transaction is a :class:`frozenset` of item ids. The database
    also keeps the *vertical* representation — for each item, the set of
    transaction ids (tids) containing it — which gives O(1) single-item
    support and fast tidset intersection for closure computation.

    Build one either from already-encoded itemsets via the constructor or
    from label transactions with :meth:`from_labelled`.
    """

    def __init__(
        self,
        transactions: Iterable[Collection[int]],
        catalog: ItemCatalog,
    ) -> None:
        self._catalog = catalog
        self._transactions: list[Itemset] = [frozenset(t) for t in transactions]
        n_items = len(catalog)
        for tid, transaction in enumerate(self._transactions):
            for item in transaction:
                if not 0 <= item < n_items:
                    raise MiningError(
                        f"transaction {tid} references item id {item} "
                        f"outside catalog of size {n_items}"
                    )
        self._tidsets: dict[int, frozenset[int]] = self._build_vertical()
        # Per-item transaction bitmasks, built lazily on the first
        # multi-item support query: one arbitrary-precision int per
        # item makes support counting a chain of `&` plus a popcount,
        # several times faster than frozenset intersection on the
        # MCAC/contingency hot path.
        self._bitmasks: dict[int, int] | None = None

    @classmethod
    def from_labelled(
        cls,
        labelled_transactions: Iterable[Iterable[str]],
        *,
        kinds: Mapping[str, str] | None = None,
        catalog: ItemCatalog | None = None,
    ) -> "TransactionDatabase":
        """Build a database from transactions of string labels.

        Parameters
        ----------
        labelled_transactions:
            Iterable of iterables of item labels.
        kinds:
            Optional mapping from label to kind; labels absent from the
            mapping get kind ``"item"``.
        catalog:
            Reuse an existing catalog (labels are added to it) instead of
            creating a fresh one.
        """
        catalog = catalog if catalog is not None else ItemCatalog()
        kinds = kinds or {}
        encoded: list[set[int]] = []
        for transaction in labelled_transactions:
            row = {
                catalog.add(label, kinds.get(label, "item")) for label in transaction
            }
            encoded.append(row)
        return cls(encoded, catalog)

    @property
    def catalog(self) -> ItemCatalog:
        return self._catalog

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._transactions)

    def __getitem__(self, tid: int) -> Itemset:
        return self._transactions[tid]

    def _build_vertical(self) -> dict[int, frozenset[int]]:
        vertical: dict[int, set[int]] = {}
        for tid, transaction in enumerate(self._transactions):
            for item in transaction:
                vertical.setdefault(item, set()).add(tid)
        return {item: frozenset(tids) for item, tids in vertical.items()}

    def tidset(self, item_id: int) -> frozenset[int]:
        """Return the set of transaction ids containing ``item_id``."""
        return self._tidsets.get(item_id, frozenset())

    def tidset_of(self, itemset: Iterable[int]) -> frozenset[int]:
        """Return the tids of transactions containing *every* item.

        The tidset of the empty itemset is all transactions. Items are
        intersected smallest-tidset-first so the running intersection
        shrinks as quickly as possible.
        """
        items = sorted(itemset, key=lambda i: len(self.tidset(i)))
        if not items:
            return frozenset(range(len(self._transactions)))
        result = self.tidset(items[0])
        for item in items[1:]:
            if not result:
                break
            result = result & self.tidset(item)
        return result

    def item_masks(self) -> dict[int, int]:
        """Per-item transaction bitmasks (bit ``t`` set iff tid ``t`` has the item).

        Built lazily on first use and cached for the lifetime of the
        database; :class:`~repro.mining.bitsets.BitsetIndex` shares this
        exact dict rather than rebuilding it, so the whole mining and
        measurement path works off one mask table. Callers must treat
        the returned dict as read-only.
        """
        if self._bitmasks is None:
            masks: dict[int, int] = {}
            for tid, transaction in enumerate(self._transactions):
                bit = 1 << tid
                for item in transaction:
                    masks[item] = masks.get(item, 0) | bit
            self._bitmasks = masks
        return self._bitmasks

    def support(self, itemset: Iterable[int]) -> int:
        """Absolute support (number of containing transactions) of an itemset."""
        itemset = frozenset(itemset)
        if not itemset:
            return len(self._transactions)
        if len(itemset) == 1:
            return len(self.tidset(next(iter(itemset))))
        masks = self.item_masks()
        result = -1  # all-ones; first AND clips it to the first mask
        for item in itemset:
            result &= masks.get(item, 0)
            if not result:
                return 0
        return result.bit_count()

    def item_supports(self) -> dict[int, int]:
        """Return absolute support of every item that occurs at least once."""
        return {item: len(tids) for item, tids in self._tidsets.items()}

    def items_present(self) -> frozenset[int]:
        """Ids of items that occur in at least one transaction."""
        return frozenset(self._tidsets)

    def transactions_with(self, itemset: Iterable[int]) -> list[Itemset]:
        """Return the transactions that contain every item of ``itemset``."""
        return [self._transactions[tid] for tid in sorted(self.tidset_of(itemset))]

    def restrict_to_items(self, keep: Collection[int]) -> "TransactionDatabase":
        """Project the database onto ``keep``, dropping emptied transactions.

        The catalog is shared with the original database so item ids stay
        stable across the projection.
        """
        keep_set = frozenset(keep)
        projected = [t & keep_set for t in self._transactions]
        return TransactionDatabase(
            [t for t in projected if t],
            self._catalog,
        )

    def describe(self) -> "DatabaseStats":
        """Summary statistics (used by the Table 5.1 reproduction)."""
        lengths = [len(t) for t in self._transactions]
        return DatabaseStats(
            n_transactions=len(self._transactions),
            n_distinct_items=len(self._tidsets),
            total_item_occurrences=sum(lengths),
            max_transaction_length=max(lengths, default=0),
            mean_transaction_length=(
                sum(lengths) / len(lengths) if lengths else 0.0
            ),
        )


class GrowableTransactionDatabase(TransactionDatabase):
    """A :class:`TransactionDatabase` whose rows can be appended and edited.

    The incremental surveillance engine (:mod:`repro.incremental`) keeps
    one of these alive across batches: new reports append rows (new bits
    at the top of every touched item mask), and a follow-up case version
    rewrites exactly one row — clearing the removed items' bits and
    setting the added items' bits in place. The vertical tidsets and the
    bitmask table are maintained eagerly so :meth:`item_masks` stays the
    single shared table that :class:`~repro.mining.bitsets.BitsetIndex`
    wraps; a fresh index over this database after a mutation sees the
    updated masks with no rebuild.

    The mutating methods return enough information (the row's bit, the
    added/removed item ids) for the caller to accumulate a touched-rows
    mask and a delta item universe for delta-aware re-mining.
    """

    def __init__(
        self,
        transactions: Iterable[Collection[int]],
        catalog: ItemCatalog,
    ) -> None:
        super().__init__(transactions, catalog)
        # The parent's vertical view is frozen; swap in mutable sets so
        # row edits are O(row length), not O(database).
        self._tidsets = {item: set(tids) for item, tids in self._tidsets.items()}
        self.item_masks()  # force the mask table into existence

    def append_row(self, items: Collection[int]) -> int:
        """Append a transaction and return its tid (bit position)."""
        row = frozenset(items)
        n_items = len(self._catalog)
        for item in row:
            if not 0 <= item < n_items:
                raise MiningError(
                    f"appended row references item id {item} "
                    f"outside catalog of size {n_items}"
                )
        tid = len(self._transactions)
        bit = 1 << tid
        self._transactions.append(row)
        masks = self._bitmasks
        assert masks is not None  # built eagerly in __init__
        for item in row:
            masks[item] = masks.get(item, 0) | bit
            self._tidsets.setdefault(item, set()).add(tid)
        return tid

    def update_row(self, tid: int, items: Collection[int]) -> tuple[Itemset, Itemset]:
        """Rewrite row ``tid`` in place; return ``(added, removed)`` item ids.

        Removed items have their bit cleared from the mask table (the
        bit-invalidation path a follow-up case version exercises); items
        whose tidset empties are dropped from the vertical view so
        :meth:`item_supports` never reports support 0.
        """
        if not 0 <= tid < len(self._transactions):
            raise MiningError(f"update_row: tid {tid} out of range")
        new_row = frozenset(items)
        n_items = len(self._catalog)
        for item in new_row:
            if not 0 <= item < n_items:
                raise MiningError(
                    f"updated row references item id {item} "
                    f"outside catalog of size {n_items}"
                )
        old_row = self._transactions[tid]
        added = new_row - old_row
        removed = old_row - new_row
        self._transactions[tid] = new_row
        bit = 1 << tid
        masks = self._bitmasks
        assert masks is not None
        for item in added:
            masks[item] = masks.get(item, 0) | bit
            self._tidsets.setdefault(item, set()).add(tid)
        for item in removed:
            remaining = masks[item] & ~bit
            if remaining:
                masks[item] = remaining
            else:
                del masks[item]
            tids = self._tidsets[item]
            tids.discard(tid)
            if not tids:
                del self._tidsets[item]
        return added, removed


@dataclass(frozen=True, slots=True)
class DatabaseStats:
    """Aggregate shape of a transaction database."""

    n_transactions: int
    n_distinct_items: int
    total_item_occurrences: int
    max_transaction_length: int
    mean_transaction_length: float


def resolve_min_support(
    min_support: int | float, n_transactions: int
) -> int:
    """Normalize a support threshold to an absolute count.

    An ``int`` is taken as an absolute count; a ``float`` in ``(0, 1]`` is
    taken as a fraction of the database. Zero or negative thresholds are
    rejected: the paper's pipeline always mines with support ≥ 1 (a rule
    must be witnessed by at least one report).
    """
    if isinstance(min_support, bool):  # bool is an int subclass; refuse it
        raise ConfigError("min_support must be an int or float, not bool")
    if isinstance(min_support, int):
        if min_support < 1:
            raise ConfigError(f"absolute min_support must be >= 1, got {min_support}")
        return min_support
    if isinstance(min_support, float):
        if not 0.0 < min_support <= 1.0:
            raise ConfigError(
                f"fractional min_support must be in (0, 1], got {min_support}"
            )
        # Ceiling so that a fraction never rounds down to support 0.
        return max(1, -int(-min_support * n_transactions // 1))
    raise ConfigError(f"min_support must be int or float, got {type(min_support)!r}")


def canonical_itemset_order(
    itemsets: Iterable[FrequentItemset],
) -> list[FrequentItemset]:
    """Sort itemsets by their sorted item-id tuple.

    Mining backends enumerate closed itemsets in search-tree order,
    which differs between the single-process and sharded miners (and
    between the bitset and reference miners). Every pipeline path
    canonicalizes through this order before rule generation so the
    downstream rule → association → cluster → export chain is
    byte-identical regardless of backend.
    """
    return sorted(itemsets, key=lambda fi: tuple(sorted(fi.items)))


def sort_itemset_labels(
    itemsets: Sequence[FrequentItemset], catalog: ItemCatalog
) -> list[tuple[tuple[str, ...], int]]:
    """Render mined itemsets as (sorted labels, support), deterministically ordered.

    Primarily a convenience for tests and report writers: the output is
    sorted by descending support, then ascending labels.
    """
    rendered = [(catalog.labels(fi.items), fi.support) for fi in itemsets]
    rendered.sort(key=lambda pair: (-pair[1], pair[0]))
    return rendered
