"""Interestingness measures for itemsets and association rules.

Implements the classical measures of §2.1 of the paper — support
(Eq. 2.1), confidence (Eq. 2.2) and lift (Eq. 2.3) — plus the standard
companions (leverage, conviction, Jaccard) that the ablation benchmarks
use. All functions take *absolute counts* so they are exact and free of
premature floating-point division:

- ``n_joint``      — |A ∪ B|, transactions containing every item of the rule
- ``n_antecedent`` — |A|, transactions containing the antecedent
- ``n_consequent`` — |B|, transactions containing the consequent
- ``n_total``      — N, the database size

The :class:`RuleMetrics` dataclass bundles everything computed for one
rule; it is what the rule generator attaches to each
:class:`~repro.mining.rules.AssociationRule`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


def _validate_counts(
    n_joint: int, n_antecedent: int, n_consequent: int, n_total: int
) -> None:
    if n_total <= 0:
        raise ConfigError(f"n_total must be positive, got {n_total}")
    if not 0 <= n_joint <= min(n_antecedent, n_consequent):
        raise ConfigError(
            f"inconsistent counts: joint={n_joint}, antecedent={n_antecedent}, "
            f"consequent={n_consequent}"
        )
    if n_antecedent > n_total or n_consequent > n_total:
        raise ConfigError(
            f"marginal count exceeds n_total={n_total}: "
            f"antecedent={n_antecedent}, consequent={n_consequent}"
        )


def support_fraction(n_joint: int, n_total: int) -> float:
    """Relative support P(A ∪ B) (Eq. 2.1, normalized by N)."""
    if n_total <= 0:
        raise ConfigError(f"n_total must be positive, got {n_total}")
    if n_joint < 0 or n_joint > n_total:
        raise ConfigError(f"n_joint={n_joint} out of range for n_total={n_total}")
    return n_joint / n_total


def confidence(n_joint: int, n_antecedent: int) -> float:
    """Confidence P(B | A) (Eq. 2.2).

    A rule with an unobserved antecedent has undefined confidence; this
    is treated as 0.0 so that unsupported context slots never dominate an
    exclusiveness computation.
    """
    if n_antecedent < 0 or n_joint < 0 or n_joint > n_antecedent:
        raise ConfigError(
            f"inconsistent counts: joint={n_joint}, antecedent={n_antecedent}"
        )
    if n_antecedent == 0:
        return 0.0
    return n_joint / n_antecedent


def lift(n_joint: int, n_antecedent: int, n_consequent: int, n_total: int) -> float:
    """Lift P(B|A)/P(B) (Eq. 2.3).

    Returns 0.0 when either marginal is unobserved.
    """
    _validate_counts(n_joint, n_antecedent, n_consequent, n_total)
    if n_antecedent == 0 or n_consequent == 0:
        return 0.0
    return (n_joint * n_total) / (n_antecedent * n_consequent)


def leverage(
    n_joint: int, n_antecedent: int, n_consequent: int, n_total: int
) -> float:
    """Leverage P(A∪B) − P(A)P(B): additive deviation from independence."""
    _validate_counts(n_joint, n_antecedent, n_consequent, n_total)
    return n_joint / n_total - (n_antecedent / n_total) * (n_consequent / n_total)


def conviction(
    n_joint: int, n_antecedent: int, n_consequent: int, n_total: int
) -> float:
    """Conviction P(A)P(¬B)/P(A ∪ ¬B).

    ``math.inf`` for a rule that never fails (confidence 1 with an
    observed antecedent); 0.0 for an unobserved antecedent.
    """
    _validate_counts(n_joint, n_antecedent, n_consequent, n_total)
    if n_antecedent == 0:
        return 0.0
    conf = n_joint / n_antecedent
    p_consequent = n_consequent / n_total
    if conf >= 1.0:
        return math.inf
    return (1.0 - p_consequent) / (1.0 - conf)


def jaccard(n_joint: int, n_antecedent: int, n_consequent: int) -> float:
    """Jaccard coefficient |A∩B| / |A∪B| over the tidsets of A and B."""
    if min(n_joint, n_antecedent, n_consequent) < 0:
        raise ConfigError("counts must be non-negative")
    union = n_antecedent + n_consequent - n_joint
    if union <= 0:
        return 0.0
    return n_joint / union


def coefficient_of_variation(values: list[float] | tuple[float, ...]) -> float:
    """Population coefficient of variation σ/μ, clamped to [0, 1].

    Eq. 3.4 of the paper multiplies the exclusiveness score by
    ``(1 − θ·Cv)``; for that product to stay a *penalty* (never flip the
    score's sign on its own) the Cv term is clamped into [0, 1]. An empty
    input or a zero mean yields 0.0 — no spread information, no penalty.
    """
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0.0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    cv = math.sqrt(variance) / abs(mean)
    return min(cv, 1.0)


@dataclass(frozen=True, slots=True)
class RuleMetrics:
    """All interestingness measures of one rule, computed from counts."""

    n_joint: int
    n_antecedent: int
    n_consequent: int
    n_total: int
    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float
    jaccard: float

    @classmethod
    def from_counts(
        cls,
        n_joint: int,
        n_antecedent: int,
        n_consequent: int,
        n_total: int,
    ) -> "RuleMetrics":
        """Compute every measure once from the four underlying counts."""
        _validate_counts(n_joint, n_antecedent, n_consequent, n_total)
        return cls(
            n_joint=n_joint,
            n_antecedent=n_antecedent,
            n_consequent=n_consequent,
            n_total=n_total,
            support=support_fraction(n_joint, n_total),
            confidence=confidence(n_joint, n_antecedent),
            lift=lift(n_joint, n_antecedent, n_consequent, n_total),
            leverage=leverage(n_joint, n_antecedent, n_consequent, n_total),
            conviction=conviction(n_joint, n_antecedent, n_consequent, n_total),
            jaccard=jaccard(n_joint, n_antecedent, n_consequent),
        )

    def value(self, measure: str) -> float:
        """Look up a measure by name (``"confidence"``, ``"lift"``, ...).

        The exclusiveness scorer is parameterized by measure name, per the
        paper's remark that "confidence ... could be replaced by other
        reasonable measures".
        """
        try:
            result = getattr(self, measure)
        except AttributeError:
            raise ConfigError(f"unknown measure {measure!r}") from None
        if not isinstance(result, (int, float)):
            raise ConfigError(f"{measure!r} is not a numeric measure")
        return float(result)
