"""FP-tree: the prefix-tree structure behind FP-Growth.

An FP-tree compresses a transaction database by merging shared prefixes
of transactions whose items are sorted in a fixed, frequency-descending
order. Each distinct item keeps a *header list* of the nodes labelled
with it, which lets the miner walk every occurrence of an item without
touching the rest of the tree.

This implementation follows Han, Pei & Yin (SIGMOD 2000). It is shared
by :mod:`repro.mining.fpgrowth` (all frequent itemsets) and
:mod:`repro.mining.fpclose` (closed frequent itemsets).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from repro.errors import MiningError


class FPNode:
    """One node of an FP-tree.

    Attributes
    ----------
    item:
        Item id, or ``None`` for the root.
    count:
        Number of transactions whose sorted prefix passes through this node.
    parent:
        Parent node (``None`` for the root).
    children:
        Child nodes keyed by item id.
    """

    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: Optional[int], parent: Optional["FPNode"]) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, FPNode] = {}

    def path_to_root(self) -> list[int]:
        """Items on the path from this node's parent up to (not including) the root."""
        path: list[int] = []
        node = self.parent
        while node is not None and node.item is not None:
            path.append(node.item)
            node = node.parent
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FPNode(item={self.item}, count={self.count})"


class FPTree:
    """An FP-tree with per-item header lists.

    Parameters
    ----------
    item_order:
        Mapping from item id to its rank in the global
        frequency-descending order. Transactions are sorted by this rank
        before insertion so shared prefixes merge maximally. All trees in
        one mining run (the initial tree and every conditional tree) must
        share the same order.
    """

    def __init__(self, item_order: dict[int, int]) -> None:
        self.root = FPNode(None, None)
        self.item_order = item_order
        self.headers: dict[int, list[FPNode]] = {}
        self._item_counts: dict[int, int] = {}

    @classmethod
    def from_transactions(
        cls,
        transactions: Iterable[Iterable[int]],
        frequent_items: dict[int, int],
    ) -> "FPTree":
        """Build a tree from transactions, keeping only ``frequent_items``.

        ``frequent_items`` maps each frequent item to its global support;
        ties in support are broken by item id so the order is total and
        deterministic.
        """
        order = rank_items(frequent_items)
        tree = cls(order)
        keep = frozenset(frequent_items)
        for transaction in transactions:
            filtered = [item for item in transaction if item in keep]
            tree.insert(filtered, count=1)
        return tree

    def insert(self, items: Iterable[int], count: int) -> None:
        """Insert one (possibly weighted) transaction.

        Items are sorted into the tree's canonical order here, so callers
        may pass them in any order.
        """
        if count <= 0:
            raise MiningError(f"insert count must be positive, got {count}")
        try:
            ordered = sorted(set(items), key=lambda i: self.item_order[i])
        except KeyError as exc:
            raise MiningError(
                f"item {exc.args[0]} not in the tree's item order"
            ) from None
        node = self.root
        for item in ordered:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                self.headers.setdefault(item, []).append(child)
            child.count += count
            node = child
        for item in ordered:
            self._item_counts[item] = self._item_counts.get(item, 0) + count

    def item_support(self, item: int) -> int:
        """Total count of ``item`` across all its nodes."""
        return self._item_counts.get(item, 0)

    def items_by_ascending_frequency(self) -> list[int]:
        """Items in the tree, least-frequent first (FP-Growth's suffix order)."""
        return sorted(
            self._item_counts,
            key=lambda i: (self._item_counts[i], -self.item_order[i]),
        )

    def is_empty(self) -> bool:
        return not self.root.children

    def node_count(self) -> int:
        """Number of nodes in the tree, excluding the root.

        Every non-root node appears in exactly one header list, so this
        is an O(#distinct items) sum — cheap enough for the miners'
        observability counters to call per tree.
        """
        return sum(len(nodes) for nodes in self.headers.values())

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of ``item``.

        Returns ``(path items, count)`` pairs where each path is the set
        of items between one occurrence of ``item`` and the root, and the
        count is that occurrence's count.
        """
        paths: list[tuple[list[int], int]] = []
        for node in self.headers.get(item, ()):
            path = node.path_to_root()
            if path:
                paths.append((path, node.count))
        return paths

    def conditional_tree(self, item: int, min_support: int) -> "FPTree":
        """Build the conditional FP-tree for ``item``.

        Counts items in the conditional pattern base, drops those below
        ``min_support``, and inserts the filtered weighted paths into a
        fresh tree that reuses this tree's item order.
        """
        paths = self.prefix_paths(item)
        counts: dict[int, int] = {}
        for path, count in paths:
            for path_item in path:
                counts[path_item] = counts.get(path_item, 0) + count
        keep = {i for i, c in counts.items() if c >= min_support}
        subtree = FPTree(self.item_order)
        for path, count in paths:
            filtered = [i for i in path if i in keep]
            if filtered:
                subtree.insert(filtered, count)
        return subtree

    def single_path(self) -> Optional[list[tuple[int, int]]]:
        """If the tree is a single chain, return its ``(item, count)`` list.

        FP-Growth enumerates the subsets of a single-path tree directly
        instead of recursing; returns ``None`` when the tree branches.
        """
        path: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (child,) = node.children.values()
            path.append((child.item, child.count))  # type: ignore[arg-type]
            node = child
        return path


def rank_items(supports: dict[int, int]) -> dict[int, int]:
    """Rank items by descending support, breaking ties by ascending id."""
    ordered = sorted(supports, key=lambda i: (-supports[i], i))
    return {item: rank for rank, item in enumerate(ordered)}
