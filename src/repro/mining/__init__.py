"""Itemset-mining substrate.

This package is a from-scratch implementation of the frequent-itemset and
association-rule machinery that MeDIAR/MARAS is built on:

- :mod:`repro.mining.transactions` — integer-encoded transaction database
  plus the item catalog that maps labels to item ids.
- :mod:`repro.mining.measures` — interestingness measures (support,
  confidence, lift, leverage, conviction, ...).
- :mod:`repro.mining.fptree` — the FP-tree data structure.
- :mod:`repro.mining.fpgrowth` — FP-Growth frequent itemset mining.
- :mod:`repro.mining.fpclose` — closed frequent itemset mining.
- :mod:`repro.mining.apriori` — level-wise Apriori baseline, used both as
  a comparison point and as a correctness oracle in the test suite.
- :mod:`repro.mining.closure` — the Galois closure operator and
  closedness checks used by Lemma 3.4.2 of the paper.
- :mod:`repro.mining.rules` — association-rule generation, including the
  partitioned drug→ADR generation used by the core system.
"""

from repro.mining.apriori import apriori
from repro.mining.bitsets import BitsetIndex, SupportOracle
from repro.mining.closure import closure, is_closed
from repro.mining.fpgrowth import fpgrowth
from repro.mining.fpclose import fpclose, fpclose_reference
from repro.mining.generators import (
    minimal_generators,
    minimal_generators_of,
    non_redundant_rules,
    redundancy_ratio,
)
from repro.mining.maximal import lattice_summary, maximal_itemsets
from repro.mining.measures import (
    RuleMetrics,
    confidence,
    conviction,
    jaccard,
    leverage,
    lift,
    support_fraction,
)
from repro.mining.rules import AssociationRule, generate_rules, partitioned_rules
from repro.mining.transactions import (
    FrequentItemset,
    ItemCatalog,
    SupportCounter,
    TransactionDatabase,
)

__all__ = [
    "AssociationRule",
    "BitsetIndex",
    "FrequentItemset",
    "ItemCatalog",
    "RuleMetrics",
    "SupportCounter",
    "SupportOracle",
    "TransactionDatabase",
    "apriori",
    "closure",
    "confidence",
    "conviction",
    "fpclose",
    "fpclose_reference",
    "fpgrowth",
    "generate_rules",
    "is_closed",
    "jaccard",
    "lattice_summary",
    "leverage",
    "lift",
    "maximal_itemsets",
    "minimal_generators",
    "minimal_generators_of",
    "non_redundant_rules",
    "partitioned_rules",
    "redundancy_ratio",
    "support_fraction",
]
