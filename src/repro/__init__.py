"""MeDIAR/MARAS: multi-drug adverse reaction analytics.

A from-scratch reproduction of the MeDIAR system (ICDE 2018 demo; MARAS
thesis, WPI 2016): mining non-spurious drug→ADR association rules from
spontaneous-report data via closed itemsets, clustering each multi-drug
rule with its contextual sub-rules (MCAC), ranking clusters with the
exclusiveness measure, and rendering them as contextual glyphs.

Quick start::

    from repro import Maras, MarasConfig, RankingMethod
    from repro.faers import SyntheticConfig, SyntheticFAERSGenerator

    reports = SyntheticFAERSGenerator(SyntheticConfig(n_reports=2000)).generate()
    result = Maras(MarasConfig(min_support=5, clean=False)).run(reports)
    for entry in result.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=5):
        print(entry.describe(result.catalog))

Subpackages: :mod:`repro.mining` (itemset substrate),
:mod:`repro.faers` (data substrate), :mod:`repro.core` (the paper's
contribution), :mod:`repro.signals` (baselines), :mod:`repro.knowledge`
(DDI reference), :mod:`repro.viz` (SVG glyphs), :mod:`repro.userstudy`
(simulated study).
"""

from repro.core import (
    MCAC,
    ExclusivenessConfig,
    Maras,
    MarasConfig,
    MarasResult,
    RankingMethod,
    exclusiveness,
    improvement,
)
from repro.errors import (
    ConfigError,
    MiningError,
    ParseError,
    ReproError,
    ValidationError,
)
from repro.faers import (
    CaseReport,
    ReportCleaner,
    ReportDataset,
    SyntheticConfig,
    SyntheticFAERSGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "CaseReport",
    "ConfigError",
    "ExclusivenessConfig",
    "MCAC",
    "Maras",
    "MarasConfig",
    "MarasResult",
    "MiningError",
    "ParseError",
    "RankingMethod",
    "ReportCleaner",
    "ReportDataset",
    "ReproError",
    "SyntheticConfig",
    "SyntheticFAERSGenerator",
    "ValidationError",
    "__version__",
    "exclusiveness",
    "improvement",
]
