"""Stratified disproportionality: Mantel-Haenszel pooling.

Crude 2×2 disproportionality is confounded by anything that drives both
prescription and reaction — age most of all (elderly patients take more
drugs *and* report more events). The classical fix, used by the
signal-detection systems the paper compares against (Tatonetti et al.
adjust for covariates; FDA's MGPS stratifies by age/sex/year), is to
build one contingency table per stratum and pool with the
Mantel-Haenszel estimator.

:func:`stratify_reports` splits case reports into age/sex strata;
:func:`mantel_haenszel_ror` pools per-stratum reporting odds ratios.
A crude-vs-adjusted divergence is itself a signal that the association
is confounded, exposed via :func:`confounding_ratio`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faers.schema import CaseReport
from repro.signals.contingency import ContingencyTable

# Default age bands, in years: pediatric, adult, middle, senior, elderly.
DEFAULT_AGE_BANDS = (18.0, 45.0, 65.0, 80.0)


def age_band(age: float | None, bands: Sequence[float] = DEFAULT_AGE_BANDS) -> str:
    """Label of the age band containing ``age`` (``"unknown"`` for None)."""
    if age is None:
        return "unknown"
    if age < 0:
        raise ConfigError(f"age must be non-negative, got {age}")
    previous = 0.0
    for upper in bands:
        if age < upper:
            return f"[{previous:g},{upper:g})"
        previous = upper
    return f"[{previous:g},inf)"


def stratum_of(
    report: CaseReport, *, by_age: bool = True, by_sex: bool = True
) -> tuple[str, ...]:
    """The stratum key of one report."""
    key: list[str] = []
    if by_age:
        key.append(age_band(report.age))
    if by_sex:
        key.append(report.sex or "unknown")
    return tuple(key)


def stratify_reports(
    reports: Iterable[CaseReport],
    exposure: frozenset[str],
    outcome: frozenset[str],
    *,
    by_age: bool = True,
    by_sex: bool = True,
) -> dict[tuple[str, ...], ContingencyTable]:
    """One contingency table per stratum for a drug-set/ADR-set pair.

    ``exposure`` and ``outcome`` are canonical label sets; a report is
    exposed when it mentions every exposure drug, an outcome case when
    it mentions every outcome term.
    """
    if not exposure or not outcome:
        raise ConfigError("exposure and outcome must be non-empty")
    cells: dict[tuple[str, ...], list[int]] = {}
    for report in reports:
        key = stratum_of(report, by_age=by_age, by_sex=by_sex)
        bucket = cells.setdefault(key, [0, 0, 0, 0])
        exposed = exposure <= set(report.drugs)
        with_outcome = outcome <= set(report.adrs)
        index = (0 if with_outcome else 1) if exposed else (2 if with_outcome else 3)
        bucket[index] += 1
    return {
        key: ContingencyTable(a, b, c, d)
        for key, (a, b, c, d) in sorted(cells.items())
    }


def mantel_haenszel_ror(
    tables: Mapping[tuple[str, ...], ContingencyTable] | Sequence[ContingencyTable],
) -> float:
    """Mantel-Haenszel pooled odds ratio across strata.

    OR_MH = Σ(aᵢdᵢ/nᵢ) / Σ(bᵢcᵢ/nᵢ). Strata with an empty margin
    contribute nothing (their terms are zero anyway). Returns 0.0 when
    no stratum carries information, ``inf`` when only the numerator
    does.
    """
    if isinstance(tables, Mapping):
        tables = list(tables.values())
    if not tables:
        raise ConfigError("need at least one stratum table")
    numerator = 0.0
    denominator = 0.0
    for table in tables:
        if table.n == 0:
            continue
        numerator += table.a * table.d / table.n
        denominator += table.b * table.c / table.n
    if numerator == 0.0 and denominator == 0.0:
        return 0.0
    if denominator == 0.0:
        return math.inf
    return numerator / denominator


def crude_ror(tables: Mapping[tuple[str, ...], ContingencyTable]) -> float:
    """The unstratified (collapsed) reporting odds ratio."""
    a = sum(t.a for t in tables.values())
    b = sum(t.b for t in tables.values())
    c = sum(t.c for t in tables.values())
    d = sum(t.d for t in tables.values())
    collapsed = ContingencyTable(a, b, c, d)
    if collapsed.n_exposed == 0 or collapsed.n_outcome == 0:
        return 0.0
    if collapsed.has_zero_cell:
        collapsed = collapsed.haldane_corrected()
    return (collapsed.a * collapsed.d) / (collapsed.b * collapsed.c)


@dataclass(frozen=True, slots=True)
class StratifiedSignal:
    """Crude vs adjusted view of one association."""

    crude: float
    adjusted: float
    n_strata: int

    @property
    def confounding_ratio(self) -> float:
        """crude / adjusted — far from 1 means the crude signal is confounded."""
        if self.adjusted == 0.0:
            return math.inf if self.crude > 0 else 1.0
        if math.isinf(self.adjusted):
            return 0.0
        return self.crude / self.adjusted

    @property
    def is_confounded(self) -> bool:
        """Conventional 20 % change-in-estimate criterion."""
        ratio = self.confounding_ratio
        return ratio > 1.2 or ratio < 1 / 1.2


def stratified_signal(
    reports: Sequence[CaseReport],
    exposure: frozenset[str],
    outcome: frozenset[str],
    *,
    by_age: bool = True,
    by_sex: bool = True,
) -> StratifiedSignal:
    """Crude and Mantel-Haenszel-adjusted ROR for one association."""
    tables = stratify_reports(
        reports, exposure, outcome, by_age=by_age, by_sex=by_sex
    )
    return StratifiedSignal(
        crude=crude_ror(tables),
        adjusted=mantel_haenszel_ror(tables),
        n_strata=len(tables),
    )
