"""Multi-drug interaction baselines from the related work.

Two comparison points for the exclusiveness measure:

- :func:`harpaz_multi_item_signals` — Harpaz, Chase & Friedman (2010):
  mine drug-combination ⇒ ADR itemsets at low support and keep those
  whose relative reporting ratio clears a threshold. This is the method
  §6 credits with the initial evidence that rule mining finds multi-drug
  ADR associations, and the one the paper criticizes for lacking context
  filtering.
- :func:`omega_shrinkage` — an Ω-shrinkage-style pairwise interaction
  contrast in the spirit of Norén et al. (2008): the observed joint-
  exposure outcome count against the count expected if the two drugs
  acted as independent risks, on a log2 scale with additive smoothing.
  Positive Ω means the pair produces the outcome more often than the
  no-interaction model allows.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.mining.fpgrowth import fpgrowth
from repro.mining.rules import AssociationRule, partitioned_rules
from repro.mining.transactions import Itemset, TransactionDatabase
from repro.signals.contingency import contingency_for
from repro.signals.disproportionality import relative_reporting_ratio


@dataclass(frozen=True, slots=True)
class InteractionSignal:
    """One baseline-detected multi-drug signal."""

    rule: AssociationRule
    score: float

    def describe(self, catalog) -> str:
        return f"score={self.score:.3f}  {self.rule.describe(catalog)}"


def harpaz_multi_item_signals(
    database: TransactionDatabase,
    *,
    min_support: int | float = 5,
    min_rrr: float = 2.0,
    max_itemset_len: int | None = 8,
    antecedent_kind: str = "drug",
    consequent_kind: str = "adr",
) -> list[InteractionSignal]:
    """Multi-item drug→ADR signals filtered by relative reporting ratio.

    Mines *all* frequent itemsets (no closedness filter — faithful to
    the baseline being reproduced), forms the drug→ADR rules, keeps
    multi-drug rules whose RRR ≥ ``min_rrr``, and returns them sorted by
    descending RRR (ties: higher support first).
    """
    if min_rrr <= 0:
        raise ConfigError(f"min_rrr must be positive, got {min_rrr}")
    itemsets = fpgrowth(database, min_support, max_len=max_itemset_len)
    rules = partitioned_rules(
        itemsets,
        database,
        antecedent_kind=antecedent_kind,
        consequent_kind=consequent_kind,
    )
    signals: list[InteractionSignal] = []
    for rule in rules:
        if len(rule.antecedent) < 2:
            continue
        table = contingency_for(database, rule.antecedent, rule.consequent)
        rrr = relative_reporting_ratio(table)
        if rrr >= min_rrr:
            signals.append(InteractionSignal(rule=rule, score=rrr))
    signals.sort(
        key=lambda s: (
            -s.score,
            -s.rule.metrics.n_joint,
            sorted(s.rule.antecedent),
            sorted(s.rule.consequent),
        )
    )
    return signals


def omega_shrinkage(
    database: TransactionDatabase,
    drug_a: int,
    drug_b: int,
    outcome: Itemset,
    *,
    alpha: float = 0.5,
) -> float:
    """Pairwise interaction contrast Ω for (drug_a, drug_b) → outcome.

    Let ``f10``/``f01`` be the outcome rates under exposure to exactly
    one of the drugs, and ``n11``/``o11`` the joint-exposure report and
    outcome counts. Under independent risks the expected joint-exposure
    outcome rate is ``1 − (1 − f10)(1 − f01)``, so

    .. math:: \\Omega = \\log_2 \\frac{o_{11} + \\alpha}{n_{11} \\cdot \\hat f + \\alpha}

    Returns 0.0 when the pair never co-occurs (no evidence either way).
    """
    if alpha <= 0:
        raise ConfigError(f"alpha must be positive, got {alpha}")
    outcome = frozenset(outcome)
    if not outcome:
        raise ConfigError("outcome must be non-empty")
    if {drug_a, drug_b} & outcome or drug_a == drug_b:
        raise ConfigError("drugs must be two distinct items outside the outcome")

    tids_a = database.tidset(drug_a)
    tids_b = database.tidset(drug_b)
    tids_outcome = database.tidset_of(outcome)

    both = tids_a & tids_b
    only_a = tids_a - tids_b
    only_b = tids_b - tids_a
    if not both:
        return 0.0

    f10 = len(only_a & tids_outcome) / len(only_a) if only_a else 0.0
    f01 = len(only_b & tids_outcome) / len(only_b) if only_b else 0.0
    expected_rate = 1.0 - (1.0 - f10) * (1.0 - f01)
    observed = len(both & tids_outcome)
    expected = len(both) * expected_rate
    return math.log2((observed + alpha) / (expected + alpha))


def rank_pairs_by_omega(
    database: TransactionDatabase,
    pairs: Sequence[tuple[int, int, Itemset]],
    *,
    alpha: float = 0.5,
) -> list[tuple[tuple[int, int, Itemset], float]]:
    """Score and sort (drug, drug, outcome) candidates by descending Ω."""
    scored = [
        ((a, b, outcome), omega_shrinkage(database, a, b, outcome, alpha=alpha))
        for a, b, outcome in pairs
    ]
    scored.sort(key=lambda pair: -pair[1])
    return scored
