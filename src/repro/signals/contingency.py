"""2×2 contingency tables over a report database.

Disproportionality statistics all start from the same table, built for
an exposure itemset ``E`` (one drug or a drug combination) and an
outcome itemset ``O`` (one ADR or an ADR set):

======================  ==============  ==============
..                       outcome          no outcome
exposure                 a                b
no exposure              c                d
======================  ==============  ==============

with ``a + b + c + d = N`` (total reports).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.mining.transactions import TransactionDatabase


@dataclass(frozen=True, slots=True)
class ContingencyTable:
    """Cell counts of one exposure/outcome 2×2 table."""

    a: int  # exposed, outcome
    b: int  # exposed, no outcome
    c: int  # unexposed, outcome
    d: int  # unexposed, no outcome

    def __post_init__(self) -> None:
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ConfigError(f"negative cell count in {self}")

    @property
    def n(self) -> int:
        return self.a + self.b + self.c + self.d

    @property
    def n_exposed(self) -> int:
        return self.a + self.b

    @property
    def n_outcome(self) -> int:
        return self.a + self.c

    def haldane_corrected(self) -> "ContingencyTable":
        """Add ½ to every cell (the standard fix for zero cells).

        Statistics that divide by ``b``, ``c`` or ``d`` apply this
        correction when any cell is zero; the counts are scaled by 2 to
        stay integral (+½ to each cell leaves every *ratio* of the
        corrected table identical to +1 on the doubled table).
        """
        return ContingencyTable(
            2 * self.a + 1, 2 * self.b + 1, 2 * self.c + 1, 2 * self.d + 1
        )

    @property
    def has_zero_cell(self) -> bool:
        return 0 in (self.a, self.b, self.c, self.d)


def contingency_for(
    database: TransactionDatabase,
    exposure: Iterable[int],
    outcome: Iterable[int],
) -> ContingencyTable:
    """Build the 2×2 table of an exposure/outcome itemset pair.

    Exposure means the report contains *every* exposure item; outcome
    means it contains every outcome item (the joint-ADR convention used
    throughout the reproduction). Exposure and outcome itemsets must be
    disjoint and non-empty.
    """
    exposure = frozenset(exposure)
    outcome = frozenset(outcome)
    if not exposure or not outcome:
        raise ConfigError("exposure and outcome must be non-empty")
    if exposure & outcome:
        raise ConfigError(
            f"exposure and outcome overlap: {sorted(exposure & outcome)}"
        )
    exposed = database.tidset_of(exposure)
    with_outcome = database.tidset_of(outcome)
    a = len(exposed & with_outcome)
    b = len(exposed) - a
    c = len(with_outcome) - a
    d = len(database) - a - b - c
    return ContingencyTable(a, b, c, d)
