"""Pharmacovigilance signal-detection baselines.

The related work the paper positions itself against (§1.2, §6) detects
signals with *disproportionality statistics* over 2×2 contingency tables
— PRR, ROR, the relative reporting ratio, and the Bayesian IC of the
BCPNN — and, for multi-drug signals, Harpaz et al.'s relative-reporting-
ratio filter over itemsets and an Ω-shrinkage-style interaction contrast.
These are the comparison points of the baseline-recovery benchmark.

- :mod:`repro.signals.contingency` — 2×2 table construction from a
  transaction database.
- :mod:`repro.signals.disproportionality` — PRR, ROR, RRR, IC.
- :mod:`repro.signals.interaction` — multi-drug baselines.
"""

from repro.signals.contingency import ContingencyTable, contingency_for
from repro.signals.disproportionality import (
    ic025,
    information_component,
    proportional_reporting_ratio,
    relative_reporting_ratio,
    reporting_odds_ratio,
)
from repro.signals.ebgm import EBGMScorer, EBScores, GammaMixturePrior, fit_prior, score_pair
from repro.signals.interaction import (
    InteractionSignal,
    harpaz_multi_item_signals,
    omega_shrinkage,
)
from repro.signals.stratified import (
    StratifiedSignal,
    mantel_haenszel_ror,
    stratified_signal,
    stratify_reports,
)
from repro.signals.temporal import (
    MonthlyPoint,
    TemporalTrend,
    monthly_series,
    reporting_trend,
)

__all__ = [
    "ContingencyTable",
    "EBGMScorer",
    "EBScores",
    "GammaMixturePrior",
    "InteractionSignal",
    "MonthlyPoint",
    "TemporalTrend",
    "contingency_for",
    "fit_prior",
    "harpaz_multi_item_signals",
    "ic025",
    "information_component",
    "omega_shrinkage",
    "proportional_reporting_ratio",
    "relative_reporting_ratio",
    "reporting_odds_ratio",
    "score_pair",
    "StratifiedSignal",
    "mantel_haenszel_ror",
    "monthly_series",
    "reporting_trend",
    "stratified_signal",
    "stratify_reports",
]
