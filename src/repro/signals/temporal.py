"""Temporal signal analysis over report event dates.

The paper's motivation includes reactions that "later arise due to ...
prolonged usage", and its related work (Jin et al. [18]) mines
*unexpected temporal associations*. With event dates on the reports
(FAERS ``event_dt``), two temporal views become possible:

- :func:`monthly_series` — per-month counts of exposed reports and
  exposed-with-outcome reports for one (drug set, ADR set) pair;
- :func:`reporting_trend` — a least-squares slope of the monthly
  outcome *rate*, classifying the pair as ``rising`` / ``flat`` /
  ``falling``: a rising conditional rate over calendar time is the
  prolonged-usage signature (events accumulating in long-exposed
  patients), and a sudden rise is how emerging interactions look
  before they have the support to rank.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faers.schema import CaseReport


@dataclass(frozen=True, slots=True)
class MonthlyPoint:
    """One month's exposure/outcome counts."""

    month: str  # "YYYY-MM"
    n_exposed: int
    n_outcome: int

    @property
    def rate(self) -> float:
        return self.n_outcome / self.n_exposed if self.n_exposed else 0.0


def monthly_series(
    reports: Sequence[CaseReport],
    exposure: frozenset[str],
    outcome: frozenset[str],
) -> list[MonthlyPoint]:
    """Month-by-month exposed / exposed-with-outcome counts.

    Reports without an event date are ignored (they carry no temporal
    information); months with no exposed report are omitted. The series
    is sorted chronologically.
    """
    if not exposure or not outcome:
        raise ConfigError("exposure and outcome must be non-empty")
    exposed_by_month: dict[str, int] = {}
    outcome_by_month: dict[str, int] = {}
    for report in reports:
        if report.event_date is None:
            continue
        if not exposure <= set(report.drugs):
            continue
        month = report.event_date[:7]
        exposed_by_month[month] = exposed_by_month.get(month, 0) + 1
        if outcome <= set(report.adrs):
            outcome_by_month[month] = outcome_by_month.get(month, 0) + 1
    return [
        MonthlyPoint(
            month=month,
            n_exposed=exposed_by_month[month],
            n_outcome=outcome_by_month.get(month, 0),
        )
        for month in sorted(exposed_by_month)
    ]


class TemporalTrend(enum.Enum):
    """Direction of the monthly outcome rate."""

    RISING = "rising"
    FLAT = "flat"
    FALLING = "falling"
    INSUFFICIENT = "insufficient"  # fewer than 3 informative months


@dataclass(frozen=True, slots=True)
class TrendResult:
    """Least-squares trend of the outcome rate over months."""

    slope_per_month: float
    trend: TemporalTrend
    series: tuple[MonthlyPoint, ...]


def reporting_trend(
    reports: Sequence[CaseReport],
    exposure: frozenset[str],
    outcome: frozenset[str],
    *,
    flat_band: float = 0.01,
) -> TrendResult:
    """Classify the outcome-rate trend for one association.

    ``flat_band`` is the absolute slope (rate change per month) below
    which the trend counts as flat. Fewer than 3 months with exposure
    yields :attr:`TemporalTrend.INSUFFICIENT` — no slope is meaningful.
    """
    if flat_band < 0:
        raise ConfigError(f"flat_band must be >= 0, got {flat_band}")
    series = monthly_series(reports, exposure, outcome)
    if len(series) < 3:
        return TrendResult(
            slope_per_month=0.0,
            trend=TemporalTrend.INSUFFICIENT,
            series=tuple(series),
        )
    # Least squares of rate against month index.
    xs = list(range(len(series)))
    ys = [point.rate for point in series]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    slope = (
        sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denominator
        if denominator
        else 0.0
    )
    if slope > flat_band:
        trend = TemporalTrend.RISING
    elif slope < -flat_band:
        trend = TemporalTrend.FALLING
    else:
        trend = TemporalTrend.FLAT
    return TrendResult(slope_per_month=slope, trend=trend, series=tuple(series))
