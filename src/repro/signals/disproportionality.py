"""Classical disproportionality statistics.

The single-signal workhorses of spontaneous-report mining, computed on a
:class:`~repro.signals.contingency.ContingencyTable`:

- :func:`proportional_reporting_ratio` — PRR (Evans et al. 2001);
- :func:`reporting_odds_ratio` — ROR (van Puijenbroek et al. 2002);
- :func:`relative_reporting_ratio` — RRR, the observed-over-expected
  ratio used by Harpaz et al. (2010) for multi-item associations;
- :func:`information_component` — the IC of the BCPNN (Bate et al.
  1998), here in its common shrinkage form
  ``log2((a + ½) / (expected + ½))``.

All apply the Haldane ½ correction when a needed denominator cell is
zero, and return ``0.0`` (the null value: no disproportionality; IC's
null is also 0) when the exposure or outcome margin is empty.
"""

from __future__ import annotations

import math

from repro.signals.contingency import ContingencyTable


def proportional_reporting_ratio(table: ContingencyTable) -> float:
    """PRR = [a/(a+b)] / [c/(c+d)]."""
    if table.n_exposed == 0 or table.c + table.d == 0:
        return 0.0
    if table.has_zero_cell:
        table = table.haldane_corrected()
    exposed_rate = table.a / (table.a + table.b)
    unexposed_rate = table.c / (table.c + table.d)
    if unexposed_rate == 0.0:
        return math.inf
    return exposed_rate / unexposed_rate


def reporting_odds_ratio(table: ContingencyTable) -> float:
    """ROR = (a·d) / (b·c)."""
    if table.n_exposed == 0 or table.n_outcome == 0:
        return 0.0
    if table.has_zero_cell:
        table = table.haldane_corrected()
    return (table.a * table.d) / (table.b * table.c)


def relative_reporting_ratio(table: ContingencyTable) -> float:
    """RRR = observed / expected = a·N / ((a+b)·(a+c))."""
    if table.n_exposed == 0 or table.n_outcome == 0:
        return 0.0
    return (table.a * table.n) / (table.n_exposed * table.n_outcome)


def information_component(table: ContingencyTable) -> float:
    """IC = log2((a + ½) / (E[a] + ½)) with E[a] = (a+b)(a+c)/N."""
    if table.n == 0:
        return 0.0
    expected = table.n_exposed * table.n_outcome / table.n
    return math.log2((table.a + 0.5) / (expected + 0.5))


def ic025(table: ContingencyTable) -> float:
    """Lower 2.5 % credible bound of the IC (the BCPNN screening score).

    Uses Norén's closed-form approximation to the posterior credible
    interval: ``IC − 3.3·(a+½)^(−1/2) − 2·(a+½)^(−3/2)``. A positive
    IC025 is the conventional signal criterion — it demands both
    disproportionality and enough cases to trust it.
    """
    if table.n == 0:
        return 0.0
    center = information_component(table)
    a_half = table.a + 0.5
    return center - 3.3 * a_half ** -0.5 - 2.0 * a_half ** -1.5


def prr_signal_test(
    table: ContingencyTable,
    *,
    prr_threshold: float = 2.0,
    min_cases: int = 3,
) -> bool:
    """The conventional Evans screening rule: PRR ≥ 2, χ² ≥ 4, a ≥ 3."""
    if table.a < min_cases:
        return False
    if proportional_reporting_ratio(table) < prr_threshold:
        return False
    return chi_squared(table) >= 4.0


def chi_squared(table: ContingencyTable) -> float:
    """Pearson χ² (1 df, no continuity correction) of the 2×2 table."""
    n = table.n
    if n == 0:
        return 0.0
    row1 = table.a + table.b
    row2 = table.c + table.d
    col1 = table.a + table.c
    col2 = table.b + table.d
    denominator = row1 * row2 * col1 * col2
    if denominator == 0:
        return 0.0
    numerator = (table.a * table.d - table.b * table.c) ** 2 * n
    return numerator / denominator
