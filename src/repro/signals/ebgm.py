"""Empirical-Bayes gamma-Poisson shrinkage (MGPS / EBGM).

DuMouchel's Multi-item Gamma Poisson Shrinker is the method behind the
paper's reference [12] (Fram, Almenoff & DuMouchel, KDD 2003) and the
FDA's own signal triage. For each (exposure, outcome) pair with
observed count ``n`` and independence expectation ``E``, the relative
report rate λ = n/E is modelled with a two-component gamma mixture
prior; the posterior mean of log2 λ gives **EBGM**, and its 5th
percentile gives the conservative **EB05** screening score. Shrinkage
is the point: a pair with n=1, E=0.01 has a wild raw ratio of 100 but
almost no evidence, and the prior pulls it toward the bulk.

This implementation fits the mixture by maximum likelihood over the
dataset's (n, E) pairs (negative-binomial marginals, Nelder-Mead on a
transformed parameter space via scipy), then scores each pair from the
posterior. It is a faithful, laptop-scale MGPS: the same model and
scores, minus the stratification machinery of the production system.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import optimize, special, stats

from repro.errors import ConfigError
from repro.mining.transactions import Itemset, TransactionDatabase
from repro.signals.contingency import contingency_for


@dataclass(frozen=True, slots=True)
class GammaMixturePrior:
    """Two-component gamma prior on the relative report rate λ.

    Component i is Gamma(shape alpha_i, rate beta_i); ``weight`` is the
    mixing probability of component 1. DuMouchel's canonical starting
    point is one component near λ=1 (the null bulk) and one diffuse
    component for true signals.
    """

    alpha1: float
    beta1: float
    alpha2: float
    beta2: float
    weight: float

    def __post_init__(self) -> None:
        if min(self.alpha1, self.beta1, self.alpha2, self.beta2) <= 0:
            raise ConfigError("gamma parameters must be positive")
        if not 0.0 < self.weight < 1.0:
            raise ConfigError(f"weight must be in (0, 1), got {self.weight}")


DEFAULT_PRIOR_START = GammaMixturePrior(
    alpha1=0.2, beta1=0.1, alpha2=2.0, beta2=4.0, weight=1 / 3
)


def _log_negative_binomial(n: np.ndarray, e: np.ndarray, alpha: float, beta: float) -> np.ndarray:
    """log P(N = n) when N | λ ~ Poisson(λ·E) and λ ~ Gamma(alpha, beta).

    The marginal is negative binomial with size alpha and success
    probability beta / (beta + E).
    """
    p = beta / (beta + e)
    return (
        special.gammaln(alpha + n)
        - special.gammaln(alpha)
        - special.gammaln(n + 1)
        + alpha * np.log(p)
        + n * np.log1p(-p)
    )


def fit_prior(
    observed: Sequence[int],
    expected: Sequence[float],
    *,
    start: GammaMixturePrior = DEFAULT_PRIOR_START,
    max_iterations: int = 400,
) -> GammaMixturePrior:
    """Fit the mixture prior to a dataset's (n, E) pairs by ML.

    Optimizes in log/logit space so the box constraints are implicit.
    Falls back to the starting prior if the optimizer fails to improve
    — a deliberate safety: a bad fit must never crash a surveillance
    run, and the canonical start is a usable prior.
    """
    n = np.asarray(observed, dtype=float)
    e = np.asarray(expected, dtype=float)
    if n.shape != e.shape or n.size == 0:
        raise ConfigError("observed and expected must be equal-length, non-empty")
    if (n < 0).any() or (e <= 0).any():
        raise ConfigError("counts must be >= 0 and expectations > 0")

    def negative_log_likelihood(params: np.ndarray) -> float:
        # Bound log-parameters to [-5, 2.5] (gamma parameters in
        # [~0.007, ~12]), the hyperparameter range production MGPS
        # implementations search: unbounded ML is drawn to a point-mass
        # prior that fits the null bulk perfectly and shrinks every
        # true signal to nothing.
        bounded = np.clip(params[:4], -5.0, 2.5)
        alpha1, beta1, alpha2, beta2 = np.exp(bounded)
        weight = 1.0 / (1.0 + math.exp(-float(np.clip(params[4], -8.0, 8.0))))
        log_c1 = _log_negative_binomial(n, e, alpha1, beta1) + math.log(weight)
        log_c2 = _log_negative_binomial(n, e, alpha2, beta2) + math.log(1 - weight)
        value = -float(np.logaddexp(log_c1, log_c2).sum())
        return value if math.isfinite(value) else 1e18

    start_vector = np.array(
        [
            math.log(start.alpha1),
            math.log(start.beta1),
            math.log(start.alpha2),
            math.log(start.beta2),
            math.log(start.weight / (1 - start.weight)),
        ]
    )
    result = optimize.minimize(
        negative_log_likelihood,
        start_vector,
        method="Nelder-Mead",
        options={"maxiter": max_iterations, "xatol": 1e-4, "fatol": 1e-6},
    )
    if not np.isfinite(result.fun) or result.fun > negative_log_likelihood(start_vector):
        return start
    alpha1, beta1, alpha2, beta2 = np.exp(np.clip(result.x[:4], -5.0, 2.5))
    weight = 1.0 / (1.0 + math.exp(-float(np.clip(result.x[4], -8.0, 8.0))))
    weight = min(max(weight, 1e-6), 1 - 1e-6)
    return GammaMixturePrior(
        alpha1=float(alpha1),
        beta1=float(beta1),
        alpha2=float(alpha2),
        beta2=float(beta2),
        weight=float(weight),
    )


@dataclass(frozen=True, slots=True)
class EBScores:
    """Posterior summaries for one (exposure, outcome) pair."""

    observed: int
    expected: float
    ebgm: float  # 2 ** posterior mean of log2(λ)
    eb05: float  # posterior 5th percentile of λ
    eb95: float  # posterior 95th percentile of λ
    posterior_weight: float  # posterior probability of component 1


def score_pair(
    observed: int, expected: float, prior: GammaMixturePrior
) -> EBScores:
    """Posterior EBGM / EB05 / EB95 for one (n, E) pair.

    Posterior: a mixture of Gamma(alpha_i + n, beta_i + E) with weights
    proportional to prior weight × marginal likelihood.
    """
    if observed < 0 or expected <= 0:
        raise ConfigError("observed must be >= 0, expected > 0")
    n = np.asarray([float(observed)])
    e = np.asarray([float(expected)])
    log_m1 = float(_log_negative_binomial(n, e, prior.alpha1, prior.beta1)[0])
    log_m2 = float(_log_negative_binomial(n, e, prior.alpha2, prior.beta2)[0])
    log_w1 = math.log(prior.weight) + log_m1
    log_w2 = math.log(1 - prior.weight) + log_m2
    normalizer = np.logaddexp(log_w1, log_w2)
    q1 = math.exp(log_w1 - normalizer)

    shape1, rate1 = prior.alpha1 + observed, prior.beta1 + expected
    shape2, rate2 = prior.alpha2 + observed, prior.beta2 + expected

    # E[log2 λ] under the posterior mixture.
    mean_log2 = q1 * (special.digamma(shape1) - math.log(rate1)) + (1 - q1) * (
        special.digamma(shape2) - math.log(rate2)
    )
    ebgm = float(2 ** (mean_log2 / math.log(2)))

    def mixture_cdf(x: float) -> float:
        return q1 * stats.gamma.cdf(x, shape1, scale=1 / rate1) + (
            1 - q1
        ) * stats.gamma.cdf(x, shape2, scale=1 / rate2)

    eb05 = _mixture_quantile(mixture_cdf, 0.05, shape1 / rate1, shape2 / rate2)
    eb95 = _mixture_quantile(mixture_cdf, 0.95, shape1 / rate1, shape2 / rate2)
    return EBScores(
        observed=observed,
        expected=float(expected),
        ebgm=ebgm,
        eb05=eb05,
        eb95=eb95,
        posterior_weight=q1,
    )


def _mixture_quantile(cdf, q: float, mean1: float, mean2: float) -> float:
    """Bisection quantile of a gamma mixture (cdf is monotone)."""
    high = 10 * max(mean1, mean2, 1.0)
    while cdf(high) < q:
        high *= 2
        if high > 1e12:  # pragma: no cover - pathological prior
            return high
    low = 0.0
    for _ in range(80):
        mid = (low + high) / 2
        if cdf(mid) < q:
            low = mid
        else:
            high = mid
    return (low + high) / 2


class EBGMScorer:
    """Fit-once, score-many EBGM over a transaction database.

    >>> scorer = EBGMScorer.fit(database, candidate_pairs)
    >>> scorer.score(exposure_items, outcome_items).eb05
    """

    def __init__(self, database: TransactionDatabase, prior: GammaMixturePrior) -> None:
        self.database = database
        self.prior = prior

    @classmethod
    def fit(
        cls,
        database: TransactionDatabase,
        pairs: Sequence[tuple[Itemset, Itemset]],
    ) -> "EBGMScorer":
        """Fit the prior on the candidate pairs' (n, E) distribution."""
        if not pairs:
            raise ConfigError("need at least one candidate pair to fit the prior")
        observed: list[int] = []
        expected: list[float] = []
        for exposure, outcome in pairs:
            table = contingency_for(database, exposure, outcome)
            if table.n_exposed == 0 or table.n_outcome == 0:
                continue
            observed.append(table.a)
            expected.append(table.n_exposed * table.n_outcome / table.n)
        if not observed:
            raise ConfigError("no candidate pair has both margins observed")
        prior = fit_prior(observed, expected)
        return cls(database, prior)

    def score(self, exposure: Itemset, outcome: Itemset) -> EBScores:
        table = contingency_for(self.database, exposure, outcome)
        if table.n_exposed == 0 or table.n_outcome == 0:
            raise ConfigError("exposure/outcome margin unobserved; nothing to score")
        expected = table.n_exposed * table.n_outcome / table.n
        return score_pair(table.a, expected, self.prior)
