"""Simulated user study (§5.4.1, Fig 5.2).

The paper asked 50 students to pick the most interesting drug-drug
interaction out of candidate MCACs, once rendered as contextual glyphs
and once as bar-charts, for 2-, 3- and 4-drug clusters. This package
replays that protocol with *simulated annotators* whose perception model
is explicit (see :mod:`repro.userstudy.perception`), reproducing the
figure's shape — glyph accuracy above bar-chart accuracy at every drug
count — from stated assumptions instead of undocumented subjects.
"""

from repro.userstudy.perception import Annotator, PerceptionModel
from repro.userstudy.stimuli import render_question_sheet, render_study_sheets
from repro.userstudy.study import (
    Question,
    StudyResult,
    UserStudy,
    build_questions,
)

__all__ = [
    "Annotator",
    "PerceptionModel",
    "Question",
    "StudyResult",
    "UserStudy",
    "build_questions",
    "render_question_sheet",
    "render_study_sheets",
]
