"""The simulated user-study harness (reproduces Fig 5.2).

Protocol, mirroring §5.4.1 and Appendix A:

1. from a ranked quarter, build questions per drug count (2, 3, 4):
   each question shows a handful of same-cardinality MCACs of which
   exactly one is the top-ranked ("interesting") cluster;
2. every simulated annotator answers every question twice — once under
   the glyph perception model, once under the bar-chart model;
3. accuracy per (drug count, encoding) is the fraction of correct
   picks — the two bar series of Fig 5.2.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.context import MCAC
from repro.core.ranking import RankingMethod, rank_clusters
from repro.errors import ConfigError
from repro.userstudy.perception import (
    BARCHART_MODEL,
    GLYPH_MODEL,
    Annotator,
    PerceptionModel,
)


@dataclass(frozen=True, slots=True)
class Question:
    """One stimulus: candidate clusters with their true scores.

    ``correct_index`` marks the genuinely top-scored candidate the
    subject is supposed to identify.
    """

    n_drugs: int
    clusters: tuple[MCAC, ...]
    true_scores: tuple[float, ...]
    correct_index: int

    def __post_init__(self) -> None:
        if len(self.clusters) != len(self.true_scores) or len(self.clusters) < 2:
            raise ConfigError("a question needs >= 2 scored candidates")
        if not 0 <= self.correct_index < len(self.clusters):
            raise ConfigError(f"correct_index {self.correct_index} out of range")
        top = max(range(len(self.true_scores)), key=self.true_scores.__getitem__)
        if top != self.correct_index:
            raise ConfigError("correct_index must point at the highest true score")

    @property
    def context_sizes(self) -> list[int]:
        return [cluster.context_size for cluster in self.clusters]


def build_questions(
    clusters: Sequence[MCAC],
    *,
    drug_counts: Sequence[int] = (2, 3, 4),
    candidates_per_question: int = 4,
    questions_per_count: int = 5,
    method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
    seed: int = 4242,
    distractor_offset: int = 3,
) -> list[Question]:
    """Assemble the study's stimuli from a mined quarter.

    For each drug count: rank the same-cardinality clusters, then form
    questions pairing one high-ranked cluster with lower-ranked
    distractors drawn deterministically from the remainder. Drug counts
    with too few clusters are skipped (the caller can check coverage
    via the returned questions' ``n_drugs``).
    """
    if candidates_per_question < 2:
        raise ConfigError(
            f"candidates_per_question must be >= 2, got {candidates_per_question}"
        )
    rng = random.Random(seed)
    questions: list[Question] = []
    for n_drugs in drug_counts:
        same_cardinality = [c for c in clusters if c.n_drugs == n_drugs]
        if len(same_cardinality) < candidates_per_question:
            continue
        ranked = rank_clusters(same_cardinality, method)
        top_pool = ranked[: max(questions_per_count, 1)]
        if len(ranked) - len(top_pool) < candidates_per_question - 1:
            continue
        for question_index in range(min(questions_per_count, len(top_pool))):
            winner = top_pool[question_index]
            # Distractors come from ranks a few places below the
            # winner: close enough that the clusters look similar (the
            # paper's stimuli contrast plausible candidates), far enough
            # that a careful reading can tell them apart.
            window_start = question_index + 1 + distractor_offset
            window = ranked[
                window_start : window_start + 6 * (candidates_per_question - 1)
            ]
            if len(window) < candidates_per_question - 1:
                continue
            distractors = rng.sample(window, candidates_per_question - 1)
            candidates = [winner, *distractors]
            rng.shuffle(candidates)
            scores = tuple(entry.score for entry in candidates)
            questions.append(
                Question(
                    n_drugs=n_drugs,
                    clusters=tuple(entry.cluster for entry in candidates),
                    true_scores=scores,
                    correct_index=max(range(len(scores)), key=scores.__getitem__),
                )
            )
    if not questions:
        raise ConfigError(
            "no questions could be built; mine a larger quarter or lower "
            "candidates_per_question"
        )
    return questions


@dataclass(frozen=True, slots=True)
class StudyResult:
    """Fig 5.2: accuracy and speed per (encoding, drug count)."""

    accuracy: Mapping[str, Mapping[int, float]]
    mean_seconds: Mapping[str, Mapping[int, float]]
    n_annotators: int
    n_questions: int

    def series(self, encoding: str) -> dict[int, float]:
        """Accuracy by drug count for one encoding name."""
        if encoding not in self.accuracy:
            raise ConfigError(
                f"unknown encoding {encoding!r}; have {sorted(self.accuracy)}"
            )
        return dict(self.accuracy[encoding])

    def time_series(self, encoding: str) -> dict[int, float]:
        """Mean response time (seconds) by drug count for one encoding."""
        if encoding not in self.mean_seconds:
            raise ConfigError(
                f"unknown encoding {encoding!r}; have {sorted(self.mean_seconds)}"
            )
        return dict(self.mean_seconds[encoding])


class UserStudy:
    """Run the simulated study over prepared questions."""

    def __init__(
        self,
        n_annotators: int = 50,
        *,
        glyph_model: PerceptionModel = GLYPH_MODEL,
        barchart_model: PerceptionModel = BARCHART_MODEL,
        seed: int = 73,
    ) -> None:
        if n_annotators < 1:
            raise ConfigError(f"n_annotators must be >= 1, got {n_annotators}")
        self.n_annotators = n_annotators
        self.models = (glyph_model, barchart_model)
        self.seed = seed

    def run(self, questions: Sequence[Question]) -> StudyResult:
        """Every annotator answers every question under both encodings."""
        if not questions:
            raise ConfigError("no questions to run")
        correct: dict[str, dict[int, int]] = {m.name: {} for m in self.models}
        seconds: dict[str, dict[int, float]] = {m.name: {} for m in self.models}
        totals: dict[int, int] = {}
        annotators = [
            Annotator(seed=self.seed * 1000 + i) for i in range(self.n_annotators)
        ]
        for question in questions:
            totals[question.n_drugs] = totals.get(question.n_drugs, 0) + len(annotators)
            for model in self.models:
                bucket = correct[model.name]
                time_bucket = seconds[model.name]
                bucket.setdefault(question.n_drugs, 0)
                time_bucket.setdefault(question.n_drugs, 0.0)
                for annotator in annotators:
                    choice, elapsed = annotator.answer(
                        list(question.true_scores),
                        question.context_sizes,
                        model,
                    )
                    time_bucket[question.n_drugs] += elapsed
                    if choice == question.correct_index:
                        bucket[question.n_drugs] += 1
        accuracy = {
            name: {
                n_drugs: bucket.get(n_drugs, 0) / totals[n_drugs]
                for n_drugs in totals
            }
            for name, bucket in correct.items()
        }
        mean_seconds = {
            name: {
                n_drugs: time_bucket.get(n_drugs, 0.0) / totals[n_drugs]
                for n_drugs in totals
            }
            for name, time_bucket in seconds.items()
        }
        return StudyResult(
            accuracy=accuracy,
            mean_seconds=mean_seconds,
            n_annotators=self.n_annotators,
            n_questions=len(questions),
        )
