"""Perception models for the simulated user study.

When a subject judges which of several displayed MCACs is the most
interesting, they are visually estimating each cluster's
target-vs-context contrast. The two encodings make that estimate
differently hard, and the model captures exactly that difference:

- **Contextual glyph**: the contrast is a single preattentive gestalt —
  a big inner circle inside a thin ring *is* a high score. The reading
  noise is roughly constant in the number of contextual sectors, with a
  mild crowding term once sectors become thin.
- **Bar chart**: the subject must serially compare the target bar
  against every context bar and mentally aggregate; reading noise grows
  linearly with the number of bars (serial-scan cost, Beddow's classic
  glyph argument the paper cites).

An :class:`Annotator` perceives a cluster's true interestingness score
through Gaussian noise whose σ comes from the encoding's model, then
picks the candidate with the highest perceived score. Accuracy is then
a pure function of (true score gaps, encoding noise) — no hidden magic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class PerceptionModel:
    """Noise and reading-time model of one visual encoding.

    Accuracy: σ(context_size) = base_noise + per_element_noise ×
    context_size, in units of the interestingness score being judged.

    Speed: reading one candidate takes ``base_seconds`` plus
    ``seconds_per_element`` per displayed context element — the serial-
    scan cost that the glyph's preattentive encoding avoids and the
    bar-chart pays in full. The paper's subjects were both more accurate
    *and* faster with the glyph; the time model reproduces the second
    half of that claim.
    """

    name: str
    base_noise: float
    per_element_noise: float
    base_seconds: float = 2.0
    seconds_per_element: float = 0.0

    def __post_init__(self) -> None:
        if self.base_noise < 0 or self.per_element_noise < 0:
            raise ConfigError("noise parameters must be non-negative")
        if self.base_seconds <= 0 or self.seconds_per_element < 0:
            raise ConfigError("time parameters must be positive / non-negative")

    def sigma(self, context_size: int) -> float:
        if context_size < 0:
            raise ConfigError(f"context_size must be >= 0, got {context_size}")
        return self.base_noise + self.per_element_noise * context_size

    def reading_seconds(self, context_size: int) -> float:
        """Mean time to read one displayed candidate."""
        if context_size < 0:
            raise ConfigError(f"context_size must be >= 0, got {context_size}")
        return self.base_seconds + self.seconds_per_element * context_size


# Defaults calibrated so that the simulated study lands in the accuracy
# band of Fig 5.2 (glyph 57-86 %, bar-chart 28-50 %) on score gaps
# typical of ranked synthetic quarters. The structural claim — glyph
# noise ~flat in context size, bar-chart noise growing with it — is the
# part that matters; the constants only set the operating point.
GLYPH_MODEL = PerceptionModel(
    name="contextual-glyph",
    base_noise=0.045,
    per_element_noise=0.002,
    base_seconds=2.0,
    seconds_per_element=0.1,
)
BARCHART_MODEL = PerceptionModel(
    name="bar-chart",
    base_noise=0.075,
    per_element_noise=0.012,
    base_seconds=2.5,
    seconds_per_element=0.8,
)


class Annotator:
    """One simulated subject: perceives scores through encoding noise."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def perceive(self, true_score: float, model: PerceptionModel, context_size: int) -> float:
        """The subject's noisy reading of one cluster's score."""
        return true_score + self._rng.gauss(0.0, model.sigma(context_size))

    def choose(
        self,
        true_scores: list[float],
        context_sizes: list[int],
        model: PerceptionModel,
    ) -> int:
        """Index of the candidate the subject picks as most interesting."""
        if len(true_scores) != len(context_sizes) or not true_scores:
            raise ConfigError("scores and context sizes must be parallel, non-empty")
        perceived = [
            self.perceive(score, model, size)
            for score, size in zip(true_scores, context_sizes)
        ]
        return max(range(len(perceived)), key=perceived.__getitem__)

    def answer(
        self,
        true_scores: list[float],
        context_sizes: list[int],
        model: PerceptionModel,
    ) -> tuple[int, float]:
        """(choice index, response time in seconds) for one question.

        Response time is the sum of per-candidate reading times, each
        jittered by a multiplicative lognormal factor (human timing
        noise is right-skewed).
        """
        choice = self.choose(true_scores, context_sizes, model)
        seconds = sum(
            model.reading_seconds(size) * self._rng.lognormvariate(0.0, 0.25)
            for size in context_sizes
        )
        return choice, seconds
