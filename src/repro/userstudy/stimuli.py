"""Render user-study questions as stimulus sheets (Appendix A).

The thesis appendix shows each question as a labelled grid of candidate
visualizations — one sheet with contextual glyphs (Figs A.5/A.7/...),
one with bar-charts (Figs A.4/A.6/...) — from which the subject picks
the most interesting cluster. :func:`render_question_sheet` reproduces
those sheets from a :class:`~repro.userstudy.study.Question`, with
candidates labelled A, B, C, ... and (optionally) the correct answer
marked for the answer key.
"""

from __future__ import annotations

import string

from repro.errors import ConfigError
from repro.userstudy.study import Question
from repro.viz.barchart import render_barchart
from repro.viz.glyph import GlyphGeometry, draw_glyph
from repro.viz.svg import SVGDocument

ENCODINGS = ("glyph", "barchart")


def render_question_sheet(
    question: Question,
    *,
    encoding: str = "glyph",
    show_answer: bool = False,
    cell_padding: float = 16.0,
) -> SVGDocument:
    """One question as a labelled candidate grid.

    ``encoding`` selects the visualization (``"glyph"`` or
    ``"barchart"``); ``show_answer`` circles the correct candidate's
    label (for the experimenter's answer key, not the subject's sheet).
    """
    if encoding not in ENCODINGS:
        raise ConfigError(f"encoding must be one of {ENCODINGS}, got {encoding!r}")
    labels = string.ascii_uppercase
    if len(question.clusters) > len(labels):
        raise ConfigError("too many candidates to label")

    if encoding == "glyph":
        geometry = GlyphGeometry(
            inner_max=26.0, inner_min=3.0, ring_inner=31.0, ring_depth=26.0
        )
        cell_width = 2 * geometry.extent + 2 * cell_padding
        cell_height = cell_width + 26.0
    else:
        rendered = [render_barchart(cluster) for cluster in question.clusters]
        cell_width = max(doc.width for doc in rendered) + 2 * cell_padding
        cell_height = max(doc.height for doc in rendered) + 30.0

    header = 34.0
    doc = SVGDocument(
        cell_width * len(question.clusters),
        header + cell_height,
        background="#ffffff",
    )
    doc.text(
        12,
        22,
        f"Which {question.n_drugs}-drug interaction is the most interesting?",
        size=14,
        weight="bold",
    )
    for index, cluster in enumerate(question.clusters):
        x0 = index * cell_width
        label = labels[index]
        label_y = header + 16
        doc.text(
            x0 + cell_width / 2, label_y, label, size=14, anchor="middle",
            weight="bold",
        )
        if show_answer and index == question.correct_index:
            doc.circle(
                x0 + cell_width / 2,
                label_y - 5,
                12,
                stroke="#c24d3a",
                stroke_width=2.0,
            )
        if encoding == "glyph":
            draw_glyph(
                doc,
                cluster,
                x0 + cell_width / 2,
                header + 26 + geometry.extent + cell_padding,
                geometry,
            )
        else:
            # Embed the standalone bar-chart's elements by re-drawing it
            # at an offset: simplest correct route is nested <svg>, which
            # SVGDocument does not support, so draw bars directly.
            _draw_barchart_into(
                doc, cluster, x0 + cell_padding, header + 26
            )
    return doc


def _draw_barchart_into(doc: SVGDocument, cluster, x0: float, y0: float) -> None:
    """Draw a compact confidence bar-chart at an offset on ``doc``."""
    from repro.viz.glyph import level_color

    bars = [(cluster.target.metrics.confidence, "#c24d3a")]
    for level in sorted(cluster.levels):
        bars.extend(
            (rule.metrics.confidence, level_color(level))
            for rule in cluster.levels[level]
        )
    plot_height = 120.0
    bar_width, gap = 14.0, 5.0
    baseline = y0 + plot_height
    doc.line(x0, baseline, x0 + len(bars) * (bar_width + gap), baseline,
             stroke="#cccccc")
    x = x0
    for confidence, color in bars:
        confidence = max(0.0, min(1.0, confidence))
        height = plot_height * confidence
        if height > 0.1:
            doc.rect(x, baseline - height, bar_width, height, fill=color)
        x += bar_width + gap


def render_study_sheets(
    questions, out_dir, *, show_answers: bool = False
):
    """Write glyph+barchart sheets for every question; returns the paths."""
    from pathlib import Path

    out_dir = Path(out_dir)
    paths = []
    for number, question in enumerate(questions, start=1):
        for encoding in ENCODINGS:
            sheet = render_question_sheet(
                question, encoding=encoding, show_answer=show_answers
            )
            paths.append(
                sheet.save(
                    out_dir / f"question_{number:02d}_{question.n_drugs}drugs_{encoding}.svg"
                )
            )
    return paths
