"""One-shot markdown surveillance report for a mined quarter.

Bundles everything a drug-safety evaluator reads per quarter into one
document: dataset statistics (Table 5.1 row), rule-space reduction
(when counted), the top-k ranking with novelty classification against
the DDI reference and severity flags, and per-cluster detail sections
with contextual rules and sample supporting cases. This is the textual
twin of the demo's dashboard.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.pipeline import MarasResult
from repro.core.ranking import RankingMethod
from repro.errors import ConfigError
from repro.knowledge.ddi_reference import DDIReference, default_reference
from repro.knowledge.meddra import MedDRAHierarchy, default_hierarchy
from repro.knowledge.severity import SeverityIndex, default_severity_index


def build_quarter_report(
    result: MarasResult,
    *,
    method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
    top_k: int = 10,
    detail_k: int = 3,
    sample_cases: int = 3,
    reference: DDIReference | None = None,
    severity: SeverityIndex | None = None,
    hierarchy: MedDRAHierarchy | None = None,
) -> str:
    """Render the quarter report as markdown.

    ``top_k`` rows appear in the ranking table; the first ``detail_k``
    of them get a detail section with their context and up to
    ``sample_cases`` supporting case ids.
    """
    if top_k < 1 or detail_k < 0 or sample_cases < 0:
        raise ConfigError("top_k must be >= 1; detail_k/sample_cases >= 0")
    reference = reference if reference is not None else default_reference()
    severity = severity if severity is not None else default_severity_index()
    hierarchy = hierarchy if hierarchy is not None else default_hierarchy()
    catalog = result.catalog
    stats = result.dataset.stats()

    lines: list[str] = []
    title_quarter = stats.quarter or "unlabelled dataset"
    lines.append(f"# MeDIAR quarterly surveillance report — {title_quarter}")
    lines.append("")
    lines.append("## Dataset")
    lines.append("")
    lines.append("| reports | distinct drugs | distinct ADRs | multi-drug clusters |")
    lines.append("|---|---|---|---|")
    lines.append(
        f"| {stats.n_reports:,d} | {stats.n_drugs:,d} | {stats.n_adrs:,d} "
        f"| {len(result.clusters):,d} |"
    )
    if result.cleaning_stats is not None:
        cleaning = result.cleaning_stats
        lines.append("")
        lines.append(
            f"Cleaning: {cleaning.rows_in:,d} rows in, "
            f"{cleaning.cases_merged:,d} case versions merged, "
            f"{cleaning.exact_duplicates_dropped:,d} duplicates dropped, "
            f"{cleaning.drug_names_corrected:,d} drug names corrected."
        )
    if result.rule_counts is not None:
        counts = result.rule_counts
        lines.append("")
        lines.append("## Rule-space reduction")
        lines.append("")
        lines.append("| total rules | drug→ADR rules | MCACs |")
        lines.append("|---|---|---|")
        lines.append(
            f"| {counts.total_rules:,d} | {counts.filtered_rules:,d} "
            f"| {counts.mcacs:,d} |"
        )

    ranked = result.rank(method, top_k=top_k)
    lines.append("")
    lines.append(f"## Top {len(ranked)} interactions ({method.value})")
    lines.append("")
    lines.append(
        "| # | drugs | reactions | score | support | novelty | severity "
        "| body systems |"
    )
    lines.append("|---|---|---|---|---|---|---|---|")
    for entry in ranked:
        drugs = catalog.labels(entry.cluster.target.antecedent)
        adrs = catalog.labels(entry.cluster.target.consequent)
        novelty = reference.classify(drugs, adrs)
        worst = severity.max_severity(adrs).name.replace("_", " ").lower()
        socs = "; ".join(sorted(hierarchy.socs_of(adrs)))
        lines.append(
            f"| {entry.rank} | {' + '.join(drugs)} | {', '.join(adrs)} "
            f"| {entry.score:.3f} | {entry.cluster.target.metrics.n_joint} "
            f"| {novelty} | {worst} | {socs} |"
        )

    for entry in ranked[:detail_k]:
        cluster = entry.cluster
        drugs = catalog.labels(cluster.target.antecedent)
        lines.append("")
        lines.append(f"### #{entry.rank} — {' + '.join(drugs)}")
        lines.append("")
        lines.append(
            f"Target confidence {cluster.target.metrics.confidence:.3f}, "
            f"lift {cluster.target.metrics.lift:.2f}, "
            f"support {cluster.target.metrics.n_joint}."
        )
        lines.append("")
        lines.append("| context (drugs) | k | confidence |")
        lines.append("|---|---|---|")
        for rule in cluster.all_context_rules():
            lines.append(
                f"| {' + '.join(catalog.labels(rule.antecedent))} "
                f"| {rule.cardinality} | {rule.metrics.confidence:.3f} |"
            )
        if sample_cases:
            reports = result.supporting_reports(cluster)[:sample_cases]
            lines.append("")
            lines.append(
                "Sample supporting cases: "
                + ", ".join(report.case_id for report in reports)
            )
    lines.append("")
    return "\n".join(lines)


def write_quarter_report(
    result: MarasResult, path: str | Path, **kwargs
) -> Path:
    """Build and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_quarter_report(result, **kwargs), encoding="utf-8")
    return path
