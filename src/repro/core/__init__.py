"""The MeDIAR/MARAS core: the paper's contribution.

- :mod:`repro.core.association` — drug-ADR association model and the
  explicit / implicit / unsupported taxonomy of §3.3.
- :mod:`repro.core.context` — contextual rules and the Multi-level
  Contextual Association Cluster (MCAC) of §3.5.
- :mod:`repro.core.exclusiveness` — the exclusiveness score of §3.6 in
  its three refinements, plus decay functions.
- :mod:`repro.core.improvement` — Bayardo's improvement baseline
  (Eq. 3.2).
- :mod:`repro.core.ranking` — ranking strategies (confidence, lift,
  exclusiveness-with-confidence, exclusiveness-with-lift, improvement)
  and the Table 5.2 side-by-side comparison.
- :mod:`repro.core.pipeline` — the end-to-end :class:`Maras` system:
  reports → cleaning → closed mining → drug→ADR rules → MCACs →
  exclusiveness ranking → report linkage.
"""

from repro.core.association import (
    DrugADRAssociation,
    SupportType,
    classify_support,
    is_pairwise_implicit,
)
from repro.core.context import MCAC, ContextualRule, build_cluster, build_clusters
from repro.core.exclusiveness import (
    DECAY_FUNCTIONS,
    ExclusivenessConfig,
    exclusiveness,
    exclusiveness_cv,
    exclusiveness_simple,
)
from repro.core.export import export_result, load_export, write_export
from repro.core.ids import association_id, cluster_id, content_digest
from repro.core.improvement import improvement
from repro.core.incremental import BatchDelta, SurveillanceMonitor
from repro.core.pipeline import Maras, MarasConfig, MarasResult
from repro.core.profile import DrugProfile, build_drug_profile
from repro.core.ranking import RankedCluster, RankingMethod, rank_clusters, ranking_table
from repro.core.report_builder import build_quarter_report, write_quarter_report
from repro.core.similarity import (
    SimilarCluster,
    content_similarity,
    shape_similarity,
    similar_clusters,
)
from repro.core.trends import SignalTrend, TrendKind, build_trends, emerging_signals
from repro.core.uncertainty import ScoreInterval, bootstrap_exclusiveness, score_intervals

__all__ = [
    "BatchDelta",
    "DECAY_FUNCTIONS",
    "ContextualRule",
    "DrugProfile",
    "build_drug_profile",
    "DrugADRAssociation",
    "ExclusivenessConfig",
    "MCAC",
    "Maras",
    "MarasConfig",
    "MarasResult",
    "RankedCluster",
    "RankingMethod",
    "ScoreInterval",
    "SignalTrend",
    "SimilarCluster",
    "SupportType",
    "SurveillanceMonitor",
    "TrendKind",
    "association_id",
    "bootstrap_exclusiveness",
    "build_cluster",
    "build_clusters",
    "build_quarter_report",
    "build_trends",
    "classify_support",
    "cluster_id",
    "content_digest",
    "content_similarity",
    "emerging_signals",
    "exclusiveness",
    "exclusiveness_cv",
    "exclusiveness_simple",
    "export_result",
    "improvement",
    "is_pairwise_implicit",
    "load_export",
    "rank_clusters",
    "ranking_table",
    "score_intervals",
    "shape_similarity",
    "similar_clusters",
    "write_export",
    "write_quarter_report",
]
