"""Incremental surveillance over a growing report stream.

The paper's motivation (§1.1): "thousands of reports are added on daily
bases hence the database grows rapidly", and manual re-review of the
whole ranking after every batch is exactly the cost MeDIAR is supposed
to remove. :class:`SurveillanceMonitor` maintains the pipeline over an
append-only report stream and, per ingested batch, reports the *deltas*
a drug-safety evaluator acts on:

- **newly surfaced** clusters — combinations that crossed the support
  threshold in this batch;
- **risers** — clusters whose exclusiveness rank improved by more than
  a configurable number of positions;
- **dropped** clusters — fell back below support;
- **rank stability** — Spearman correlation between consecutive
  rankings, a one-number answer to "did this batch reshuffle my queue?".

By default mining is re-run per batch over the accumulated history
(closed-itemset mining at these scales is sub-second; see the
mining-scaling benchmark) and only the diffing is incremental. With
``MarasConfig(incremental=True)`` the monitor instead folds each batch
through :class:`~repro.incremental.IncrementalEngine`, whose per-batch
cost is proportional to the *delta* — same results byte for byte, at
streaming cost.
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.pipeline import Maras, MarasConfig, MarasResult
from repro.core.ranking import RankingMethod
from repro.errors import ConfigError, StoreError
from repro.faers.dataset import ReportDataset
from repro.faers.schema import CaseReport
from repro.incremental.engine import IncrementalEngine
from repro.obs import NULL_REGISTRY, MetricsRegistry, NullRegistry

ClusterKey = tuple[tuple[str, ...], tuple[str, ...]]


def cluster_key(result: MarasResult, cluster) -> ClusterKey:
    """A catalog-independent identity for a cluster: (drug labels, ADR labels).

    Item ids are not stable across re-encodings of a grown dataset, so
    deltas are computed on label tuples.
    """
    catalog = result.catalog
    return (
        catalog.labels(cluster.target.antecedent),
        catalog.labels(cluster.target.consequent),
    )


@dataclass(frozen=True, slots=True)
class BatchDelta:
    """What changed when one batch was ingested."""

    batch_index: int
    n_reports_total: int
    newly_surfaced: tuple[ClusterKey, ...]
    dropped: tuple[ClusterKey, ...]
    risers: tuple[tuple[ClusterKey, int, int], ...]  # (key, old rank, new rank)
    rank_correlation: float | None  # None on the first batch

    @property
    def n_clusters_changed(self) -> int:
        return len(self.newly_surfaced) + len(self.dropped) + len(self.risers)


def _fractional_ranks(values: Sequence[float]) -> list[float]:
    """1-based ranks with ties sharing the average (fractional) rank.

    ``[10, 20, 20, 30]`` → ``[1.0, 2.5, 2.5, 4.0]``. Average ranks make
    Spearman ρ a pure function of the *values* — tie order (e.g. dict
    insertion order after a re-encoding) cannot change the result.
    """
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    start = 0
    while start < len(order):
        end = start
        while (
            end + 1 < len(order)
            and values[order[end + 1]] == values[order[start]]
        ):
            end += 1
        average = (start + end) / 2 + 1
        for position in range(start, end + 1):
            ranks[order[position]] = average
        start = end + 1
    return ranks


def spearman_correlation(
    old_ranks: dict[ClusterKey, int], new_ranks: dict[ClusterKey, int]
) -> float | None:
    """Spearman ρ over the clusters present in both rankings.

    Ties are handled with average (fractional) ranks and the Pearson
    form of the coefficient, so the result is deterministic regardless
    of how tied keys happen to be ordered. Returns ``None`` when fewer
    than three clusters are shared (the coefficient is meaningless
    below that) or when one side ranks every shared cluster identically
    (zero variance — ρ is undefined).
    """
    shared = sorted(set(old_ranks) & set(new_ranks))
    if len(shared) < 3:
        return None
    old = _fractional_ranks([old_ranks[key] for key in shared])
    new = _fractional_ranks([new_ranks[key] for key in shared])
    # Fractional ranks over n items always average to (n + 1) / 2.
    mean = (len(shared) + 1) / 2
    covariance = sum((a - mean) * (b - mean) for a, b in zip(old, new))
    old_variance = sum((a - mean) ** 2 for a in old)
    new_variance = sum((b - mean) ** 2 for b in new)
    if old_variance == 0.0 or new_variance == 0.0:
        return None
    return covariance / (old_variance * new_variance) ** 0.5


class SurveillanceMonitor:
    """Maintain MeDIAR results over an append-only report stream.

    >>> monitor = SurveillanceMonitor(MarasConfig(min_support=5, clean=False))
    >>> delta = monitor.ingest(first_batch)
    >>> delta = monitor.ingest(next_batch)
    >>> delta.newly_surfaced

    The config is forwarded verbatim to each batch's pipeline run, so
    ``MarasConfig(n_workers=N)`` shards the re-mine of the accumulated
    stream across N processes (:mod:`repro.parallel`) with results
    identical to the single-process monitor.
    """

    def __init__(
        self,
        config: MarasConfig | None = None,
        *,
        method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
        riser_threshold: int = 5,
        registry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        if riser_threshold < 1:
            raise ConfigError(f"riser_threshold must be >= 1, got {riser_threshold}")
        self.config = config if config is not None else MarasConfig()
        self.method = method
        self.riser_threshold = riser_threshold
        self.registry = registry if registry is not None else NULL_REGISTRY
        # Raw kept rows, accumulated only in re-run-everything mode —
        # the engine carries its own state, so holding the raw stream
        # there would double memory and bloat checkpoints for nothing.
        self._reports: list[CaseReport] = []
        self._n_reports = 0
        # Case ids seen so far, live in *both* clean modes: the no-clean
        # path dedups against it, and both paths use it to report how
        # many rows of a batch were genuinely new versus follow-ups.
        self._seen_case_ids: set[str] = set()
        self._batch_index = 0
        self._last_result: MarasResult | None = None
        self._last_ranks: dict[ClusterKey, int] = {}
        self._history: list[BatchDelta] = []
        self._engine: IncrementalEngine | None = (
            IncrementalEngine(self.config, registry=self.registry)
            if self.config.incremental
            else None
        )

    def close(self) -> None:
        """Release engine resources; idempotent.

        Shuts down the engine's persistent
        :class:`~repro.parallel.pool.MiningPool` (shared by batch
        normalization and sharded re-mining). The pool is what makes
        repeated batches *warm* — workers keep the accumulated shard
        rows resident between mines — so close only when the stream is
        done, not between batches.
        """
        if self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "SurveillanceMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def result(self) -> MarasResult:
        """The pipeline result over everything ingested so far."""
        if self._last_result is None:
            raise ConfigError("no batches ingested yet")
        return self._last_result

    @property
    def history(self) -> Sequence[BatchDelta]:
        return tuple(self._history)

    @property
    def engine_stats(self) -> dict[str, object]:
        """Delta/reuse accounting of the incremental engine's last batch.

        Empty when the monitor runs in re-run-everything mode.
        """
        return dict(self._engine.last_batch_stats) if self._engine else {}

    def __len__(self) -> int:
        return self._n_reports

    @property
    def n_batches(self) -> int:
        """Batches ingested so far (including pre-restore ones)."""
        return self._batch_index

    def ingest(self, batch: Iterable[CaseReport]) -> BatchDelta:
        """Append one batch, re-mine, and return the change feed.

        With ``config.clean`` on, every raw row is kept — including
        follow-up versions of an already-seen case — and case-version
        merging / name normalization happen downstream, exactly as a
        one-shot ``Maras.run`` over the same raw reports would do.
        Surveillance results therefore match the batch-free run. With
        cleaning off, rows re-using a seen case id are dropped, since an
        uncleaned :class:`ReportDataset` requires unique case ids.

        ``surveillance.reports_ingested`` counts rows that introduced a
        new case id in either mode; rows carrying a follow-up version of
        a seen case count into ``surveillance.case_updates`` instead.

        With ``config.incremental`` the batch folds through the stateful
        :class:`~repro.incremental.IncrementalEngine` (per-batch cost
        proportional to the delta); the change feed and the result are
        byte-identical to the re-run-everything path.
        """
        rows = list(batch)
        new_rows = [r for r in rows if r.case_id not in self._seen_case_ids]
        n_updates = len(rows) - len(new_rows)
        if self.config.clean:
            # Every raw row is kept — follow-up versions merge into
            # their case downstream — but only rows introducing an
            # unseen case id count as fresh intake.
            kept = rows
        else:
            # An uncleaned ReportDataset requires unique case ids, so
            # rows re-using a seen case id are dropped.
            kept = new_rows
        self._seen_case_ids.update(r.case_id for r in new_rows)
        if not kept and self._last_result is None:
            raise ConfigError("first batch contained no new reports")
        if self._engine is None:
            self._reports.extend(kept)
        self._n_reports += len(kept)
        self._batch_index += 1

        registry = self.registry
        mine_start = time.perf_counter()
        with registry.timer("surveillance.batch"):
            if self._engine is not None:
                result = self._engine.ingest(kept)
            elif self.config.clean:
                # Pass the raw rows: the pipeline cleans (merging case
                # versions), so a ReportDataset — which rejects
                # duplicate case ids — is built only afterwards.
                result = Maras(self.config, registry=registry).run(
                    self._reports
                )
            else:
                result = Maras(self.config, registry=registry).run(
                    ReportDataset(self._reports)
                )
        mine_seconds = time.perf_counter() - mine_start
        new_ranks = {
            cluster_key(result, entry.cluster): entry.rank
            for entry in result.rank(self.method)
        }

        old_ranks = self._last_ranks
        newly_surfaced = tuple(sorted(set(new_ranks) - set(old_ranks)))
        dropped = tuple(sorted(set(old_ranks) - set(new_ranks)))
        risers = tuple(
            (key, old_ranks[key], new_ranks[key])
            for key in sorted(set(new_ranks) & set(old_ranks))
            if old_ranks[key] - new_ranks[key] >= self.riser_threshold
        )
        delta = BatchDelta(
            batch_index=self._batch_index,
            n_reports_total=self._n_reports,
            newly_surfaced=newly_surfaced,
            dropped=dropped,
            risers=risers,
            rank_correlation=(
                spearman_correlation(old_ranks, new_ranks) if old_ranks else None
            ),
        )
        registry.counter("surveillance.batches").inc()
        registry.counter("surveillance.reports_ingested").inc(len(new_rows))
        registry.counter("surveillance.case_updates").inc(n_updates)
        registry.emit(
            "surveillance.batch",
            batch_index=self._batch_index,
            n_reports_total=self._n_reports,
            n_fresh=len(new_rows),
            n_case_updates=n_updates,
            n_workers=self.config.n_workers,
            mine_seconds=mine_seconds,
            n_newly_surfaced=len(newly_surfaced),
            n_dropped=len(dropped),
            n_risers=len(risers),
            rank_correlation=delta.rank_correlation,
        )
        self._last_result = result
        self._last_ranks = new_ranks
        self._history.append(delta)
        return delta

    def ingest_stream(
        self, reports: Iterable[CaseReport], *, batch_size: int = 4096
    ) -> Iterator[BatchDelta]:
        """Feed a report stream through :meth:`ingest` in fixed-size batches.

        The capacity-tier entry point: ``reports`` may be an unbounded
        generator (the streaming synthetic source, a chained
        :func:`~repro.faers.synthetic.quarter_sequence`) — it is consumed
        one batch at a time and never materialized, so the transient
        footprint on top of the monitor's own state is O(batch_size).
        Yields the :class:`BatchDelta` of each batch as it is mined;
        results are identical to calling :meth:`ingest` with the same
        pre-split batches.
        """
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        iterator = iter(reports)
        while batch := list(itertools.islice(iterator, batch_size)):
            yield self.ingest(batch)

    # -- durable-store checkpoint support ------------------------------

    def checkpoint_state(self) -> dict:
        """The restorable stream state, for the durable store.

        Only available in incremental mode: the re-run-everything path
        would have to persist the entire raw history, which is exactly
        the cost model checkpointing exists to avoid. The returned dict
        still holds :class:`~repro.faers.schema.CaseReport` objects —
        :mod:`repro.store.checkpoint` converts to and from JSON.
        """
        if self._engine is None:
            raise StoreError(
                "checkpoints require MarasConfig(incremental=True); the "
                "full-rescan monitor carries no restorable delta state"
            )
        return {
            "batch_index": self._batch_index,
            "n_reports": self._n_reports,
            "seen_case_ids": sorted(self._seen_case_ids),
            "engine": self._engine.checkpoint_state(),
        }

    @classmethod
    def from_checkpoint_state(
        cls,
        config: MarasConfig,
        state: dict,
        *,
        method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
        riser_threshold: int = 5,
        registry: MetricsRegistry | NullRegistry | None = None,
    ) -> "SurveillanceMonitor":
        """Rebuild a monitor whose next :meth:`ingest` continues the stream.

        ``history`` starts empty (it narrates only post-restore batches)
        but the ranking baseline is recomputed from the restored result,
        so the first post-restore delta's risers/surfaced/dropped sets
        and rank correlation match an uninterrupted monitor's.
        """
        if not config.incremental:
            raise StoreError(
                "checkpoints require MarasConfig(incremental=True)"
            )
        monitor = cls(
            config,
            method=method,
            riser_threshold=riser_threshold,
            registry=registry,
        )
        stale = monitor._engine
        monitor._engine = IncrementalEngine.from_state(
            config, state["engine"], registry=monitor.registry
        )
        if stale is not None:
            stale.close()
        monitor._batch_index = int(state["batch_index"])
        monitor._n_reports = int(state["n_reports"])
        monitor._seen_case_ids = set(state["seen_case_ids"])
        result = monitor._engine.result
        assert result is not None  # from_state always recomputes it
        monitor._last_result = result
        monitor._last_ranks = {
            cluster_key(result, entry.cluster): entry.rank
            for entry in result.rank(monitor.method)
        }
        return monitor

    def watchlist(self, top_k: int = 20) -> list[tuple[ClusterKey, int]]:
        """The current top-k ranked clusters as (key, rank) pairs."""
        if self._last_result is None:
            raise ConfigError("no batches ingested yet")
        return sorted(
            ((key, rank) for key, rank in self._last_ranks.items() if rank <= top_k),
            key=lambda pair: pair[1],
        )
