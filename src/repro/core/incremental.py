"""Incremental surveillance over a growing report stream.

The paper's motivation (§1.1): "thousands of reports are added on daily
bases hence the database grows rapidly", and manual re-review of the
whole ranking after every batch is exactly the cost MeDIAR is supposed
to remove. :class:`SurveillanceMonitor` maintains the pipeline over an
append-only report stream and, per ingested batch, reports the *deltas*
a drug-safety evaluator acts on:

- **newly surfaced** clusters — combinations that crossed the support
  threshold in this batch;
- **risers** — clusters whose exclusiveness rank improved by more than
  a configurable number of positions;
- **dropped** clusters — fell back below support;
- **rank stability** — Spearman correlation between consecutive
  rankings, a one-number answer to "did this batch reshuffle my queue?".

Mining is re-run per batch (closed-itemset mining at these scales is
sub-second; see the mining-scaling benchmark); what is *incremental* is
the diffing and the evaluator-facing change feed, which is where the
paper's workflow needs help.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.pipeline import Maras, MarasConfig, MarasResult
from repro.core.ranking import RankingMethod
from repro.errors import ConfigError
from repro.faers.dataset import ReportDataset
from repro.faers.schema import CaseReport

ClusterKey = tuple[tuple[str, ...], tuple[str, ...]]


def cluster_key(result: MarasResult, cluster) -> ClusterKey:
    """A catalog-independent identity for a cluster: (drug labels, ADR labels).

    Item ids are not stable across re-encodings of a grown dataset, so
    deltas are computed on label tuples.
    """
    catalog = result.catalog
    return (
        catalog.labels(cluster.target.antecedent),
        catalog.labels(cluster.target.consequent),
    )


@dataclass(frozen=True, slots=True)
class BatchDelta:
    """What changed when one batch was ingested."""

    batch_index: int
    n_reports_total: int
    newly_surfaced: tuple[ClusterKey, ...]
    dropped: tuple[ClusterKey, ...]
    risers: tuple[tuple[ClusterKey, int, int], ...]  # (key, old rank, new rank)
    rank_correlation: float | None  # None on the first batch

    @property
    def n_clusters_changed(self) -> int:
        return len(self.newly_surfaced) + len(self.dropped) + len(self.risers)


def spearman_correlation(
    old_ranks: dict[ClusterKey, int], new_ranks: dict[ClusterKey, int]
) -> float | None:
    """Spearman ρ over the clusters present in both rankings.

    Returns ``None`` when fewer than three clusters are shared (the
    coefficient is meaningless below that).
    """
    shared = sorted(set(old_ranks) & set(new_ranks))
    if len(shared) < 3:
        return None
    # Re-rank within the shared subset so both sides are permutations.
    old_order = sorted(shared, key=lambda key: old_ranks[key])
    new_order = sorted(shared, key=lambda key: new_ranks[key])
    old_position = {key: i for i, key in enumerate(old_order)}
    new_position = {key: i for i, key in enumerate(new_order)}
    n = len(shared)
    d_squared = sum(
        (old_position[key] - new_position[key]) ** 2 for key in shared
    )
    return 1.0 - 6.0 * d_squared / (n * (n * n - 1))


class SurveillanceMonitor:
    """Maintain MeDIAR results over an append-only report stream.

    >>> monitor = SurveillanceMonitor(MarasConfig(min_support=5, clean=False))
    >>> delta = monitor.ingest(first_batch)
    >>> delta = monitor.ingest(next_batch)
    >>> delta.newly_surfaced
    """

    def __init__(
        self,
        config: MarasConfig | None = None,
        *,
        method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
        riser_threshold: int = 5,
    ) -> None:
        if riser_threshold < 1:
            raise ConfigError(f"riser_threshold must be >= 1, got {riser_threshold}")
        self.config = config if config is not None else MarasConfig()
        self.method = method
        self.riser_threshold = riser_threshold
        self._reports: list[CaseReport] = []
        self._seen_case_ids: set[str] = set()
        self._batch_index = 0
        self._last_result: MarasResult | None = None
        self._last_ranks: dict[ClusterKey, int] = {}
        self._history: list[BatchDelta] = []

    @property
    def result(self) -> MarasResult:
        """The pipeline result over everything ingested so far."""
        if self._last_result is None:
            raise ConfigError("no batches ingested yet")
        return self._last_result

    @property
    def history(self) -> Sequence[BatchDelta]:
        return tuple(self._history)

    def __len__(self) -> int:
        return len(self._reports)

    def ingest(self, batch: Iterable[CaseReport]) -> BatchDelta:
        """Append one batch, re-mine, and return the change feed."""
        fresh = [r for r in batch if r.case_id not in self._seen_case_ids]
        for report in fresh:
            self._seen_case_ids.add(report.case_id)
        if not fresh and self._last_result is None:
            raise ConfigError("first batch contained no new reports")
        self._reports.extend(fresh)
        self._batch_index += 1

        result = Maras(self.config).run(ReportDataset(self._reports))
        new_ranks = {
            cluster_key(result, entry.cluster): entry.rank
            for entry in result.rank(self.method)
        }

        old_ranks = self._last_ranks
        newly_surfaced = tuple(sorted(set(new_ranks) - set(old_ranks)))
        dropped = tuple(sorted(set(old_ranks) - set(new_ranks)))
        risers = tuple(
            (key, old_ranks[key], new_ranks[key])
            for key in sorted(set(new_ranks) & set(old_ranks))
            if old_ranks[key] - new_ranks[key] >= self.riser_threshold
        )
        delta = BatchDelta(
            batch_index=self._batch_index,
            n_reports_total=len(self._reports),
            newly_surfaced=newly_surfaced,
            dropped=dropped,
            risers=risers,
            rank_correlation=(
                spearman_correlation(old_ranks, new_ranks) if old_ranks else None
            ),
        )
        self._last_result = result
        self._last_ranks = new_ranks
        self._history.append(delta)
        return delta

    def watchlist(self, top_k: int = 20) -> list[tuple[ClusterKey, int]]:
        """The current top-k ranked clusters as (key, rank) pairs."""
        if self._last_result is None:
            raise ConfigError("no batches ingested yet")
        return sorted(
            ((key, rank) for key, rank in self._last_ranks.items() if rank <= top_k),
            key=lambda pair: pair[1],
        )
