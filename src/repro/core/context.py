"""Contextual rules and Multi-level Contextual Association Clusters (§3.5).

A *contextual rule* of a target drug-ADR rule ``A ⇒ B`` is any rule
``X ⇒ B`` with ``X`` a proper non-empty subset of ``A`` (Def. 3.5.1);
the *context* is the complete set of them, one per element of
``P(A) − {A, ∅}`` (Def. 3.5.2). An :class:`MCAC` bundles the target with
its context, grouped by the cardinality of the contextual antecedent —
exactly Table 3.1's layout.

Contextual rules are *measurements*, not mined discoveries: their
metrics are computed directly from the database even when the
corresponding itemset is not closed, because the exclusiveness score
needs the strength of every subset regardless of whether the subset
would have survived mining on its own.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from itertools import combinations

from repro.errors import ConfigError
from repro.mining.measures import RuleMetrics
from repro.mining.rules import AssociationRule
from repro.mining.transactions import (
    Itemset,
    SupportCounter,
    TransactionDatabase,
)


@dataclass(frozen=True, slots=True)
class ContextualRule:
    """One sub-rule ``X ⇒ B`` of a target's context.

    ``cardinality`` is |X| — the grouping key of the MCAC display and
    the level index ``k`` of the exclusiveness decay.
    """

    antecedent: Itemset
    consequent: Itemset
    metrics: RuleMetrics

    @property
    def cardinality(self) -> int:
        return len(self.antecedent)

    def describe(self, catalog) -> str:
        left = " ".join(f"[{label}]" for label in catalog.labels(self.antecedent))
        right = " ".join(f"[{label}]" for label in catalog.labels(self.consequent))
        return f"{left} => {right}"


@dataclass(frozen=True, slots=True)
class MCAC:
    """A target drug-ADR rule plus its complete multi-level context.

    ``levels`` maps antecedent cardinality ``k`` (1 ≤ k < n_drugs) to
    that level's contextual rules, each level sorted by descending
    confidence (the order the glyph renders them in).
    """

    target: AssociationRule
    levels: dict[int, tuple[ContextualRule, ...]]

    @property
    def n_drugs(self) -> int:
        return len(self.target.antecedent)

    def stable_id(self, catalog) -> str:
        """Deterministic content-hash id of this cluster (``mcac-…``).

        Depends only on the target rule's drug/ADR *labels*, so the same
        cluster keeps its id across re-encodings, quarters, and export
        round-trips — unlike its position in a result's cluster list.
        """
        from repro.core.ids import cluster_id

        return cluster_id(
            catalog.labels(self.target.antecedent),
            catalog.labels(self.target.consequent),
        )

    @property
    def context_size(self) -> int:
        """|P(A)| − 2 = 2^n − 2 contextual rules in a complete context."""
        return sum(len(rules) for rules in self.levels.values())

    def context_values(self, measure: str = "confidence") -> dict[int, list[float]]:
        """Per-level measure values v_k, in the stored (descending) order."""
        return {
            k: [rule.metrics.value(measure) for rule in rules]
            for k, rules in self.levels.items()
        }

    def all_context_rules(self) -> list[ContextualRule]:
        """Every contextual rule, deepest level first (Table 3.1 order)."""
        rules: list[ContextualRule] = []
        for level in sorted(self.levels, reverse=True):
            rules.extend(self.levels[level])
        return rules

    def describe(self, catalog) -> str:
        """Render in the layout of Table 3.1."""
        lines = [f"R    {self.target.describe(catalog)}"]
        for level in sorted(self.levels, reverse=True):
            for index, rule in enumerate(self.levels[level], start=1):
                lines.append(
                    f"R~{level}{index}  {rule.describe(catalog)}"
                    f"  (conf={rule.metrics.confidence:.3f})"
                )
        return "\n".join(lines)


def build_cluster(
    target: AssociationRule,
    database: TransactionDatabase,
    *,
    oracle: SupportCounter | None = None,
) -> MCAC:
    """Build the complete MCAC of one multi-drug target rule.

    A complete context needs the support of every one of the target's
    ``2^n − 2`` proper antecedent subsets (joined with the consequent
    and alone); ``oracle`` routes those queries through a shared
    memoized bitset counter, so subsets shared between overlapping
    clusters — and the consequent itself, queried by every cluster with
    the same ADR set — are counted once per pipeline run instead of
    once per cluster.

    Raises :class:`~repro.errors.ConfigError` for a single-drug target:
    its context would be empty and the paper only evaluates rules with
    more than one drug (§3.4).
    """
    n_drugs = len(target.antecedent)
    if n_drugs < 2:
        raise ConfigError(
            "MCAC requires a multi-drug target rule "
            f"(got {n_drugs} antecedent item)"
        )
    counts: SupportCounter = database if oracle is None else oracle
    antecedent_items = sorted(target.antecedent)
    consequent = target.consequent
    n_consequent = counts.support(consequent)
    n_total = len(database)

    levels: dict[int, tuple[ContextualRule, ...]] = {}
    for cardinality in range(1, n_drugs):
        rules = []
        for subset in combinations(antecedent_items, cardinality):
            antecedent = frozenset(subset)
            metrics = RuleMetrics.from_counts(
                n_joint=counts.support(antecedent | consequent),
                n_antecedent=counts.support(antecedent),
                n_consequent=n_consequent,
                n_total=n_total,
            )
            rules.append(ContextualRule(antecedent, consequent, metrics))
        rules.sort(key=lambda r: (-r.metrics.confidence, sorted(r.antecedent)))
        levels[cardinality] = tuple(rules)
    return MCAC(target=target, levels=levels)


def build_clusters(
    targets: Sequence[AssociationRule],
    database: TransactionDatabase,
    *,
    oracle: SupportCounter | None = None,
) -> list[MCAC]:
    """Build MCACs for every multi-drug rule of ``targets``.

    Single-drug rules are skipped silently — the caller's rule list may
    legitimately mix cardinalities (the mining step does). ``oracle``
    is shared across all clusters, which is where the memoized support
    cache earns its keep: overlapping targets share antecedent subsets.
    """
    return [
        build_cluster(rule, database, oracle=oracle)
        for rule in targets
        if len(rule.antecedent) >= 2
    ]
