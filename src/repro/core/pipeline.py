"""The end-to-end MeDIAR/MARAS pipeline (§5.2's four mining steps).

:class:`Maras` wires the substrates together:

1. **prepare** — clean the raw case reports
   (:class:`~repro.faers.cleaning.ReportCleaner`) and encode them as a
   transaction database with drug/ADR item kinds;
2. **mine** — closed frequent itemsets
   (:func:`~repro.mining.fpclose.fpclose`) at a low support threshold;
3. **filter** — keep rules with drug-only antecedents and ADR-only
   consequents (:func:`~repro.mining.rules.partitioned_rules`), restrict
   to multi-drug rules;
4. **cluster & rank** — build each rule's MCAC and rank by the
   exclusiveness measure.

The :class:`MarasResult` keeps the encoded dataset, so every ranked
cluster can be drilled down to its supporting source reports (§4.1) and
re-ranked under any method without re-mining.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.association import DrugADRAssociation, SupportType
from repro.core.context import MCAC, build_clusters
from repro.core.ranking import RankedCluster, RankingMethod, rank_clusters, ranking_table
from repro.errors import ConfigError
from repro.faers.cleaning import (
    CleaningStats,
    ReportCleaner,
    SpellingCorrector,
    normalize_adr_term,
    normalize_drug_name,
)
from repro.faers.dataset import ADR_KIND, DRUG_KIND, EncodedDataset, ReportDataset
from repro.faers.schema import CaseReport
from repro.mining.bitsets import SupportOracle
from repro.mining.fpclose import fpclose, fpclose_reference
from repro.mining.fpgrowth import fpgrowth
from repro.mining.rules import (
    count_all_splits,
    count_partitioned_splits,
    partitioned_rules,
)
from repro.mining.transactions import canonical_itemset_order, resolve_min_support
from repro.obs import NULL_REGISTRY, MetricsRegistry, MetricsSnapshot, NullRegistry
from repro.obs.metrics import use_registry
from repro.parallel.miner import MAX_WORKERS, fpclose_sharded, resolve_workers
from repro.parallel.sharding import SHARD_STRATEGIES, plan_shards


@dataclass(frozen=True, slots=True)
class MarasConfig:
    """Knobs of one pipeline run.

    Attributes
    ----------
    min_support:
        Absolute count (int) or fraction (float). The paper mines at a
        deliberately *low* support so rare interactions are not lost.
    max_itemset_len:
        Cardinality cap on mined itemsets (drugs + ADRs combined);
        bounds both runtime and rule length.
    max_drugs:
        Evaluate combinations of 2..max_drugs drugs (the paper's tables
        and user study go up to 4).
    min_confidence:
        Rule-level confidence floor applied at generation (0 keeps all).
    clean:
        Run the cleaning pass (merge case versions, drop duplicates,
        normalize names) before encoding. Disable only for data that is
        already canonical — e.g. the synthetic generator's output.
    count_rule_space:
        Also mine *all* frequent itemsets and count the traditional and
        filtered rule spaces (the Fig 5.1 series). Costs a second mining
        pass; off by default.
    use_bitsets:
        Run the mining/measurement path over integer bitmasks: the
        bitset-native closed miner plus one shared, memoized
        :class:`~repro.mining.bitsets.SupportOracle` threaded through
        rule generation, support classification and MCAC construction.
        ``False`` selects the set-based reference path — same results
        bit for bit (the equivalence tests assert it), several times
        slower; it exists for cross-checking and benchmarking.
    theta, decay:
        Exclusiveness parameters forwarded to the rankers.
    n_workers:
        Number of worker processes for the mining stage. ``1`` (the
        default) runs today's in-process path; ``N > 1`` partitions the
        dataset into shards, mines them in ``N`` processes, and merges
        the per-shard results exactly (:mod:`repro.parallel`); ``0``
        means one worker per CPU core. Results are byte-identical for
        every value — the differential harness in ``tests/parallel``
        enforces it.
    shard_strategy:
        How the parallel path partitions reports: ``"hash"`` (stable
        hash of the case id) or ``"quarter"`` (one shard per distinct
        quarter label). Ignored when ``n_workers == 1``.
    incremental:
        Make :class:`~repro.core.incremental.SurveillanceMonitor` fold
        batches through the stateful
        :class:`~repro.incremental.IncrementalEngine` (per-batch cost
        proportional to the delta) instead of re-running the full
        pipeline over the accumulated history. One-shot ``Maras.run``
        calls are unaffected by the flag. Requires ``use_bitsets=True``
        and is incompatible with ``count_rule_space`` (the rule-space
        census is a whole-history measurement).
    incremental_rebuild_fraction:
        When a batch's delta touches more than this fraction of the
        post-batch database, the incremental engine falls back to a
        full rebuild: near-total deltas make delta-restricted mining
        pure overhead. ``1.0`` disables the fallback.
    """

    min_support: int | float = 5
    max_itemset_len: int | None = 8
    max_drugs: int = 4
    min_confidence: float = 0.0
    clean: bool = True
    count_rule_space: bool = False
    use_bitsets: bool = True
    theta: float = 0.5
    decay: str = "linear"
    n_workers: int = 1
    shard_strategy: str = "hash"
    incremental: bool = False
    incremental_rebuild_fraction: float = 0.5

    def __post_init__(self) -> None:
        support = self.min_support
        if isinstance(support, bool) or not isinstance(support, (int, float)):
            raise ConfigError(
                f"min_support must be an int or float, got {support!r}"
            )
        if isinstance(support, int):
            if support < 1:
                raise ConfigError(
                    f"absolute min_support must be >= 1, got {support}"
                )
        elif not 0.0 < support <= 1.0:
            raise ConfigError(
                f"fractional min_support must be in (0, 1], got {support}"
            )
        if self.max_drugs < 2:
            raise ConfigError(f"max_drugs must be >= 2, got {self.max_drugs}")
        if self.max_itemset_len is not None and self.max_itemset_len < 3:
            raise ConfigError(
                "max_itemset_len must allow at least 2 drugs + 1 ADR, "
                f"got {self.max_itemset_len}"
            )
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ConfigError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if isinstance(self.n_workers, bool) or not isinstance(self.n_workers, int):
            raise ConfigError(
                f"n_workers must be an int, got {self.n_workers!r}"
            )
        if self.n_workers < 0:
            raise ConfigError(
                f"n_workers must be >= 0 (0 = one per core), got {self.n_workers}"
            )
        if self.n_workers > MAX_WORKERS:
            raise ConfigError(
                f"n_workers must be <= {MAX_WORKERS}, got {self.n_workers} "
                "(use 0 for one worker per core)"
            )
        if self.shard_strategy not in SHARD_STRATEGIES:
            raise ConfigError(
                f"unknown shard strategy {self.shard_strategy!r}; "
                f"choose from {SHARD_STRATEGIES}"
            )
        if self.incremental and not self.use_bitsets:
            raise ConfigError(
                "incremental surveillance requires use_bitsets=True"
            )
        if self.incremental and self.count_rule_space:
            raise ConfigError(
                "incremental surveillance is incompatible with "
                "count_rule_space"
            )
        if not 0.0 < self.incremental_rebuild_fraction <= 1.0:
            raise ConfigError(
                "incremental_rebuild_fraction must be in (0, 1], got "
                f"{self.incremental_rebuild_fraction}"
            )


@dataclass(frozen=True, slots=True)
class RuleSpaceCounts:
    """The three series of Fig 5.1 for one quarter."""

    total_rules: int
    filtered_rules: int
    mcacs: int


class _KindResolver:
    """Immutable query→item-id resolution structures for one item kind.

    Built once from a catalog snapshot (label map plus the deletion-
    neighborhood :class:`SpellingCorrector` index) and then only read,
    so any number of threads can resolve queries through it without
    synchronization. Construction is the expensive part — it walks every
    label of the kind — which is why :class:`MarasResult` builds it
    lazily and caches it.
    """

    __slots__ = ("_kind", "_normalizer", "_id_by_label", "_corrector")

    def __init__(self, catalog, kind: str, normalizer) -> None:
        self._kind = kind
        self._normalizer = normalizer
        self._id_by_label = {
            catalog.label(item_id): item_id for item_id in catalog.ids_of_kind(kind)
        }
        self._corrector = (
            SpellingCorrector(self._id_by_label) if self._id_by_label else None
        )

    def resolve(self, raw: str) -> int | None:
        """Map one verbatim query string to an item id of this kind.

        Tries the raw string, then its normalized form, then an
        unambiguous edit-distance-1 correction against the kind's
        labels. Returns ``None`` when nothing matches.
        """
        normalized = self._normalizer(raw)
        for candidate in (raw, normalized):
            item_id = self._id_by_label.get(candidate)
            if item_id is not None:
                return item_id
        if not normalized or self._corrector is None:
            return None
        return self._id_by_label.get(self._corrector.correct(normalized))


class MarasResult:
    """Everything one pipeline run produced, with drill-down helpers."""

    def __init__(
        self,
        config: MarasConfig,
        dataset: ReportDataset,
        encoded: EncodedDataset,
        associations: list[DrugADRAssociation],
        clusters: list[MCAC],
        cleaning_stats: CleaningStats | None,
        rule_counts: RuleSpaceCounts | None,
        metrics: MetricsSnapshot | None = None,
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.encoded = encoded
        self.associations = associations
        self.clusters = clusters
        self.cleaning_stats = cleaning_stats
        self.rule_counts = rule_counts
        #: Stage timings and counters of the run that produced this
        #: result; ``None`` unless the pipeline ran with a real
        #: :class:`~repro.obs.MetricsRegistry`.
        self.metrics = metrics
        # Lazily-built per-kind query resolvers (search is called by
        # concurrent server threads; the lock makes first-use
        # construction happen exactly once, and the built resolvers are
        # immutable thereafter).
        self._resolver_lock = threading.Lock()
        self._resolvers: dict[str, _KindResolver] = {}

    @property
    def catalog(self):
        return self.encoded.catalog

    def rank(
        self,
        method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
        *,
        top_k: int | None = None,
    ) -> list[RankedCluster]:
        """Rank this run's clusters under one method."""
        return rank_clusters(
            self.clusters,
            method,
            top_k=top_k,
            theta=self.config.theta,
            decay=self.config.decay,
        )

    def ranking_table(self, *, top_k: int = 5):
        """Table 5.2: the four rankings side by side."""
        return ranking_table(
            self.clusters,
            top_k=top_k,
            theta=self.config.theta,
            decay=self.config.decay,
        )

    def search(
        self,
        *,
        drug: str | None = None,
        adr: str | None = None,
    ) -> list[MCAC]:
        """§4.1 highlighting: clusters mentioning a drug and/or an ADR.

        Queries may be verbatim strings: each is passed through the
        matching normalizer of :mod:`repro.faers.cleaning` (case,
        punctuation, dosage tails) and, when still unknown, through
        unambiguous edit-distance-1 correction against the catalog's own
        labels — so ``search(drug="aspirin 81 mg")`` and
        ``search(drug="ASPIRN")`` both find the ``ASPIRIN`` clusters.
        """
        if drug is None and adr is None:
            raise ConfigError("search needs a drug, an adr, or both")
        drug_id = (
            self._resolver_for(DRUG_KIND).resolve(drug)
            if drug is not None
            else None
        )
        adr_id = (
            self._resolver_for(ADR_KIND).resolve(adr)
            if adr is not None
            else None
        )
        if drug is not None and drug_id is None:
            return []
        if adr is not None and adr_id is None:
            return []
        matches = []
        for cluster in self.clusters:
            if drug_id is not None and drug_id not in cluster.target.antecedent:
                continue
            if adr_id is not None and adr_id not in cluster.target.consequent:
                continue
            matches.append(cluster)
        return matches

    def _resolver_for(self, kind: str) -> _KindResolver:
        """The cached query resolver of ``kind``, built on first use.

        Safe for concurrent readers: resolvers are immutable once
        constructed, and the lock serializes only the one-time build
        (previously every ``search`` call rebuilt the label list and
        the spelling-corrector's deletion index from scratch).
        """
        resolver = self._resolvers.get(kind)
        if resolver is not None:
            return resolver
        with self._resolver_lock:
            resolver = self._resolvers.get(kind)
            if resolver is None:
                normalizer = (
                    normalize_drug_name if kind == DRUG_KIND else normalize_adr_term
                )
                resolver = _KindResolver(self.catalog, kind, normalizer)
                self._resolvers[kind] = resolver
        return resolver

    def supporting_reports(self, cluster: MCAC) -> list[CaseReport]:
        """§4.1 drill-down: the raw reports behind one cluster's target rule."""
        return self.encoded.supporting_reports(cluster.target.items)


class Maras:
    """The MeDIAR/MARAS analytics system.

    >>> from repro.faers import SyntheticConfig, SyntheticFAERSGenerator
    >>> reports = SyntheticFAERSGenerator(SyntheticConfig(n_reports=800)).generate()
    >>> result = Maras(MarasConfig(min_support=4, clean=False)).run(reports)
    >>> top = result.rank(top_k=5)

    Pass a :class:`~repro.obs.MetricsRegistry` to profile the run:
    per-stage timers and item/rule/cluster counters land in
    :attr:`MarasResult.metrics` (and in the registry's sink, if any).
    The default is the no-op registry, which costs nothing.
    """

    def __init__(
        self,
        config: MarasConfig | None = None,
        *,
        registry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else MarasConfig()
        self.registry = registry if registry is not None else NULL_REGISTRY

    def run(
        self, reports: Sequence[CaseReport] | ReportDataset
    ) -> MarasResult:
        """Execute the full pipeline over ``reports``.

        ``config.clean`` is honored for *both* input shapes: a raw
        report sequence and an already-built :class:`ReportDataset` are
        cleaned identically, so wrapping reports in a dataset can never
        silently bypass §5.2's preparation step (case-version merging,
        name normalization). Callers holding pre-cleaned data should run
        with ``clean=False``.
        """
        registry = self.registry
        with use_registry(registry):
            return self._run(reports, registry)

    def _run(
        self,
        reports: Sequence[CaseReport] | ReportDataset,
        registry: MetricsRegistry | NullRegistry,
    ) -> MarasResult:
        config = self.config
        cleaning_stats: CleaningStats | None = None

        with registry.timer("pipeline.prepare"):
            if isinstance(reports, ReportDataset) and not config.clean:
                dataset = reports
                # Count the input even on the pass-through path, so
                # profiles from pre-built datasets report their true
                # input size.
                registry.counter("pipeline.reports_in").inc(len(dataset))
            else:
                rows = list(reports)
                registry.counter("pipeline.reports_in").inc(len(rows))
                if config.clean:
                    rows, cleaning_stats = ReportCleaner().clean(rows)
                if isinstance(reports, ReportDataset):
                    dataset = ReportDataset(rows, quarter=reports.quarter)
                else:
                    dataset = ReportDataset(rows)
            encoded = dataset.encode()
            database = encoded.database
        registry.counter("pipeline.transactions").inc(len(database))

        # One bitset index + memoized support cache for the whole run:
        # the miner, the rule generators, the support classifier and
        # every MCAC share the same mask table and answer cache.
        oracle: SupportOracle | None = None
        if config.use_bitsets:
            with registry.timer("pipeline.index"):
                oracle = SupportOracle.for_database(database)

        n_workers = resolve_workers(config.n_workers)
        if n_workers > 1 and len(database) > 1:
            with registry.timer("pipeline.mine"):
                closed = fpclose_sharded(
                    database,
                    resolve_min_support(config.min_support, len(database)),
                    max_len=config.max_itemset_len,
                    n_workers=n_workers,
                    plan=plan_shards(dataset, n_workers, config.shard_strategy),
                    oracle=oracle,
                )
        else:
            miner = fpclose if config.use_bitsets else fpclose_reference
            with registry.timer("pipeline.mine"):
                closed = miner(
                    database,
                    config.min_support,
                    max_len=config.max_itemset_len,
                )
        # Canonical order on every path: enumeration order would
        # otherwise leak the mining backend into rule/cluster/export
        # order and break the byte-identical guarantee.
        closed = canonical_itemset_order(closed)
        registry.counter("pipeline.closed_itemsets").inc(len(closed))

        with registry.timer("pipeline.filter"):
            rules = partitioned_rules(
                closed,
                database,
                antecedent_kind=DRUG_KIND,
                consequent_kind=ADR_KIND,
                min_confidence=config.min_confidence,
                oracle=oracle,
            )
            multi_drug_rules = [
                rule
                for rule in rules
                if 2 <= len(rule.antecedent) <= config.max_drugs
            ]
            associations = [
                DrugADRAssociation.from_rule(rule, database, oracle=oracle)
                for rule in multi_drug_rules
            ]
        registry.counter("pipeline.rules").inc(len(rules))
        registry.counter("pipeline.multi_drug_rules").inc(len(multi_drug_rules))

        # Every closed rule must classify as supported — this is
        # Lemma 3.4.2 holding at runtime, not a filter.
        unsupported = [
            a for a in associations if a.support_type is SupportType.UNSUPPORTED
        ]
        if unsupported:
            raise ConfigError(
                f"internal error: {len(unsupported)} closed rules classified "
                "as unsupported; Lemma 3.4.2 violated"
            )

        with registry.timer("pipeline.cluster"):
            clusters = build_clusters(multi_drug_rules, database, oracle=oracle)
        registry.counter("pipeline.clusters").inc(len(clusters))
        if oracle is not None:
            registry.counter("oracle.support_hits").inc(oracle.hits)
            registry.counter("oracle.support_misses").inc(oracle.misses)

        rule_counts: RuleSpaceCounts | None = None
        if config.count_rule_space:
            with registry.timer("pipeline.count_rule_space"):
                all_frequent = fpgrowth(
                    database, config.min_support, max_len=config.max_itemset_len
                )
                catalog = encoded.catalog
                rule_counts = RuleSpaceCounts(
                    total_rules=count_all_splits(all_frequent),
                    filtered_rules=count_partitioned_splits(
                        all_frequent,
                        catalog.ids_of_kind(DRUG_KIND),
                        catalog.ids_of_kind(ADR_KIND),
                    ),
                    mcacs=len(clusters),
                )

        registry.emit(
            "pipeline.run",
            n_reports=len(dataset),
            n_transactions=len(database),
            n_closed_itemsets=len(closed),
            n_rules=len(rules),
            n_multi_drug_rules=len(multi_drug_rules),
            n_clusters=len(clusters),
        )
        return MarasResult(
            config=config,
            dataset=dataset,
            encoded=encoded,
            associations=associations,
            clusters=clusters,
            cleaning_stats=cleaning_stats,
            rule_counts=rule_counts,
            metrics=registry.snapshot() if registry.enabled else None,
        )
