"""Cluster similarity (§4.1: "highlight drug-drug interactions that are
similar to each other based on the defined interestingness criteria").

Two clusters can be similar in two senses, both useful to an analyst:

- **content similarity** — they involve overlapping drugs and reactions
  (Jaccard over the target rule's labels); the analyst reviewing one
  wants the near-misses next to it;
- **shape similarity** — their glyphs look alike: comparable target
  strength against a comparable context profile, regardless of which
  drugs are involved. Shape is summarized by a fixed-length descriptor
  (target confidence, per-level context mean/max/min, exclusiveness),
  compared with Euclidean distance mapped to (0, 1].

:func:`similar_clusters` ranks a result's other clusters against a
query cluster by a blend of the two.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.context import MCAC
from repro.core.exclusiveness import ExclusivenessConfig, exclusiveness
from repro.errors import ConfigError

_DESCRIPTOR_LEVELS = 3  # context levels summarized (covers up to 4-drug rules)


def shape_descriptor(cluster: MCAC) -> tuple[float, ...]:
    """Fixed-length numeric summary of a cluster's glyph shape."""
    values: list[float] = [cluster.target.metrics.confidence]
    context = cluster.context_values("confidence")
    for level in range(1, _DESCRIPTOR_LEVELS + 1):
        level_values = context.get(level, [])
        if level_values:
            values.extend(
                (
                    sum(level_values) / len(level_values),
                    max(level_values),
                    min(level_values),
                )
            )
        else:
            values.extend((0.0, 0.0, 0.0))
    values.append(exclusiveness(cluster, ExclusivenessConfig()))
    return tuple(values)


def shape_similarity(left: MCAC, right: MCAC) -> float:
    """Glyph-shape similarity in (0, 1]; 1 means identical descriptors."""
    a = shape_descriptor(left)
    b = shape_descriptor(right)
    distance = math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))
    return 1.0 / (1.0 + distance)


def content_similarity(left: MCAC, right: MCAC, catalog) -> float:
    """Jaccard over the two target rules' drug+ADR label sets."""
    items_left = set(catalog.labels(left.target.items))
    items_right = set(catalog.labels(right.target.items))
    union = items_left | items_right
    if not union:
        return 0.0
    return len(items_left & items_right) / len(union)


@dataclass(frozen=True, slots=True)
class SimilarCluster:
    """One neighbor of a query cluster."""

    cluster: MCAC
    similarity: float
    content: float
    shape: float


def similar_clusters(
    clusters: Sequence[MCAC],
    query: MCAC,
    catalog,
    *,
    top_k: int = 5,
    content_weight: float = 0.5,
) -> list[SimilarCluster]:
    """The ``top_k`` clusters most similar to ``query``.

    ``content_weight`` blends content vs shape similarity (0 = shape
    only, 1 = content only). The query itself is excluded by identity,
    not equality — a distinct cluster with an identical rule is a
    legitimate (and interesting) neighbor.
    """
    if not 0.0 <= content_weight <= 1.0:
        raise ConfigError(
            f"content_weight must be in [0, 1], got {content_weight}"
        )
    if top_k < 1:
        raise ConfigError(f"top_k must be >= 1, got {top_k}")
    neighbors: list[SimilarCluster] = []
    for cluster in clusters:
        if cluster is query:
            continue
        content = content_similarity(query, cluster, catalog)
        shape = shape_similarity(query, cluster)
        blended = content_weight * content + (1.0 - content_weight) * shape
        neighbors.append(
            SimilarCluster(
                cluster=cluster,
                similarity=blended,
                content=content,
                shape=shape,
            )
        )
    neighbors.sort(
        key=lambda n: (
            -n.similarity,
            sorted(n.cluster.target.antecedent),
            sorted(n.cluster.target.consequent),
        )
    )
    return neighbors[:top_k]
