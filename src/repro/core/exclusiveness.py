"""The exclusiveness interestingness score (§3.6).

The intuition: ADRs caused by a genuine drug-drug interaction are
*exclusive* to the complete combination — every proper subset of the
drugs is weakly associated with the same ADRs. The score contrasts the
target rule's strength ``p`` with the strengths of its contextual rules,
in three refinements:

- :func:`exclusiveness_simple` — Eq. 3.3, ``p − mean(context)``;
- :func:`exclusiveness_cv` — Eq. 3.4, the same with a coefficient-of-
  variation penalty ``(1 − θ·Cv)`` so a context mixing one very strong
  sub-rule with weak ones is not excused by its low mean;
- :func:`exclusiveness` — Eq. 3.5, the full per-level form: contrast
  computed per antecedent-cardinality level ``k``, weighted by a decay
  ``fd(k)`` (single-drug context matters most), CV-penalized per level,
  and averaged over levels. ``confidence`` can be swapped for ``lift``
  or any other :class:`~repro.mining.measures.RuleMetrics` field.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.core.context import MCAC
from repro.mining.measures import coefficient_of_variation

DecayFunction = Callable[[int, int], float]


def linear_decay(cardinality: int, n_drugs: int) -> float:
    """The paper's decay: weight ``1 − (k−1)/n`` for level ``k`` of an n-drug rule."""
    return 1.0 - (cardinality - 1) / n_drugs


def no_decay(cardinality: int, n_drugs: int) -> float:
    """Every context level weighted equally (ablation baseline)."""
    return 1.0


def exponential_decay(cardinality: int, n_drugs: int) -> float:
    """Halve the weight per extra drug in the contextual antecedent (ablation)."""
    return 0.5 ** (cardinality - 1)


DECAY_FUNCTIONS: Mapping[str, DecayFunction] = {
    "linear": linear_decay,
    "none": no_decay,
    "exponential": exponential_decay,
}


@dataclass(frozen=True, slots=True)
class ExclusivenessConfig:
    """Parameters of the Eq. 3.5 score.

    Attributes
    ----------
    measure:
        Which :class:`RuleMetrics` field to contrast — the paper
        evaluates ``"confidence"`` and ``"lift"``.
    theta:
        CV-penalty strength θ ∈ [0, 1]; 0 disables the penalty
        (reducing Eq. 3.4 to Eq. 3.3 and the per-level terms of Eq. 3.5
        to plain decayed contrasts).
    decay:
        Name of the decay function (key of :data:`DECAY_FUNCTIONS`).
    """

    measure: str = "confidence"
    theta: float = 0.5
    decay: str = "linear"

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigError(f"theta must be in [0, 1], got {self.theta}")
        if self.decay not in DECAY_FUNCTIONS:
            raise ConfigError(
                f"unknown decay {self.decay!r}; expected one of "
                f"{sorted(DECAY_FUNCTIONS)}"
            )

    @property
    def decay_function(self) -> DecayFunction:
        return DECAY_FUNCTIONS[self.decay]


def exclusiveness_simple(p: float, context_values: list[float]) -> float:
    """Eq. 3.3: target strength minus the mean context strength.

    An empty context (which the MCAC builder never produces for a
    multi-drug rule) contributes a mean of 0, i.e. the score degenerates
    to ``p``.
    """
    if not context_values:
        return p
    return p - sum(context_values) / len(context_values)


def exclusiveness_cv(
    p: float, context_values: list[float], theta: float = 0.5
) -> float:
    """Eq. 3.4: the mean-contrast score with the CV penalty ``(1 − θ·Cv)``."""
    if not 0.0 <= theta <= 1.0:
        raise ConfigError(f"theta must be in [0, 1], got {theta}")
    base = exclusiveness_simple(p, context_values)
    return base * (1.0 - theta * coefficient_of_variation(context_values))


def exclusiveness(
    cluster: MCAC, config: ExclusivenessConfig | None = None
) -> float:
    """Eq. 3.5: the full multi-level exclusiveness score of one MCAC.

    .. math::

        \\frac{1}{|V|} \\sum_k (p - \\bar v_k) \\cdot f_d(k)
        \\cdot (1 - \\theta \\cdot C_v(v_k))

    where ``v_k`` is the set of measure values of the level-``k``
    contextual rules, ``|V|`` the number of levels, ``p`` the target's
    measure value, ``f_d`` the decay and ``C_v`` the (clamped)
    coefficient of variation.
    """
    config = config if config is not None else ExclusivenessConfig()
    p = cluster.target.metrics.value(config.measure)
    levels = cluster.context_values(config.measure)
    if not levels:
        raise ConfigError(
            "cluster has no context levels; MCACs of multi-drug rules "
            "always have at least level 1"
        )
    decay = config.decay_function
    n_drugs = cluster.n_drugs
    total = 0.0
    for cardinality, values in levels.items():
        mean = sum(values) / len(values)
        penalty = 1.0 - config.theta * coefficient_of_variation(values)
        total += (p - mean) * decay(cardinality, n_drugs) * penalty
    return total / len(levels)


def score_clusters(
    clusters: list[MCAC], config: ExclusivenessConfig | None = None
) -> list[tuple[MCAC, float]]:
    """Score every cluster, returned in descending score order."""
    config = config if config is not None else ExclusivenessConfig()
    scored = [(cluster, exclusiveness(cluster, config)) for cluster in clusters]
    scored.sort(key=lambda pair: -pair[1])
    return scored
