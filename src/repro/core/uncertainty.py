"""Bootstrap uncertainty for exclusiveness scores.

The thesis ranks clusters by point-estimate exclusiveness; at the low
supports pharmacovigilance forces (a handful of reports per rule), two
clusters 0.02 apart are statistically indistinguishable. This module
puts a case-resampling bootstrap interval around each score so the
ranking can be read honestly.

The resampling exploits the score's structure: for a cluster with drug
set ``A`` and ADR set ``B``, every report matters only through its
*pattern* — which subset of ``A`` it contains and whether it contains
all of ``B``. Patterns are counted once (≤ 2^|A|·2 cells), each
bootstrap replicate draws a multinomial over the cells, and all subset
supports — hence the target and every contextual confidence, hence the
Eq. 3.5 score — are recomputed from the resampled cells. Hundreds of
replicates cost milliseconds.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.context import MCAC
from repro.core.exclusiveness import ExclusivenessConfig
from repro.errors import ConfigError
from repro.mining.measures import coefficient_of_variation
from repro.mining.transactions import Itemset, TransactionDatabase


@dataclass(frozen=True, slots=True)
class ScoreInterval:
    """Point estimate with a percentile bootstrap interval."""

    point: float
    low: float
    high: float
    confidence_level: float
    n_bootstrap: int

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ConfigError(f"interval bounds inverted: {self.low} > {self.high}")

    @property
    def excludes_zero(self) -> bool:
        """True when the whole interval sits on one side of zero."""
        return self.low > 0.0 or self.high < 0.0

    @property
    def width(self) -> float:
        return self.high - self.low


def _pattern_counts(
    database: TransactionDatabase, antecedent: Itemset, consequent: Itemset
) -> tuple[list[tuple[Itemset, bool]], np.ndarray]:
    """Count reports by (A-subset contained, B fully contained)."""
    counts: dict[tuple[Itemset, bool], int] = {}
    for transaction in database:
        key = (transaction & antecedent, consequent <= transaction)
        counts[key] = counts.get(key, 0) + 1
    keys = sorted(counts, key=lambda k: (sorted(k[0]), k[1]))
    return keys, np.array([counts[k] for k in keys], dtype=np.int64)


def _score_from_cells(
    keys: Sequence[tuple[Itemset, bool]],
    cells: np.ndarray,
    antecedent: Itemset,
    config: ExclusivenessConfig,
) -> float:
    """Eq. 3.5 with confidence, recomputed from one cell vector.

    Only the ``confidence`` measure is resampled this way — lift would
    additionally need the consequent margin, which the same cells carry,
    but the bootstrap API restricts to confidence for clarity.
    """
    items = sorted(antecedent)
    n_drugs = len(items)

    def support_pair(subset: Itemset) -> tuple[int, int]:
        with_antecedent = 0
        joint = 0
        for (pattern, has_consequent), count in zip(keys, cells):
            if subset <= pattern:
                with_antecedent += int(count)
                if has_consequent:
                    joint += int(count)
        return with_antecedent, joint

    full_support, full_joint = support_pair(frozenset(items))
    p = full_joint / full_support if full_support else 0.0

    decay = config.decay_function
    total = 0.0
    n_levels = 0
    for cardinality in range(1, n_drugs):
        values = []
        for subset in combinations(items, cardinality):
            sub_support, sub_joint = support_pair(frozenset(subset))
            values.append(sub_joint / sub_support if sub_support else 0.0)
        mean = sum(values) / len(values)
        penalty = 1.0 - config.theta * coefficient_of_variation(values)
        total += (p - mean) * decay(cardinality, n_drugs) * penalty
        n_levels += 1
    return total / n_levels if n_levels else p


def bootstrap_exclusiveness(
    database: TransactionDatabase,
    cluster: MCAC,
    *,
    config: ExclusivenessConfig | None = None,
    n_bootstrap: int = 400,
    confidence_level: float = 0.95,
    seed: int = 1234,
) -> ScoreInterval:
    """Percentile bootstrap interval for one cluster's Eq. 3.5 score.

    Only ``measure="confidence"`` configs are supported; the point
    estimate is recomputed from the cell counts, so it matches
    :func:`~repro.core.exclusiveness.exclusiveness` exactly.
    """
    config = config if config is not None else ExclusivenessConfig()
    if config.measure != "confidence":
        raise ConfigError(
            "bootstrap supports measure='confidence' only "
            f"(got {config.measure!r})"
        )
    if n_bootstrap < 10:
        raise ConfigError(f"n_bootstrap must be >= 10, got {n_bootstrap}")
    if not 0.5 <= confidence_level < 1.0:
        raise ConfigError(
            f"confidence_level must be in [0.5, 1), got {confidence_level}"
        )

    antecedent = cluster.target.antecedent
    consequent = cluster.target.consequent
    keys, cells = _pattern_counts(database, antecedent, consequent)
    n_reports = int(cells.sum())
    point = _score_from_cells(keys, cells, antecedent, config)

    rng = np.random.default_rng(seed)
    probabilities = cells / n_reports
    replicates = rng.multinomial(n_reports, probabilities, size=n_bootstrap)
    scores = np.array(
        [
            _score_from_cells(keys, replicate, antecedent, config)
            for replicate in replicates
        ]
    )
    alpha = (1.0 - confidence_level) / 2.0
    low, high = np.quantile(scores, [alpha, 1.0 - alpha])
    return ScoreInterval(
        point=point,
        low=float(low),
        high=float(high),
        confidence_level=confidence_level,
        n_bootstrap=n_bootstrap,
    )


def score_intervals(
    database: TransactionDatabase,
    clusters: Sequence[MCAC],
    **kwargs,
) -> list[tuple[MCAC, ScoreInterval]]:
    """Bootstrap interval for every cluster, in the input order."""
    return [
        (cluster, bootstrap_exclusiveness(database, cluster, **kwargs))
        for cluster in clusters
    ]
