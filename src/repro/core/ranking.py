"""Ranking strategies for multi-drug associations.

§5.3 compares four rankings of the same quarter's multi-drug rules —
by confidence, by lift, by exclusiveness-with-confidence, and by
exclusiveness-with-lift (Table 5.2). This module implements those four
plus improvement, over MCACs, with deterministic tie-breaking so the
benchmark tables are reproducible byte-for-byte.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.context import MCAC
from repro.core.exclusiveness import ExclusivenessConfig, exclusiveness
from repro.core.improvement import improvement
from repro.errors import ConfigError


class RankingMethod(enum.Enum):
    """The ranking columns of Table 5.2 (plus the improvement baseline)."""

    CONFIDENCE = "confidence"
    LIFT = "lift"
    EXCLUSIVENESS_CONFIDENCE = "exclusiveness_confidence"
    EXCLUSIVENESS_LIFT = "exclusiveness_lift"
    IMPROVEMENT = "improvement"


@dataclass(frozen=True, slots=True)
class RankedCluster:
    """One row of a ranking: the cluster, its score, and its 1-based rank."""

    cluster: MCAC
    score: float
    rank: int

    def describe(self, catalog) -> str:
        return (
            f"#{self.rank}  score={self.score:.4f}  "
            f"{self.cluster.target.describe(catalog)}"
        )


def score_cluster(
    cluster: MCAC,
    method: RankingMethod,
    *,
    theta: float = 0.5,
    decay: str = "linear",
) -> float:
    """Score one cluster under one ranking method."""
    if method is RankingMethod.CONFIDENCE:
        return cluster.target.metrics.confidence
    if method is RankingMethod.LIFT:
        return cluster.target.metrics.lift
    if method is RankingMethod.EXCLUSIVENESS_CONFIDENCE:
        return exclusiveness(
            cluster, ExclusivenessConfig(measure="confidence", theta=theta, decay=decay)
        )
    if method is RankingMethod.EXCLUSIVENESS_LIFT:
        return exclusiveness(
            cluster, ExclusivenessConfig(measure="lift", theta=theta, decay=decay)
        )
    if method is RankingMethod.IMPROVEMENT:
        return improvement(cluster)
    raise ConfigError(f"unknown ranking method {method!r}")


def rank_clusters(
    clusters: Sequence[MCAC],
    method: RankingMethod,
    *,
    top_k: int | None = None,
    theta: float = 0.5,
    decay: str = "linear",
) -> list[RankedCluster]:
    """Rank clusters under ``method``, highest score first.

    Ties break on (higher target support, fewer drugs, antecedent item
    ids) so equal-score rows order deterministically.
    """
    if top_k is not None and top_k < 1:
        raise ConfigError(f"top_k must be >= 1, got {top_k}")
    scored = [
        (score_cluster(cluster, method, theta=theta, decay=decay), cluster)
        for cluster in clusters
    ]
    scored.sort(
        key=lambda pair: (
            -pair[0],
            -pair[1].target.metrics.n_joint,
            len(pair[1].target.antecedent),
            sorted(pair[1].target.antecedent),
            sorted(pair[1].target.consequent),
        )
    )
    if top_k is not None:
        scored = scored[:top_k]
    return [
        RankedCluster(cluster=cluster, score=score, rank=index)
        for index, (score, cluster) in enumerate(scored, start=1)
    ]


def ranking_table(
    clusters: Sequence[MCAC],
    methods: Sequence[RankingMethod] | None = None,
    *,
    top_k: int = 5,
    theta: float = 0.5,
    decay: str = "linear",
) -> dict[RankingMethod, list[RankedCluster]]:
    """The Table 5.2 structure: top-k rows per ranking method.

    Defaults to the paper's four columns in their printed order.
    """
    if methods is None:
        methods = (
            RankingMethod.CONFIDENCE,
            RankingMethod.LIFT,
            RankingMethod.EXCLUSIVENESS_CONFIDENCE,
            RankingMethod.EXCLUSIVENESS_LIFT,
        )
    return {
        method: rank_clusters(
            clusters, method, top_k=top_k, theta=theta, decay=decay
        )
        for method in methods
    }
