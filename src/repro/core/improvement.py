"""Bayardo's improvement measure (Eq. 3.2) — the baseline §3.6 builds on.

``Improvement(A ⇒ B) = min over proper non-empty subsets As ⊂ A of
(conf(A ⇒ B) − conf(As ⇒ B))``. Since an MCAC's context contains a rule
for *every* proper non-empty subset of the antecedent, the minimum over
subsets is exactly ``p − max(context confidences)``.

A negative improvement means some sub-rule is at least as predictive as
the full rule — the combination signal is dominated by a subset. The
paper's criticism (and the reason exclusiveness exists) is that
improvement sees only the single strongest sub-rule, ignoring how many
other strong sub-rules exist; the ranking benchmarks contrast the two.
"""

from __future__ import annotations

from repro.core.context import MCAC
from repro.errors import ConfigError


def improvement(cluster: MCAC, measure: str = "confidence") -> float:
    """Eq. 3.2 computed over a complete MCAC context."""
    values = [
        value
        for level_values in cluster.context_values(measure).values()
        for value in level_values
    ]
    if not values:
        raise ConfigError("cluster has no contextual rules")
    return cluster.target.metrics.value(measure) - max(values)
