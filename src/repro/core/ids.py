"""Stable, deterministic identifiers for associations and clusters.

Catalog item ids are an artifact of encoding order: the same rule mined
from two quarters (or the same quarter re-encoded after an upstream
change) gets different integer ids. Anything that names a cluster
across process boundaries — the JSON export, the ``repro.serve`` query
API, a bookmarked URL — needs an identity that depends only on *what*
the rule says, not on how this run happened to number its items.

The identity here is a content hash of the rule's canonicalized label
sets: sorted drug labels, sorted ADR labels, joined with separators
that cannot occur inside a label's role (labels may contain anything,
so the two sides are length-prefixed into the digest input rather than
trusting a separator alone). Associations and MCAC clusters share the
same content — a cluster is identified by its target rule — but carry
distinct prefixes so the two id namespaces cannot collide.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

ASSOCIATION_PREFIX = "assoc"
CLUSTER_PREFIX = "mcac"

_DIGEST_CHARS = 12


def content_digest(drugs: Iterable[str], adrs: Iterable[str]) -> str:
    """Hex digest of the canonicalized (drugs, adrs) content.

    Deterministic across processes and Python versions: sorted labels,
    each length-prefixed so no label string can forge another rule's
    digest input.
    """
    hasher = hashlib.sha256()
    for side in (sorted(drugs), sorted(adrs)):
        hasher.update(b"[%d" % len(side))
        for label in side:
            encoded = label.encode("utf-8")
            hasher.update(b"%d:" % len(encoded))
            hasher.update(encoded)
        hasher.update(b"]")
    return hasher.hexdigest()[:_DIGEST_CHARS]


def association_id(drugs: Iterable[str], adrs: Iterable[str]) -> str:
    """Stable id of a drug→ADR association, e.g. ``assoc-3f9a0c12bd04``."""
    return f"{ASSOCIATION_PREFIX}-{content_digest(drugs, adrs)}"


def cluster_id(drugs: Iterable[str], adrs: Iterable[str]) -> str:
    """Stable id of an MCAC, e.g. ``mcac-3f9a0c12bd04``.

    Same digest as the association of the cluster's target rule,
    different namespace prefix.
    """
    return f"{CLUSTER_PREFIX}-{content_digest(drugs, adrs)}"
