"""Drug-ADR associations and the support taxonomy of §3.3.

A *drug-ADR association* (§3.1) is an association rule whose antecedent
contains only drugs and whose consequent contains only ADRs. §3.3
classifies such a rule by how the report database witnesses it:

- **explicitly supported** (Def. 3.3.1): at least one report's complete
  item set equals the rule's complete item set;
- **implicitly supported** (Def. 3.3.2): the rule's item set is the
  intersection of at least two reports' item sets;
- **unsupported**: neither — the rule is a spurious partial reading of
  some report and must be discarded.

A note on Lemma 3.4.2 (closed ⇒ supported): the lemma holds with the
*generalized* implicit definition used here — the rule's item set equals
the intersection of **some set of two or more** containing reports
(equivalently, for a non-explicit closed itemset with support ≥ 2, the
intersection of *all* containing reports). Under the paper's literal
*pairwise* wording it admits counterexamples (three reports pairwise
intersecting above the itemset but jointly exactly at it), so this
module exposes both: :func:`classify_support` implements the generalized
definition the lemma needs, and :func:`is_pairwise_implicit` the strict
pairwise variant, with the discrepancy exercised in the tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.mining.rules import AssociationRule
from repro.mining.transactions import Itemset, TransactionDatabase

if TYPE_CHECKING:  # pragma: no cover — typing-only, avoids import coupling
    from repro.mining.bitsets import SupportOracle


class SupportType(enum.Enum):
    """How the database witnesses a drug-ADR association (§3.3)."""

    EXPLICIT = "explicit"
    IMPLICIT = "implicit"
    UNSUPPORTED = "unsupported"

    @property
    def is_supported(self) -> bool:
        return self is not SupportType.UNSUPPORTED


def classify_support(
    database: TransactionDatabase,
    items: Itemset,
    *,
    oracle: "SupportOracle | None" = None,
) -> SupportType:
    """Classify an itemset per the (generalized) §3.3 taxonomy.

    Explicit wins over implicit when both hold, mirroring the paper's
    presentation order. The implicit test uses the intersection of all
    containing transactions: for support ≥ 2 that intersection equals
    the itemset exactly when the itemset is closed over its tidset,
    which is the generalized implicit-support condition.

    ``oracle`` (a :class:`~repro.mining.bitsets.SupportOracle`)
    materializes the tidset from bitmasks instead of intersecting
    frozensets; transaction contents still come from ``database``.
    """
    items = frozenset(items)
    if not items:
        raise ConfigError("cannot classify the empty itemset")
    tids = (
        database.tidset_of(items) if oracle is None else oracle.tidset(items)
    )
    if not tids:
        return SupportType.UNSUPPORTED
    for tid in tids:
        if database[tid] == items:
            return SupportType.EXPLICIT
    if len(tids) < 2:
        return SupportType.UNSUPPORTED
    intersection: set[int] | None = None
    for seen, tid in enumerate(tids, start=1):
        transaction = database[tid]
        intersection = (
            set(transaction) if intersection is None else intersection & transaction
        )
        # The intersection can never shrink below `items` (every folded
        # transaction contains it), so reaching |items| after at least
        # two transactions settles the answer.
        if seen >= 2 and len(intersection) == len(items):
            return SupportType.IMPLICIT
    assert intersection is not None
    return (
        SupportType.IMPLICIT
        if frozenset(intersection) == items
        else SupportType.UNSUPPORTED
    )


def is_pairwise_implicit(
    database: TransactionDatabase, items: Itemset, *, max_pairs: int | None = 200_000
) -> bool:
    """The paper's literal Def. 3.3.2: some *pair* of reports intersects at ``items``.

    Quadratic in the itemset's support; ``max_pairs`` bounds the search
    (raising :class:`~repro.errors.ConfigError` if exceeded) so a
    careless call on a high-support itemset cannot stall the pipeline.
    """
    items = frozenset(items)
    tids = sorted(database.tidset_of(items))
    n_pairs = len(tids) * (len(tids) - 1) // 2
    if max_pairs is not None and n_pairs > max_pairs:
        raise ConfigError(
            f"pairwise implicit check would examine {n_pairs} pairs "
            f"(> max_pairs={max_pairs}); use classify_support instead"
        )
    for left, right in combinations(tids, 2):
        if database[left] & database[right] == items:
            return True
    return False


@dataclass(frozen=True, slots=True)
class DrugADRAssociation:
    """A drug→ADR rule together with its support classification.

    This is the unit the MCAC builder consumes: the rule (with metrics)
    plus how the report data witnesses it. Only supported associations
    enter clustering; the pipeline builds these from closed itemsets so
    the classification is a checked invariant rather than a filter.
    """

    rule: AssociationRule
    support_type: SupportType

    @classmethod
    def from_rule(
        cls,
        rule: AssociationRule,
        database: TransactionDatabase,
        *,
        oracle: "SupportOracle | None" = None,
    ) -> "DrugADRAssociation":
        return cls(
            rule=rule,
            support_type=classify_support(database, rule.items, oracle=oracle),
        )

    def stable_id(self, catalog) -> str:
        """Deterministic content-hash id of this association (``assoc-…``).

        Depends only on the rule's drug/ADR labels (see
        :mod:`repro.core.ids`), not on catalog numbering or list
        position, so it survives re-encoding and export round-trips.
        """
        from repro.core.ids import association_id

        return association_id(
            catalog.labels(self.rule.antecedent),
            catalog.labels(self.rule.consequent),
        )

    @property
    def n_drugs(self) -> int:
        return len(self.rule.antecedent)

    @property
    def is_multi_drug(self) -> bool:
        """True for the rules MeDIAR evaluates (≥ 2 drugs, §3.4)."""
        return self.n_drugs >= 2

    def describe(self, catalog) -> str:
        return f"{self.rule.describe(catalog)}  [{self.support_type.value}]"
