"""JSON export of pipeline results.

The MeDIAR demo serves mined clusters to an interactive web front-end;
this module is that wire format. :func:`export_result` serializes a
:class:`~repro.core.pipeline.MarasResult` — every cluster with its
target rule, full context, per-method scores, and supporting case ids —
into plain JSON-compatible dicts, and :func:`load_export` reads it back
into light-weight records a UI (or a downstream notebook) can consume
without re-mining.

The format is versioned; loaders reject versions they do not know
instead of mis-parsing them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.ids import cluster_id
from repro.core.pipeline import MarasResult
from repro.core.ranking import RankingMethod, score_cluster
from repro.errors import ConfigError, ValidationError

FORMAT_VERSION = 1

_EXPORT_METHODS = (
    RankingMethod.CONFIDENCE,
    RankingMethod.LIFT,
    RankingMethod.EXCLUSIVENESS_CONFIDENCE,
    RankingMethod.EXCLUSIVENESS_LIFT,
    RankingMethod.IMPROVEMENT,
)


def export_result(
    result: MarasResult, *, include_case_ids: bool = True
) -> dict[str, Any]:
    """Serialize a pipeline result to a JSON-compatible dict."""
    catalog = result.catalog
    clusters = []
    for cluster in result.clusters:
        target = cluster.target
        scores = {
            method.value: score_cluster(
                cluster,
                method,
                theta=result.config.theta,
                decay=result.config.decay,
            )
            for method in _EXPORT_METHODS
        }
        record: dict[str, Any] = {
            "id": cluster.stable_id(catalog),
            "drugs": list(catalog.labels(target.antecedent)),
            "adrs": list(catalog.labels(target.consequent)),
            "support": target.metrics.n_joint,
            "confidence": target.metrics.confidence,
            "lift": target.metrics.lift,
            "scores": scores,
            "context": [
                {
                    "drugs": list(catalog.labels(rule.antecedent)),
                    "cardinality": rule.cardinality,
                    "confidence": rule.metrics.confidence,
                    "lift": rule.metrics.lift,
                }
                for rule in cluster.all_context_rules()
            ],
        }
        if include_case_ids:
            tids = result.encoded.database.tidset_of(target.items)
            record["case_ids"] = sorted(
                result.encoded.case_id_of(tid) for tid in tids
            )
        clusters.append(record)

    stats = result.dataset.stats()
    return {
        "format_version": FORMAT_VERSION,
        "quarter": stats.quarter,
        "dataset": {
            "n_reports": stats.n_reports,
            "n_drugs": stats.n_drugs,
            "n_adrs": stats.n_adrs,
        },
        "config": {
            "min_support": result.config.min_support,
            "max_drugs": result.config.max_drugs,
            "theta": result.config.theta,
            "decay": result.config.decay,
        },
        "clusters": clusters,
    }


def write_export(
    result: MarasResult, path: str | Path, *, include_case_ids: bool = True
) -> Path:
    """Serialize to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = export_result(result, include_case_ids=include_case_ids)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path


@dataclass(frozen=True, slots=True)
class ExportedCluster:
    """One cluster as read back from an export."""

    id: str
    drugs: tuple[str, ...]
    adrs: tuple[str, ...]
    support: int
    confidence: float
    lift: float
    scores: dict[str, float]
    context: tuple[dict[str, Any], ...]
    case_ids: tuple[str, ...]

    @property
    def key(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        return (self.drugs, self.adrs)


@dataclass(frozen=True, slots=True)
class ExportedResult:
    """A full export, loaded."""

    quarter: str
    n_reports: int
    clusters: tuple[ExportedCluster, ...]
    config: dict[str, Any]

    def top(self, method: str, k: int = 10) -> list[ExportedCluster]:
        """Top-k clusters by one of the exported score names."""
        if not self.clusters:
            return []
        if method not in self.clusters[0].scores:
            raise ConfigError(
                f"unknown score {method!r}; have {sorted(self.clusters[0].scores)}"
            )
        ranked = sorted(self.clusters, key=lambda c: -c.scores[method])
        return ranked[:k]


def load_export(source: str | Path | dict[str, Any]) -> ExportedResult:
    """Load an export from a path or an already-parsed dict."""
    if isinstance(source, (str, Path)):
        payload = json.loads(Path(source).read_text(encoding="utf-8"))
    else:
        payload = source
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported export format version {version!r} "
            f"(this loader reads version {FORMAT_VERSION})"
        )
    clusters = tuple(
        ExportedCluster(
            # Exports written before stable ids lack the field; the id
            # is a pure content hash, so recomputing it here yields the
            # same value export_result would have written.
            id=record.get("id")
            or cluster_id(record["drugs"], record["adrs"]),
            drugs=tuple(record["drugs"]),
            adrs=tuple(record["adrs"]),
            support=int(record["support"]),
            confidence=float(record["confidence"]),
            lift=float(record["lift"]),
            scores={name: float(v) for name, v in record["scores"].items()},
            context=tuple(record["context"]),
            case_ids=tuple(record.get("case_ids", ())),
        )
        for record in payload["clusters"]
    )
    return ExportedResult(
        quarter=payload.get("quarter", ""),
        n_reports=int(payload["dataset"]["n_reports"]),
        clusters=clusters,
        config=dict(payload.get("config", {})),
    )
