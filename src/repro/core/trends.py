"""Cross-quarter signal trends.

The paper evaluates each 2014 quarter independently; a drug-safety team
reads them as a *sequence*. This module lines up the per-quarter
pipeline results and tracks every cluster identity (drug labels, ADR
labels) across quarters:

- :func:`build_trends` — per-cluster trajectory of support, confidence
  and exclusiveness score over the quarter sequence;
- :class:`SignalTrend` — classification into ``emerging`` (absent early,
  present and strengthening late), ``strengthening``, ``stable``,
  ``weakening``, ``transient`` (appears once, disappears);
- :func:`emerging_signals` — the watchlist a quarterly review starts
  from.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.incremental import ClusterKey, cluster_key
from repro.core.pipeline import MarasResult
from repro.core.ranking import RankingMethod, score_cluster
from repro.errors import ConfigError


class TrendKind(enum.Enum):
    """Classification of a cluster's cross-quarter trajectory."""

    EMERGING = "emerging"
    STRENGTHENING = "strengthening"
    STABLE = "stable"
    WEAKENING = "weakening"
    TRANSIENT = "transient"


@dataclass(frozen=True, slots=True)
class SignalTrend:
    """One cluster identity's trajectory across an ordered quarter list.

    ``scores`` and ``supports`` hold one entry per quarter, ``None``
    where the cluster was not mined that quarter.
    """

    key: ClusterKey
    quarters: tuple[str, ...]
    scores: tuple[float | None, ...]
    supports: tuple[int | None, ...]
    kind: TrendKind

    @property
    def quarters_present(self) -> int:
        return sum(1 for score in self.scores if score is not None)

    def describe(self) -> str:
        drugs, adrs = self.key
        series = " ".join(
            "--" if score is None else f"{score:.2f}" for score in self.scores
        )
        return f"[{self.kind.value:>13s}] {' + '.join(drugs)} => {', '.join(adrs)}  ({series})"


def _classify(
    scores: Sequence[float | None], *, change_threshold: float
) -> TrendKind:
    present = [
        (index, score) for index, score in enumerate(scores) if score is not None
    ]
    n_quarters = len(scores)
    if len(present) == 1:
        return TrendKind.TRANSIENT
    first_index = present[0][0]
    last_index = present[-1][0]
    first_score = present[0][1]
    last_score = present[-1][1]
    absent_early = first_index >= (n_quarters + 1) // 2
    present_at_end = last_index == n_quarters - 1
    if absent_early and present_at_end:
        return TrendKind.EMERGING
    delta = last_score - first_score
    if delta > change_threshold:
        return TrendKind.STRENGTHENING
    if delta < -change_threshold:
        return TrendKind.WEAKENING
    if not present_at_end:
        return TrendKind.WEAKENING
    return TrendKind.STABLE


def build_trends(
    results_by_quarter: Mapping[str, MarasResult],
    *,
    method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
    change_threshold: float = 0.05,
) -> list[SignalTrend]:
    """Trajectories of every cluster identity across the quarter sequence.

    Quarters are processed in sorted label order (2014Q1 < 2014Q2 < ...).
    """
    if not results_by_quarter:
        raise ConfigError("need at least one quarter result")
    if change_threshold < 0:
        raise ConfigError(f"change_threshold must be >= 0, got {change_threshold}")
    quarters = tuple(sorted(results_by_quarter))

    per_quarter: list[dict[ClusterKey, tuple[float, int]]] = []
    for quarter in quarters:
        result = results_by_quarter[quarter]
        table: dict[ClusterKey, tuple[float, int]] = {}
        for cluster in result.clusters:
            key = cluster_key(result, cluster)
            score = score_cluster(
                cluster,
                method,
                theta=result.config.theta,
                decay=result.config.decay,
            )
            existing = table.get(key)
            if existing is None or score > existing[0]:
                table[key] = (score, cluster.target.metrics.n_joint)
        per_quarter.append(table)

    all_keys = sorted({key for table in per_quarter for key in table})
    trends: list[SignalTrend] = []
    for key in all_keys:
        scores = tuple(
            table[key][0] if key in table else None for table in per_quarter
        )
        supports = tuple(
            table[key][1] if key in table else None for table in per_quarter
        )
        trends.append(
            SignalTrend(
                key=key,
                quarters=quarters,
                scores=scores,
                supports=supports,
                kind=_classify(scores, change_threshold=change_threshold),
            )
        )
    return trends


def emerging_signals(
    results_by_quarter: Mapping[str, MarasResult],
    *,
    method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
    min_final_score: float = 0.0,
) -> list[SignalTrend]:
    """Emerging trends, strongest final score first — the review watchlist."""
    trends = build_trends(results_by_quarter, method=method)
    emerging = [
        trend
        for trend in trends
        if trend.kind is TrendKind.EMERGING
        and trend.scores[-1] is not None
        and trend.scores[-1] >= min_final_score
    ]
    emerging.sort(key=lambda trend: -(trend.scores[-1] or 0.0))
    return emerging
