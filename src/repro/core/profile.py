"""Drug-centric risk profiles.

§4.1's first interaction: the evaluator types a drug name and wants
everything the quarter knows about it on one screen. A
:class:`DrugProfile` bundles that view:

- exposure: how many reports mention the drug;
- single-drug ADR signals (PRR-screened, per the Evans criteria);
- every multi-drug cluster the drug participates in, rank-annotated;
- the worst reaction severity and the body systems involved.

Built from a finished :class:`~repro.core.pipeline.MarasResult`, so no
re-mining happens per lookup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import MCAC
from repro.core.pipeline import MarasResult
from repro.core.ranking import RankingMethod
from repro.errors import ConfigError
from repro.knowledge.meddra import MedDRAHierarchy, default_hierarchy
from repro.knowledge.severity import Severity, SeverityIndex, default_severity_index
from repro.signals.contingency import contingency_for
from repro.signals.disproportionality import (
    proportional_reporting_ratio,
    prr_signal_test,
)


@dataclass(frozen=True, slots=True)
class SoloSignal:
    """One PRR-screened single-drug ADR signal."""

    adr: str
    n_cases: int
    prr: float


@dataclass(frozen=True, slots=True)
class DrugProfile:
    """Everything one quarter knows about one drug."""

    drug: str
    n_reports: int
    solo_signals: tuple[SoloSignal, ...]
    clusters: tuple[tuple[int, MCAC], ...]  # (rank, cluster)
    worst_severity: Severity
    body_systems: frozenset[str]

    @property
    def n_interactions(self) -> int:
        return len(self.clusters)

    def describe(self, catalog) -> str:
        lines = [
            f"{self.drug}: {self.n_reports} reports, "
            f"{len(self.solo_signals)} solo signals, "
            f"{self.n_interactions} interaction clusters, "
            f"worst severity {self.worst_severity.name.lower()}"
        ]
        for signal in self.solo_signals[:5]:
            lines.append(
                f"  solo  {signal.adr}  (n={signal.n_cases}, PRR={signal.prr:.1f})"
            )
        for rank, cluster in self.clusters[:5]:
            lines.append(f"  #{rank:<4d} {cluster.target.describe(catalog)}")
        return "\n".join(lines)


def build_drug_profile(
    result: MarasResult,
    drug: str,
    *,
    method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
    max_solo_signals: int = 10,
    severity: SeverityIndex | None = None,
    hierarchy: MedDRAHierarchy | None = None,
) -> DrugProfile:
    """Assemble the profile of one drug from a pipeline result.

    ``drug`` must be the canonical (cleaned) label; an unknown drug
    raises :class:`~repro.errors.ConfigError` rather than returning an
    empty profile, since a typo and a signal-free drug deserve
    different reactions.
    """
    if max_solo_signals < 0:
        raise ConfigError(f"max_solo_signals must be >= 0, got {max_solo_signals}")
    severity = severity if severity is not None else default_severity_index()
    hierarchy = hierarchy if hierarchy is not None else default_hierarchy()
    catalog = result.catalog
    drug_id = catalog.get_id(drug)
    if drug_id is None or catalog.kind_of(drug_id) != "drug":
        raise ConfigError(f"unknown drug {drug!r}")

    database = result.encoded.database
    exposure_tids = database.tidset(drug_id)

    # Solo signals: PRR screen of every ADR co-reported with the drug.
    adr_counts: dict[int, int] = {}
    adr_ids = catalog.ids_of_kind("adr")
    for tid in exposure_tids:
        for item in database[tid] & adr_ids:
            adr_counts[item] = adr_counts.get(item, 0) + 1
    solo: list[SoloSignal] = []
    for adr_id, count in adr_counts.items():
        table = contingency_for(
            database, frozenset({drug_id}), frozenset({adr_id})
        )
        if prr_signal_test(table):
            solo.append(
                SoloSignal(
                    adr=catalog.label(adr_id),
                    n_cases=count,
                    prr=proportional_reporting_ratio(table),
                )
            )
    solo.sort(key=lambda s: (-s.prr, -s.n_cases, s.adr))
    solo = solo[:max_solo_signals]

    ranked = result.rank(method)
    involved = tuple(
        (entry.rank, entry.cluster)
        for entry in ranked
        if drug_id in entry.cluster.target.antecedent
    )

    reaction_labels = {s.adr for s in solo} | {
        label
        for _, cluster in involved
        for label in catalog.labels(cluster.target.consequent)
    }
    return DrugProfile(
        drug=drug,
        n_reports=len(exposure_tids),
        solo_signals=tuple(solo),
        clusters=involved,
        worst_severity=severity.max_severity(reaction_labels),
        body_systems=hierarchy.socs_of(reaction_labels),
    )
