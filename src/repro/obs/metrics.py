"""Timers, counters and gauges for the MeDIAR hot path.

Design constraints, in order:

1. **Zero overhead when disabled.** The default registry is
   :data:`NULL_REGISTRY`, whose counters/gauges/timer spans are shared
   no-op singletons — instrumented code pays one attribute lookup and
   one no-op call, never allocation or branching on a config flag.
   Aggregate counts (e.g. FP-tree node totals) are additionally guarded
   with ``if registry.enabled`` so they are not even computed.
2. **Dependency-free.** Standard library only; timers use the monotonic
   ``time.perf_counter`` clock.
3. **Nesting-aware timers.** A span opened while another span is active
   records under the slash-joined path (``pipeline.mine/fpclose``), so
   a stage table shows both the stage total and where inside the stage
   the time went.

Instrumented library code does not take a registry parameter; it calls
:func:`get_registry`, which returns the *active* registry —
:data:`NULL_REGISTRY` unless a caller (``Maras.run``, the CLI, a
benchmark) has installed a real one with :func:`use_registry`.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.events import EventSink


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time numeric metric (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class TimerStat:
    """Accumulated wall time of one span path."""

    __slots__ = ("name", "total_seconds", "calls", "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.calls = 0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.calls += 1
        if seconds > self.max_seconds:
            self.max_seconds = seconds


class _Span:
    """Context manager for one timed section (re-usable is *not* required)."""

    __slots__ = ("_registry", "_name", "_start", "path")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0
        self.path = name

    def __enter__(self) -> "_Span":
        registry = self._registry
        registry._stack.append(self._name)
        self.path = "/".join(registry._stack)
        self._start = registry._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        registry = self._registry
        seconds = registry._clock() - self._start
        registry._stack.pop()
        registry._timer_stat(self.path).record(seconds)
        registry._sink.write(
            {"event": "span", "name": self.path, "seconds": seconds}
        )
        return False


class _NullSpan:
    """Shared no-op span."""

    __slots__ = ()
    path = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


class _NullCounter:
    """Shared no-op counter."""

    __slots__ = ()
    name = ""
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    """Shared no-op gauge."""

    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass


@dataclass(frozen=True, slots=True)
class TimerReading:
    """One row of a snapshot's stage-time table."""

    name: str
    total_seconds: float
    calls: int
    max_seconds: float

    @property
    def depth(self) -> int:
        return self.name.count("/")


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """An immutable copy of a registry's aggregates at one moment."""

    timers: tuple[TimerReading, ...] = ()
    counters: Mapping[str, int] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)

    def timer_seconds(self, name: str) -> float:
        """Total seconds recorded under span path ``name`` (0.0 if absent)."""
        for reading in self.timers:
            if reading.name == name:
                return reading.total_seconds
        return 0.0

    def as_dict(self) -> dict:
        """A JSON-serializable view (what the trace's summary event holds)."""
        return {
            "timers": {
                t.name: {
                    "total_seconds": t.total_seconds,
                    "calls": t.calls,
                    "max_seconds": t.max_seconds,
                }
                for t in self.timers
            },
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def format_table(self) -> str:
        """The human-readable stage-time table (``mediar --profile``)."""
        lines = ["stage timings"]
        if self.timers:
            width = max(len(t.name) for t in self.timers) + 2
            lines.append(f"  {'span':<{width}s} {'calls':>6s} {'total':>10s}")
            for timer in sorted(self.timers, key=lambda t: t.name):
                indent = "  " * timer.depth
                label = indent + timer.name.rsplit("/", 1)[-1]
                lines.append(
                    f"  {label:<{width}s} {timer.calls:>6d} "
                    f"{timer.total_seconds:>9.4f}s"
                )
        else:
            lines.append("  (no spans recorded)")
        if self.counters:
            lines.append("counters")
            width = max(len(name) for name in self.counters) + 2
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}s} {self.counters[name]:>10,d}")
        if self.gauges:
            lines.append("gauges")
            width = max(len(name) for name in self.gauges) + 2
            for name in sorted(self.gauges):
                lines.append(f"  {name:<{width}s} {self.gauges[name]:>10.4f}")
        return "\n".join(lines)


class MetricsRegistry:
    """The live aggregation point: timers, counters, gauges, events.

    Parameters
    ----------
    sink:
        Where span and :meth:`emit` records go; ``None`` drops them and
        keeps only the aggregates.
    clock:
        Monotonic clock, injectable for deterministic timer tests.
    """

    enabled = True

    def __init__(
        self,
        *,
        sink: EventSink | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        from repro.obs.events import NullSink

        self._sink = sink if sink is not None else NullSink()
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, TimerStat] = {}
        self._stack: list[str] = []

    @property
    def sink(self) -> EventSink:
        return self._sink

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def timer(self, name: str) -> _Span:
        """A context manager timing one section under span name ``name``."""
        return _Span(self, name)

    def _timer_stat(self, path: str) -> TimerStat:
        stat = self._timers.get(path)
        if stat is None:
            stat = self._timers[path] = TimerStat(path)
        return stat

    def emit(self, event: str, /, **fields) -> None:
        """Write one structured event record to the sink."""
        self._sink.write({"event": event, **fields})

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            timers=tuple(
                TimerReading(s.name, s.total_seconds, s.calls, s.max_seconds)
                for s in self._timers.values()
            ),
            counters={c.name: c.value for c in self._counters.values()},
            gauges={g.name: g.value for g in self._gauges.values()},
        )

    def emit_summary(self) -> None:
        """Write the aggregate snapshot as one ``metrics`` event."""
        self._sink.write({"event": "metrics", **self.snapshot().as_dict()})

    def close(self) -> None:
        """Emit the summary event and close the sink."""
        self.emit_summary()
        self._sink.close()


class NullRegistry:
    """The disabled registry: every operation is a shared no-op.

    ``enabled`` is ``False`` so instrumentation can skip computing
    expensive aggregate values entirely.
    """

    enabled = False

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _span = _NullSpan()

    def counter(self, name: str) -> _NullCounter:
        return self._counter

    def gauge(self, name: str) -> _NullGauge:
        return self._gauge

    def timer(self, name: str) -> _NullSpan:
        return self._span

    def emit(self, event: str, /, **fields) -> None:
        pass

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def emit_summary(self) -> None:
        pass

    def close(self) -> None:
        pass


def merge_metric_dicts(snapshots: "list[dict] | tuple[dict, ...]") -> dict:
    """Aggregate several ``MetricsSnapshot.as_dict()`` payloads into one.

    The multi-worker serving tier runs one registry per worker process;
    ``/v1/metrics`` merges their JSON snapshots into a fleet view:

    - **counters** sum (requests served anywhere are requests served);
    - **timers** sum ``total_seconds`` and ``calls`` and keep the worst
      ``max_seconds`` (the fleet's tail is the worst worker's tail);
    - **gauges** sum — every per-worker gauge in the serving tier is a
      size (cache entries, bytes held), where the fleet total is the
      meaningful aggregate.

    Operates on the JSON-roundtrippable dict form rather than live
    registries because worker snapshots cross a process boundary as
    files.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    timers: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, stat in snapshot.get("timers", {}).items():
            merged = timers.setdefault(
                name, {"total_seconds": 0.0, "calls": 0, "max_seconds": 0.0}
            )
            merged["total_seconds"] += stat.get("total_seconds", 0.0)
            merged["calls"] += stat.get("calls", 0)
            merged["max_seconds"] = max(
                merged["max_seconds"], stat.get("max_seconds", 0.0)
            )
    return {"timers": timers, "counters": counters, "gauges": gauges}


NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The registry instrumented library code should record into."""
    return _active


@contextmanager
def use_registry(
    registry: MetricsRegistry | NullRegistry,
) -> Iterator[MetricsRegistry | NullRegistry]:
    """Install ``registry`` as the active registry for the enclosed block."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous
