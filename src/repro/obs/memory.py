"""Process-memory gauges: RSS now, RSS high-water mark, stage sampling.

The capacity testbed's honesty depends on measuring what the process
*actually* holds, not what Python thinks it allocated — a hidden
``list()`` of a million reports shows up in resident set size whether or
not tracemalloc is watching. Everything here is stdlib-only (the
container has no psutil) and degrades gracefully:

- :func:`current_rss_bytes` — ``VmRSS`` from ``/proc/self/status``
  (Linux); ``None`` where procfs is unavailable.
- :func:`peak_rss_bytes` — ``VmHWM`` from procfs, falling back to
  ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` (kilobytes on Linux)
  so macOS/BSD still report a high-water mark.
- :class:`MemorySampler` — a daemon thread polling
  :func:`current_rss_bytes`, attributing each sample to the currently
  declared stage so a single-process, interleaved pipeline (parse →
  clean → encode chunk by chunk) still yields per-stage peaks.

The sampler exists because ``VmHWM`` is process-global and monotonic: by
the time the encode stage runs, the parse stage's peak is baked in.
Sampling with stage labels recovers "which stage was live when RSS was
highest", which is the number the capacity benchmark records per stage.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.errors import ConfigError

_PROC_STATUS = Path("/proc/self/status")

#: /proc/self/status reports VmRSS/VmHWM in kibibytes.
_KIB = 1024


def _read_proc_field(field: str) -> int | None:
    """Read one ``kB`` field from ``/proc/self/status``, or ``None``."""
    try:
        text = _PROC_STATUS.read_text()
    except OSError:
        return None
    needle = field + ":"
    for line in text.splitlines():
        if line.startswith(needle):
            parts = line.split()
            if len(parts) >= 2 and parts[1].isdigit():
                return int(parts[1]) * _KIB
    return None


def current_rss_bytes() -> int | None:
    """Resident set size of this process right now, in bytes.

    ``None`` when ``/proc/self/status`` is unavailable (non-Linux);
    callers treat that as "memory observation unsupported", never as 0.
    """
    return _read_proc_field("VmRSS")


def peak_rss_bytes() -> int | None:
    """Lifetime high-water-mark RSS of this process, in bytes.

    Prefers procfs ``VmHWM``; falls back to ``getrusage`` ``ru_maxrss``
    (reported in kilobytes on Linux — the fallback matters only off
    Linux, where the BSD convention is also kilobytes... except macOS,
    which reports bytes; the heuristic below treats implausibly large
    values as already-bytes). ``None`` if neither source exists.
    """
    peak = _read_proc_field("VmHWM")
    if peak is not None:
        return peak
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if ru_maxrss <= 0:
        return None
    # macOS reports bytes; everything else kilobytes. A real RSS below
    # 1 MiB is implausible for a running CPython, so a huge raw value
    # means the platform already gave us bytes.
    if ru_maxrss > 1 << 32:
        return ru_maxrss
    return ru_maxrss * _KIB


class MemorySampler:
    """Background RSS sampler with per-stage peak attribution.

    Usage::

        sampler = MemorySampler(interval=0.05)
        with sampler:
            sampler.stage("parse")
            ...
            sampler.stage("encode")
            ...
        peaks = sampler.stage_peaks()   # {"parse": ..., "encode": ...}
        overall = sampler.peak_bytes()

    The thread is a daemon polling :func:`current_rss_bytes` every
    ``interval`` seconds and folding each reading into the max for the
    stage that was current when the sample was taken. One synchronous
    sample is taken at every stage transition (and at start/stop), so
    even a stage shorter than the interval gets at least one reading.
    On platforms without procfs the sampler runs but records nothing and
    :meth:`peak_bytes` returns ``None`` — capacity assertions gate on
    that rather than failing spuriously.
    """

    def __init__(self, interval: float = 0.05) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be > 0, got {interval}")
        self.interval = interval
        self._stage = "startup"
        self._peaks: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _sample(self) -> None:
        rss = current_rss_bytes()
        if rss is None:
            return
        with self._lock:
            stage = self._stage
            if rss > self._peaks.get(stage, 0):
                self._peaks[stage] = rss

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()

    def start(self) -> "MemorySampler":
        if self._thread is not None:
            raise ConfigError("MemorySampler already started")
        self._stop.clear()
        self._sample()
        self._thread = threading.Thread(
            target=self._run, name="mediar-memory-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._sample()
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "MemorySampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stage(self, name: str) -> None:
        """Declare the stage subsequent samples belong to."""
        if not name:
            raise ConfigError("stage name must be non-empty")
        self._sample()  # close out the previous stage with a fresh reading
        with self._lock:
            self._stage = name
        self._sample()

    def stage_peaks(self) -> dict[str, int]:
        """Peak observed RSS per declared stage, in bytes."""
        with self._lock:
            return dict(self._peaks)

    def peak_bytes(self) -> int | None:
        """Highest RSS observed across all stages, or ``None`` (no procfs)."""
        with self._lock:
            return max(self._peaks.values()) if self._peaks else None
