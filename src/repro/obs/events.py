"""Structured pipeline events and pluggable sinks.

The observability layer separates *aggregation* (timers, counters,
gauges — :mod:`repro.obs.metrics`) from the *event stream*: every timer
span and every explicit :meth:`~repro.obs.metrics.MetricsRegistry.emit`
call produces one flat dict record that is handed to a sink. Sinks are
deliberately tiny:

- :class:`InMemorySink` — keeps records in a list; what tests and
  notebooks use to assert on the stream.
- :class:`JsonlSink` — appends one JSON object per line to a file; the
  production trace format (``mediar --profile --trace events.jsonl``).
- :class:`NullSink` — drops everything; the default when only the
  aggregated metrics matter.

Records are plain ``dict``s with at least an ``"event"`` key; values
must be JSON-serializable (non-serializable values are stringified
rather than raising, so a bad field can never crash the hot path).
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from pathlib import Path

from repro.errors import ConfigError

EventRecord = dict


class EventSink:
    """Interface of an event sink (also usable as a no-op base)."""

    def write(self, record: Mapping) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resource (default: nothing to do)."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(EventSink):
    """Drops every record."""

    def write(self, record: Mapping) -> None:
        pass


class InMemorySink(EventSink):
    """Collects records in :attr:`events` (test / notebook sink)."""

    def __init__(self) -> None:
        self.events: list[EventRecord] = []

    def write(self, record: Mapping) -> None:
        self.events.append(dict(record))

    def of_type(self, event: str) -> list[EventRecord]:
        """The collected records whose ``"event"`` field equals ``event``."""
        return [r for r in self.events if r.get("event") == event]

    def clear(self) -> None:
        self.events.clear()


class JsonlSink(EventSink):
    """Appends one JSON object per line to ``path``.

    The file (and its parent directories) are created lazily on the
    first write; every record is flushed immediately so a trace is valid
    JSONL even if the process dies mid-run.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._handle = None
        self.records_written = 0

    def write(self, record: Mapping) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(dict(record), default=str) + "\n")
        self._handle.flush()
        self.records_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_jsonl(path: str | os.PathLike[str]) -> list[EventRecord]:
    """Parse a JSONL trace back into records (the round-trip helper).

    Raises :class:`~repro.errors.ConfigError` on a line that is not a
    JSON object, naming the offending line number.
    """
    records: list[EventRecord] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"invalid JSONL at {path}:{line_number}: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise ConfigError(
                    f"JSONL record at {path}:{line_number} is not an object"
                )
            records.append(record)
    return records
