"""Pipeline observability: metrics, timer spans, structured events.

A dependency-free layer threaded through the MeDIAR hot path. The
production-scale north star needs the pipeline to stop being a black
box: where does ``Maras.run`` spend its time, how many FP-tree nodes
does a quarter cost, why was a surveillance batch slow. Always-on
monitoring hooks answer those without touching the numbers when off.

- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (monotonic
  :meth:`~MetricsRegistry.timer` spans, :class:`Counter`,
  :class:`Gauge`), the no-op :data:`NULL_REGISTRY` default, and the
  :func:`get_registry` / :func:`use_registry` plumbing that lets
  library code record without carrying a registry parameter.
- :mod:`repro.obs.events` — the structured-event records and sinks
  (:class:`InMemorySink` for tests, :class:`JsonlSink` for production
  traces).
- :mod:`repro.obs.memory` — stdlib-only process-memory gauges
  (:func:`current_rss_bytes`, :func:`peak_rss_bytes`) and the
  per-stage :class:`MemorySampler` behind the capacity benchmark's
  memory-honesty numbers.

The parallel miner's dataflow scheduler is the densest emitter: one
``parallel.node`` event per merge-tree node (kind, queue depth at
submit, submit/done offsets, worker seconds — the realized schedule),
plus ``parallel.pool.*`` counters (``reuse`` / ``cold_start`` /
``delta_ships`` / ``residency_misses`` / ``worker_replacements``)
accounting the persistent pool's shard residency across mines.

Usage::

    from repro.obs import JsonlSink, MetricsRegistry

    registry = MetricsRegistry(sink=JsonlSink("trace.jsonl"))
    result = Maras(config, registry=registry).run(reports)
    print(result.metrics.format_table())
    registry.close()
"""

from repro.obs.events import (
    EventRecord,
    EventSink,
    InMemorySink,
    JsonlSink,
    NullSink,
    read_jsonl,
)
from repro.obs.memory import MemorySampler, current_rss_bytes, peak_rss_bytes
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    TimerReading,
    TimerStat,
    get_registry,
    merge_metric_dicts,
    use_registry,
)

__all__ = [
    "NULL_REGISTRY",
    "Counter",
    "EventRecord",
    "EventSink",
    "Gauge",
    "InMemorySink",
    "JsonlSink",
    "MemorySampler",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "NullSink",
    "TimerReading",
    "TimerStat",
    "current_rss_bytes",
    "get_registry",
    "merge_metric_dicts",
    "peak_rss_bytes",
    "read_jsonl",
    "use_registry",
]
