"""The stdlib-``sqlite3`` durable store: run catalog + checkpoints.

One WAL-mode SQLite file holds everything the durable tier needs:

``runs``
    The versioned run catalog. Saving a name inserts a new version row
    whose ``supersedes`` points at the previous one; readers load the
    newest non-compacted version. :meth:`SQLiteBackend.compact` nulls
    the payload bodies of superseded rows (keeping the catalog metadata
    queryable), :meth:`SQLiteBackend.prune` applies retention by
    deleting rows beyond the newest *keep* versions per run.

``checkpoints`` / ``journal``
    Crash-resumable surveillance. After each ingested batch, ``mediar
    watch --store sqlite:///…`` commits the serialized
    :class:`~repro.incremental.engine.IncrementalEngine` state *and*
    the journal rows of the batches it covers in **one transaction** —
    so a SIGKILL at any instant leaves either the previous consistent
    checkpoint or the new one, never a torn mix. On resume the journal
    is replayed against the input stream to verify the already-ingested
    prefix is the same data, then ingestion continues from the first
    unjournaled batch.

WAL mode keeps readers (a serving process loading snapshots) unblocked
by the writer (a watch process checkpointing); ``synchronous=NORMAL``
is crash-consistent for process kills — the contract the differential
harness enforces — while trading a fsync per commit against power-loss
durability, the standard WAL posture.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Any

from repro.errors import StoreError
from repro.store.backend import (
    Backend,
    Checkpoint,
    JournalEntry,
    RunRecord,
    utc_timestamp,
    validate_run_name,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL,
    version     INTEGER NOT NULL,
    created_at  TEXT NOT NULL,
    supersedes  INTEGER,
    n_clusters  INTEGER NOT NULL,
    quarter     TEXT NOT NULL DEFAULT '',
    payload     TEXT,
    UNIQUE (name, version)
);
CREATE TABLE IF NOT EXISTS checkpoints (
    run         TEXT PRIMARY KEY,
    updated_at  TEXT NOT NULL,
    n_batches   INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    state       TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS journal (
    run         TEXT NOT NULL,
    batch_index INTEGER NOT NULL,
    case_ids    TEXT NOT NULL,
    PRIMARY KEY (run, batch_index)
);
"""


class SQLiteBackend(Backend):
    """Versioned run catalog + surveillance checkpoints in one DB file."""

    supports_checkpoints = True

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.uri = f"sqlite://{self.path}"
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.is_dir():
            raise StoreError(f"{self.path} is a directory, not a SQLite file")
        try:
            # Autocommit mode; multi-statement writes use explicit
            # BEGIN IMMEDIATE so each logical operation is one commit.
            self._conn = sqlite3.connect(
                str(self.path), isolation_level=None, check_same_thread=False
            )
        except sqlite3.Error as error:
            raise StoreError(f"cannot open {self.path}: {error}") from None
        self._lock = threading.Lock()
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._conn.executescript(_SCHEMA)
        except sqlite3.DatabaseError as error:
            self._conn.close()
            raise StoreError(
                f"{self.path} is not a usable SQLite store ({error})"
            ) from None

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- run catalog ---------------------------------------------------

    def save_run(self, name: str, payload: dict[str, Any]) -> RunRecord:
        validate_run_name(name)
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        n_clusters = len(payload.get("clusters", ()))
        quarter = str(payload.get("quarter", ""))
        created_at = utc_timestamp()
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                row = self._conn.execute(
                    "SELECT version FROM runs WHERE name = ? "
                    "ORDER BY version DESC LIMIT 1",
                    (name,),
                ).fetchone()
                supersedes = row[0] if row else None
                version = (supersedes or 0) + 1
                self._conn.execute(
                    "INSERT INTO runs (name, version, created_at, supersedes,"
                    " n_clusters, quarter, payload) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        name,
                        version,
                        created_at,
                        supersedes,
                        n_clusters,
                        quarter,
                        body,
                    ),
                )
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                self._rollback()
                raise StoreError(
                    f"cannot save run {name!r} to {self.path}: {error}"
                ) from None
        return RunRecord(
            name=name,
            version=version,
            created_at=created_at,
            supersedes=supersedes,
            n_clusters=n_clusters,
            quarter=quarter,
            compacted=False,
            location=f"{self.uri}#{name}@v{version}",
        )

    def load_run(self, name: str, version: int | None = None) -> dict[str, Any]:
        with self._lock:
            if version is None:
                row = self._conn.execute(
                    "SELECT version, payload FROM runs WHERE name = ? "
                    "ORDER BY version DESC LIMIT 1",
                    (name,),
                ).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT version, payload FROM runs "
                    "WHERE name = ? AND version = ?",
                    (name, version),
                ).fetchone()
        if row is None:
            pinned = "" if version is None else f" version {version}"
            raise StoreError(f"no run named {name!r}{pinned} in {self.uri}")
        found_version, body = row
        if body is None:
            raise StoreError(
                f"run {name!r} version {found_version} was compacted; "
                "its payload body is gone (only catalog metadata remains)"
            )
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            raise StoreError(
                f"run {name!r} version {found_version} in {self.path} "
                f"holds invalid JSON ({error})"
            ) from None

    def list_runs(self) -> list[RunRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, version, created_at, supersedes, n_clusters,"
                " quarter, payload IS NULL FROM runs ORDER BY name, version"
            ).fetchall()
        return [
            RunRecord(
                name=name,
                version=version,
                created_at=created_at,
                supersedes=supersedes,
                n_clusters=n_clusters,
                quarter=quarter,
                compacted=bool(compacted),
                location=f"{self.uri}#{name}@v{version}",
            )
            for name, version, created_at, supersedes, n_clusters, quarter, compacted
            in rows
        ]

    def prune(self, keep: int = 1) -> int:
        if keep < 1:
            raise StoreError(f"prune keep must be >= 1, got {keep}")
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                cursor = self._conn.execute(
                    "DELETE FROM runs WHERE (name, version) NOT IN ("
                    " SELECT name, version FROM ("
                    "  SELECT name, version, ROW_NUMBER() OVER ("
                    "   PARTITION BY name ORDER BY version DESC) AS rank"
                    "  FROM runs) WHERE rank <= ?)",
                    (keep,),
                )
                deleted = cursor.rowcount
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                self._rollback()
                raise StoreError(f"prune failed on {self.path}: {error}") from None
        return deleted

    def compact(self) -> int:
        """Null superseded payload bodies; reclaim the file with VACUUM."""
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                cursor = self._conn.execute(
                    "UPDATE runs SET payload = NULL WHERE payload IS NOT NULL"
                    " AND (name, version) NOT IN ("
                    "  SELECT name, MAX(version) FROM runs GROUP BY name)"
                )
                dropped = cursor.rowcount
                self._conn.execute("COMMIT")
                if dropped:
                    # VACUUM rewrites the main file; the WAL truncate
                    # folds it in so the reclaim shows up on disk.
                    self._conn.execute("VACUUM")
                    self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error as error:
                self._rollback()
                raise StoreError(f"compact failed on {self.path}: {error}") from None
        return dropped

    # -- surveillance checkpoints --------------------------------------

    def save_checkpoint(
        self,
        run: str,
        state: dict[str, Any],
        *,
        n_batches: int,
        fingerprint: str,
        journal: list[JournalEntry] = (),
    ) -> None:
        validate_run_name(run)
        body = json.dumps(state, sort_keys=True, separators=(",", ":"))
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.execute(
                    "INSERT INTO checkpoints (run, updated_at, n_batches,"
                    " fingerprint, state) VALUES (?, ?, ?, ?, ?)"
                    " ON CONFLICT (run) DO UPDATE SET updated_at = excluded."
                    "updated_at, n_batches = excluded.n_batches,"
                    " fingerprint = excluded.fingerprint, state = excluded.state",
                    (run, utc_timestamp(), n_batches, fingerprint, body),
                )
                for entry in journal:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO journal (run, batch_index,"
                        " case_ids) VALUES (?, ?, ?)",
                        (
                            run,
                            entry.batch_index,
                            json.dumps(entry.case_ids, separators=(",", ":")),
                        ),
                    )
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                self._rollback()
                raise StoreError(
                    f"cannot checkpoint run {run!r} to {self.path}: {error}"
                ) from None

    def load_checkpoint(self, run: str) -> Checkpoint | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT updated_at, n_batches, fingerprint, state "
                "FROM checkpoints WHERE run = ?",
                (run,),
            ).fetchone()
        if row is None:
            return None
        updated_at, n_batches, fingerprint, body = row
        try:
            state = json.loads(body)
        except json.JSONDecodeError as error:
            raise StoreError(
                f"checkpoint of run {run!r} in {self.path} holds invalid "
                f"JSON ({error})"
            ) from None
        return Checkpoint(
            run=run,
            n_batches=n_batches,
            fingerprint=fingerprint,
            updated_at=updated_at,
            state=state,
        )

    def journal_case_ids(self, run: str, batch_index: int) -> list[str] | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT case_ids FROM journal WHERE run = ? AND batch_index = ?",
                (run, batch_index),
            ).fetchone()
        if row is None:
            return None
        return list(json.loads(row[0]))

    def clear_checkpoint(self, run: str) -> None:
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.execute("DELETE FROM checkpoints WHERE run = ?", (run,))
                self._conn.execute("DELETE FROM journal WHERE run = ?", (run,))
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                self._rollback()
                raise StoreError(
                    f"cannot clear checkpoint of {run!r}: {error}"
                ) from None

    def _rollback(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass
