"""Durable persistence: URI-addressed run stores and stream checkpoints.

Public surface of the storage subsystem:

- :func:`~repro.store.backend.open_backend` resolves ``dir:///path``,
  ``sqlite:///path.db`` or a bare directory path to a
  :class:`~repro.store.backend.Backend`;
- :class:`~repro.store.directory.DirectoryBackend` — the historical
  one-JSON-file-per-run layout, now with atomic writes;
- :class:`~repro.store.sqlite.SQLiteBackend` — versioned run catalog
  with retention/compaction plus crash-resumable surveillance
  checkpoints, all in one WAL-mode SQLite file;
- :mod:`~repro.store.checkpoint` — serialize/restore a
  :class:`~repro.core.incremental.SurveillanceMonitor` through a
  backend, with config fingerprinting and journal verification.
"""

from repro.store.backend import (
    Backend,
    Checkpoint,
    JournalEntry,
    RunRecord,
    open_backend,
    validate_run_name,
)
from repro.store.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_monitor,
    config_fingerprint,
    restore_monitor,
    verify_journal,
)
from repro.store.directory import DirectoryBackend
from repro.store.sqlite import SQLiteBackend

__all__ = [
    "Backend",
    "Checkpoint",
    "CHECKPOINT_VERSION",
    "DirectoryBackend",
    "JournalEntry",
    "RunRecord",
    "SQLiteBackend",
    "checkpoint_monitor",
    "config_fingerprint",
    "open_backend",
    "restore_monitor",
    "validate_run_name",
    "verify_journal",
]
