"""The durable-store abstraction: named runs behind a URI.

A :class:`Backend` is the persistence substrate every other layer sits
on: the serving tier's :class:`~repro.serve.store.ResultStore` saves and
loads run snapshots through it, ``mediar watch --store`` checkpoints the
incremental engine into it, and the ``mediar runs`` CLI inspects it.
Two implementations ship:

- :class:`~repro.store.directory.DirectoryBackend` — the historical
  one-JSON-file-per-run layout (``dir:///path`` or a bare path), now
  with crash-safe atomic writes;
- :class:`~repro.store.sqlite.SQLiteBackend` — a single WAL-mode
  SQLite file (``sqlite:///path.db``) holding a versioned run catalog
  with retention/compaction plus the engine checkpoint + batch journal
  that make a SIGKILL'd surveillance stream resumable.

Backends are addressed by URI so every entry point (``ResultStore.
save``/``load``, ``mediar serve --store``, ``mediar watch --store``,
``mediar runs``) takes one string and :func:`open_backend` picks the
implementation.
"""

from __future__ import annotations

import re
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import StoreError

_RUN_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def validate_run_name(name: str) -> str:
    """Run names become file names, URL values and catalog keys."""
    if not isinstance(name, str) or not _RUN_NAME.match(name):
        raise StoreError(
            "run names must be alphanumeric with ._- separators "
            f"(they become file names and URL values), got {name!r}"
        )
    return name


def utc_timestamp() -> str:
    """The catalog's ``created_at`` format (UTC, second resolution)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass(frozen=True, slots=True)
class RunRecord:
    """One catalog row: a named, versioned snapshot.

    ``location`` is backend-specific — the JSON file path for the
    directory backend, a ``sqlite:///db#name@vN`` fragment for SQLite —
    and exists so CLIs can print where a save landed. ``compacted``
    marks rows whose payload body was dropped by
    :meth:`Backend.compact`; they stay listable but not loadable.
    """

    name: str
    version: int
    created_at: str
    supersedes: int | None  # version number this row replaced, if any
    n_clusters: int
    quarter: str
    compacted: bool
    location: Any

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "version": self.version,
            "created_at": self.created_at,
            "supersedes": self.supersedes,
            "n_clusters": self.n_clusters,
            "quarter": self.quarter,
            "compacted": self.compacted,
        }


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """A restorable surveillance state, as stored by a backend."""

    run: str
    n_batches: int
    fingerprint: str
    updated_at: str
    state: dict[str, Any]


@dataclass(frozen=True, slots=True)
class JournalEntry:
    """The raw case ids one ingested batch contained (resume guard)."""

    batch_index: int
    case_ids: list[str] = field(default_factory=list)


class Backend(ABC):
    """Durable storage for named run snapshots and surveillance state.

    Run-catalog methods are mandatory; the checkpoint/journal family is
    optional (``supports_checkpoints``) — only the SQLite backend can
    commit a checkpoint and its journal rows atomically, which the
    crash-resume contract requires.
    """

    #: URI this backend was opened from (echoed in errors and CLIs).
    uri: str

    supports_checkpoints: bool = False

    # -- run catalog ---------------------------------------------------

    @abstractmethod
    def save_run(self, name: str, payload: dict[str, Any]) -> RunRecord:
        """Persist one snapshot payload atomically; returns its record.

        Saving an existing name creates a new version that supersedes
        the previous one (the directory backend, which has no version
        axis, replaces the file in place and reports version 1).
        """

    @abstractmethod
    def load_run(self, name: str, version: int | None = None) -> dict[str, Any]:
        """The payload of ``name`` (latest version unless pinned).

        Raises :class:`~repro.errors.StoreError` for unknown runs,
        compacted payloads, and undecodable stored bytes.
        """

    @abstractmethod
    def list_runs(self) -> list[RunRecord]:
        """Every catalog row, ordered by (name, version)."""

    def run_names(self) -> list[str]:
        """Distinct run names with at least one loadable version."""
        names = {
            record.name for record in self.list_runs() if not record.compacted
        }
        return sorted(names)

    @abstractmethod
    def prune(self, keep: int = 1) -> int:
        """Drop catalog rows beyond the newest ``keep`` versions per run.

        Returns the number of rows deleted. The directory backend holds
        one version per run, so it always returns 0.
        """

    @abstractmethod
    def compact(self) -> int:
        """Drop the payload bodies of superseded versions, keep the rows.

        Returns the number of payloads dropped. Catalog metadata
        (version, created_at, supersedes) stays queryable after
        compaction; only the latest version of each run remains
        loadable.
        """

    # -- surveillance checkpoints --------------------------------------

    def save_checkpoint(
        self,
        run: str,
        state: dict[str, Any],
        *,
        n_batches: int,
        fingerprint: str,
        journal: list[JournalEntry] = (),
    ) -> None:
        """Atomically persist the engine state + the batches' journal rows."""
        raise StoreError(
            f"{type(self).__name__} does not support checkpoints; "
            "use a sqlite:///path.db store for crash-resumable surveillance"
        )

    def load_checkpoint(self, run: str) -> Checkpoint | None:
        """The latest checkpoint of ``run``, or None when there is none."""
        raise StoreError(
            f"{type(self).__name__} does not support checkpoints; "
            "use a sqlite:///path.db store for crash-resumable surveillance"
        )

    def journal_case_ids(self, run: str, batch_index: int) -> list[str] | None:
        """The journaled case ids of one ingested batch (None if absent)."""
        raise StoreError(
            f"{type(self).__name__} does not support checkpoints; "
            "use a sqlite:///path.db store for crash-resumable surveillance"
        )

    def clear_checkpoint(self, run: str) -> None:
        """Drop the checkpoint and journal of ``run`` (idempotent)."""
        raise StoreError(
            f"{type(self).__name__} does not support checkpoints; "
            "use a sqlite:///path.db store for crash-resumable surveillance"
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_backend(target: str | Path) -> Backend:
    """Resolve a store URI (or bare path) to a backend instance.

    - ``sqlite:///abs/path.db`` / ``sqlite://rel/path.db`` → SQLite;
    - ``dir:///abs/path`` / ``dir://rel/path`` → directory layout;
    - anything else is a filesystem path → directory layout (the
      pre-URI calling convention of ``ResultStore.save``/``load``).
    """
    from repro.store.directory import DirectoryBackend
    from repro.store.sqlite import SQLiteBackend

    text = str(target)
    for scheme, cls in (("sqlite://", SQLiteBackend), ("dir://", DirectoryBackend)):
        if text.startswith(scheme):
            path = text[len(scheme):]
            if not path:
                raise StoreError(f"store URI {text!r} has an empty path")
            return cls(path)
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise StoreError(
            f"unknown store scheme {scheme!r} in {text!r} "
            "(expected sqlite:// or dir://)"
        )
    return DirectoryBackend(target)
