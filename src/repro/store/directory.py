"""The one-JSON-file-per-run directory layout, behind :class:`Backend`.

This is the original ``ResultStore.save``/``load`` format — a directory
of ``<name>.json`` export payloads — refactored behind the backend
interface so it stays fully interchangeable with the SQLite catalog for
serving. Two durability fixes over the original:

- **atomic writes**: each snapshot is written to a temp file in the
  same directory and :func:`os.replace`'d into place, so a crash
  mid-save can never leave a torn ``<name>.json`` that poisons the next
  ``--load``;
- **diagnosable reads**: an unreadable or non-JSON file raises a
  one-line :class:`~repro.errors.StoreError` naming the file instead of
  a raw traceback.

The layout has no version axis — saving a run replaces its file — so
catalog rows always report version 1, :meth:`prune` and :meth:`compact`
are no-ops, and checkpoints are unsupported (they need the SQLite
backend's atomic multi-table commit).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.errors import StoreError
from repro.store.backend import (
    Backend,
    RunRecord,
    utc_timestamp,
    validate_run_name,
)


class DirectoryBackend(Backend):
    """Run snapshots as ``<name>.json`` files in one directory."""

    supports_checkpoints = False

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.uri = f"dir://{self.directory}"

    # -- run catalog ---------------------------------------------------

    def _path(self, name: str) -> Path:
        return self.directory / f"{validate_run_name(name)}.json"

    def save_run(self, name: str, payload: dict[str, Any]) -> RunRecord:
        path = self._path(name)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Temp file in the same directory so os.replace is a same-
        # filesystem rename: readers see the old bytes or the new bytes,
        # never a prefix.
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{name}.", suffix=".json.tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return self._record(name, payload, path)

    def load_run(self, name: str, version: int | None = None) -> dict[str, Any]:
        if version not in (None, 1):
            raise StoreError(
                f"the directory store keeps only the latest version of "
                f"{name!r}; cannot load version {version}"
            )
        path = self._path(name)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise StoreError(
                f"no run named {name!r} under {self.directory}"
            ) from None
        except OSError as error:
            raise StoreError(f"cannot read {path}: {error}") from None
        try:
            return json.loads(text)
        except json.JSONDecodeError as error:
            raise StoreError(
                f"{path} is not valid JSON ({error}); the snapshot is "
                "corrupt — re-save the run or remove the file"
            ) from None

    def list_runs(self) -> list[RunRecord]:
        if not self.directory.is_dir():
            return []
        records = []
        for path in sorted(self.directory.glob("*.json")):
            if path.name.startswith("."):
                continue  # in-flight temp files
            try:
                payload = self.load_run(path.stem)
            except StoreError:
                # An unreadable file stays visible in the catalog (so
                # `mediar runs list` surfaces it) but is marked
                # unloadable rather than aborting the whole listing.
                records.append(
                    RunRecord(
                        name=path.stem,
                        version=1,
                        created_at="",
                        supersedes=None,
                        n_clusters=-1,
                        quarter="",
                        compacted=True,
                        location=path,
                    )
                )
                continue
            records.append(self._record(path.stem, payload, path))
        return records

    def _record(self, name: str, payload: dict[str, Any], path: Path) -> RunRecord:
        try:
            modified = path.stat().st_mtime
        except OSError:
            modified = None
        return RunRecord(
            name=name,
            version=1,
            created_at=(
                utc_timestamp()
                if modified is None
                else time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(modified))
            ),
            supersedes=None,
            n_clusters=len(payload.get("clusters", ())),
            quarter=str(payload.get("quarter", "")),
            compacted=False,
            location=path,
        )

    def prune(self, keep: int = 1) -> int:
        if keep < 1:
            raise StoreError(f"prune keep must be >= 1, got {keep}")
        return 0  # one version per run by construction

    def compact(self) -> int:
        return 0  # nothing superseded is retained
