"""Checkpoint/restore of a surveillance stream through a backend.

This module is the bridge between the in-memory carried state of
:class:`~repro.core.incremental.SurveillanceMonitor` /
:class:`~repro.incremental.engine.IncrementalEngine` and its durable
JSON form in a :class:`~repro.store.backend.Backend`:

- :func:`config_fingerprint` hashes the *output-affecting* fields of a
  :class:`~repro.core.pipeline.MarasConfig`. Resume refuses a
  checkpoint written under a different fingerprint — silently mixing,
  say, two ``min_support`` values would produce a stream that matches
  *neither* config's one-shot run. ``n_workers`` and
  ``shard_strategy`` are deliberately excluded: the engine's output is
  byte-identical across worker counts (the differential harness in
  ``tests/parallel`` enforces it), so a stream checkpointed at
  ``--workers 4`` may resume at ``--workers 1`` and vice versa.
- :func:`checkpoint_monitor` / :func:`restore_monitor` convert the
  monitor's state dict (which carries live
  :class:`~repro.faers.schema.CaseReport` objects) to and from the
  JSON payload a backend stores, and pair it with the batch journal
  entries that make the resume verifiable against the input stream.

The correctness contract — a SIGKILL'd, resumed stream exports the
same bytes as an uninterrupted one — rests on two invariants the rest
of the codebase already enforces: the encoder's in-place state equals a
fresh rebuild over the kept reports, and every downstream cache
(support oracle, artifacts, support types) affects speed only, never
values. ``tests/store`` asserts the contract end to end, including
kills inside a batch.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.core.incremental import SurveillanceMonitor
from repro.core.pipeline import MarasConfig
from repro.core.ranking import RankingMethod
from repro.errors import StoreError
from repro.faers.schema import CaseReport
from repro.store.backend import Backend, JournalEntry

#: Bump when the checkpoint payload layout changes incompatibly.
CHECKPOINT_VERSION = 1

# MarasConfig fields that change the exported bytes. Excluded on
# purpose: n_workers / shard_strategy (byte-identical across values),
# incremental / incremental_rebuild_fraction (select *how* the result
# is computed, not what it is), use_bitsets / count_rule_space (the
# engine already pins them).
_FINGERPRINT_FIELDS = (
    "min_support",
    "max_itemset_len",
    "max_drugs",
    "min_confidence",
    "clean",
    "theta",
    "decay",
)


def config_fingerprint(config: MarasConfig) -> str:
    """Hash of the config fields that determine the stream's output."""
    payload = {name: getattr(config, name) for name in _FINGERPRINT_FIELDS}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _engine_state_to_json(state: dict[str, Any]) -> dict[str, Any]:
    payload = dict(state)
    if "cleaner" in payload:
        cleaner = dict(payload["cleaner"])
        cleaner["reports"] = [r.to_json() for r in cleaner["reports"]]
        payload["cleaner"] = cleaner
    else:
        payload["rows"] = [r.to_json() for r in payload["rows"]]
    return payload


def _engine_state_from_json(payload: dict[str, Any]) -> dict[str, Any]:
    state = dict(payload)
    if "cleaner" in state:
        cleaner = dict(state["cleaner"])
        cleaner["reports"] = [
            CaseReport.from_json(r) for r in cleaner["reports"]
        ]
        state["cleaner"] = cleaner
    else:
        state["rows"] = [CaseReport.from_json(r) for r in state["rows"]]
    return state


def checkpoint_monitor(
    backend: Backend,
    run: str,
    monitor: SurveillanceMonitor,
    *,
    fingerprint: str,
    journal: list[JournalEntry] = (),
) -> None:
    """Atomically persist the monitor's state + the batches' journal rows.

    Called after each ingested batch; ``journal`` carries the entries
    of the batches this checkpoint newly covers. A kill before the
    commit leaves the previous checkpoint (the batch replays on
    resume); a kill after it leaves this one — never a torn mix.
    """
    state = monitor.checkpoint_state()
    payload = {
        "version": CHECKPOINT_VERSION,
        "batch_index": state["batch_index"],
        "n_reports": state["n_reports"],
        "seen_case_ids": state["seen_case_ids"],
        "engine": _engine_state_to_json(state["engine"]),
    }
    backend.save_checkpoint(
        run,
        payload,
        n_batches=state["batch_index"],
        fingerprint=fingerprint,
        journal=journal,
    )


def restore_monitor(
    backend: Backend,
    run: str,
    config: MarasConfig,
    *,
    method: RankingMethod = RankingMethod.EXCLUSIVENESS_CONFIDENCE,
    riser_threshold: int = 5,
    registry=None,
) -> SurveillanceMonitor | None:
    """Rebuild the checkpointed monitor of ``run``; None when absent.

    Raises :class:`~repro.errors.StoreError` when the stored
    fingerprint disagrees with ``config`` — resuming under different
    mining parameters would yield a stream matching neither run.
    """
    checkpoint = backend.load_checkpoint(run)
    if checkpoint is None:
        return None
    stored_version = checkpoint.state.get("version")
    if stored_version != CHECKPOINT_VERSION:
        raise StoreError(
            f"checkpoint of run {run!r} has layout version "
            f"{stored_version!r}; this build reads {CHECKPOINT_VERSION}"
        )
    expected = config_fingerprint(config)
    if checkpoint.fingerprint != expected:
        raise StoreError(
            f"checkpoint of run {run!r} was written under a different "
            "mining config (fingerprint "
            f"{checkpoint.fingerprint[:12]}… != {expected[:12]}…); "
            "resume with the original parameters or clear the checkpoint"
        )
    state = {
        "batch_index": checkpoint.state["batch_index"],
        "n_reports": checkpoint.state["n_reports"],
        "seen_case_ids": checkpoint.state["seen_case_ids"],
        "engine": _engine_state_from_json(checkpoint.state["engine"]),
    }
    return SurveillanceMonitor.from_checkpoint_state(
        config,
        state,
        method=method,
        riser_threshold=riser_threshold,
        registry=registry,
    )


def verify_journal(
    backend: Backend,
    run: str,
    batches: list[list[CaseReport]],
    n_done: int,
) -> None:
    """Check the journaled prefix matches the re-derived input batches.

    The journal records the case ids each already-ingested batch
    contained. On resume the caller re-derives the batch split from its
    input; if the first ``n_done`` batches disagree with the journal,
    the input stream changed since the checkpoint and continuing would
    silently corrupt the run.
    """
    for index in range(n_done):
        journaled = backend.journal_case_ids(run, index)
        if journaled is None:
            raise StoreError(
                f"checkpoint of run {run!r} covers {n_done} batches but "
                f"batch {index} has no journal row; the store is "
                "inconsistent — clear the checkpoint to start over"
            )
        actual = [report.case_id for report in batches[index]]
        if journaled != actual:
            raise StoreError(
                f"batch {index} of the input stream does not match the "
                f"journal of run {run!r} ({len(actual)} vs "
                f"{len(journaled)} case ids); the input changed since "
                "the checkpoint — clear it to start over"
            )
