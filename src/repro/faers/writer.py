"""Writer for FAERS-format quarterly ASCII files.

The inverse of :mod:`repro.faers.parser`: serialize case reports into
the DEMO / DRUG / REAC ``$``-delimited layout FDA publishes. Used by the
CLI's ``generate`` command, the examples, and the round-trip tests —
and handy for producing fixture quarters for any downstream tool that
consumes the real format.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError
from repro.faers.schema import CaseReport

_REPORT_CODES = {
    "EXPEDITED": "EXP",
    "PERIODIC": "PER",
    "DIRECT": "DIR",
}


@dataclass(frozen=True, slots=True)
class QuarterFiles:
    """Paths of one written quarter."""

    demo: Path
    drug: Path
    reac: Path

    def as_tuple(self) -> tuple[Path, Path, Path]:
        return (self.demo, self.drug, self.reac)


def quarter_file_names(quarter: str) -> tuple[str, str, str]:
    """Canonical file names for a quarter label, e.g. 2014Q1 → DEMO14Q1.txt."""
    if len(quarter) != 6 or quarter[4] != "Q" or not quarter[:4].isdigit():
        raise ConfigError(f"quarter must look like 2014Q1, got {quarter!r}")
    suffix = quarter[2:4] + quarter[4:]
    return (f"DEMO{suffix}.txt", f"DRUG{suffix}.txt", f"REAC{suffix}.txt")


def write_quarter_files(
    reports: Sequence[CaseReport],
    directory: str | os.PathLike[str],
    *,
    quarter: str | None = None,
) -> QuarterFiles:
    """Write ``reports`` as one quarter's DEMO/DRUG/REAC files.

    ``quarter`` defaults to the uniform quarter label of the reports;
    it must be resolvable one way or the other because it names the
    files. Report ids become ``primaryid`` values verbatim, so parsing
    the files back yields the same case ids.
    """
    if not reports:
        raise ConfigError("nothing to write: reports are empty")
    if quarter is None:
        labels = {report.quarter for report in reports if report.quarter}
        if len(labels) != 1:
            raise ConfigError(
                "reports carry no single quarter label; pass quarter= explicitly"
            )
        quarter = next(iter(labels))
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    demo_name, drug_name, reac_name = quarter_file_names(quarter)

    demo_lines = ["primaryid$caseid$rept_cod$age$age_cod$sex$occr_country$event_dt"]
    drug_lines = ["primaryid$drug_seq$role_cod$drugname"]
    reac_lines = ["primaryid$pt"]
    for report in reports:
        if "$" in report.case_id:
            raise ConfigError(
                f"case id {report.case_id!r} contains the field delimiter"
            )
        age = "" if report.age is None else f"{report.age:g}"
        event = (report.event_date or "").replace("-", "")
        demo_lines.append(
            f"{report.case_id}${report.case_id}$"
            f"{_REPORT_CODES[report.report_type.name]}$"
            f"{age}$YR${report.sex or ''}${report.country or ''}${event}"
        )
        for sequence, drug in enumerate(report.drugs, start=1):
            drug_lines.append(f"{report.case_id}${sequence}$PS${drug}")
        reac_lines.extend(f"{report.case_id}${adr}" for adr in report.adrs)

    files = QuarterFiles(
        demo=directory / demo_name,
        drug=directory / drug_name,
        reac=directory / reac_name,
    )
    files.demo.write_text("\n".join(demo_lines) + "\n", encoding="latin-1")
    files.drug.write_text("\n".join(drug_lines) + "\n", encoding="latin-1")
    files.reac.write_text("\n".join(reac_lines) + "\n", encoding="latin-1")
    return files
