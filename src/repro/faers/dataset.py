"""The bridge from case reports to the mining substrate.

:class:`ReportDataset` holds cleaned :class:`~repro.faers.schema.CaseReport`
objects, produces Table 5.1-style statistics, and encodes itself as a
:class:`~repro.mining.transactions.TransactionDatabase` whose items carry
drug/ADR kinds. The encoding keeps a tid → case-id mapping, which is what
lets the pipeline answer "show me the original reports supporting this
rule" (§4.1, mapping interactions to actual reports).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faers.schema import CaseReport, ReportType
from repro.mining.transactions import ItemCatalog, TransactionDatabase

DRUG_KIND = "drug"
ADR_KIND = "adr"

# Suffix applied to a reaction term whose string collides with a drug
# name (rare, but FAERS verbatim data makes no namespace promise).
_COLLISION_SUFFIX = " (REACTION)"


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """One row of Table 5.1: reports / distinct drugs / distinct ADRs."""

    quarter: str
    n_reports: int
    n_drugs: int
    n_adrs: int


class EncodedDataset:
    """A :class:`TransactionDatabase` plus the report linkage behind it."""

    def __init__(
        self,
        database: TransactionDatabase,
        case_ids: tuple[str, ...],
        reports: tuple[CaseReport, ...],
    ) -> None:
        if not (len(database) == len(case_ids) == len(reports)):
            raise ConfigError(
                "database, case_ids and reports must be parallel sequences"
            )
        self.database = database
        self._case_ids = case_ids
        self._reports = reports
        self._report_by_case = {r.case_id: r for r in reports}

    @classmethod
    def from_parts(
        cls,
        database: TransactionDatabase,
        case_ids: tuple[str, ...],
        reports: tuple[CaseReport, ...],
        report_by_case: dict[str, CaseReport],
    ) -> "EncodedDataset":
        """Assemble from pre-validated parallel parts without re-deriving.

        The incremental engine maintains the tid → case-id / report
        linkage across batches; rebuilding the per-case dict from
        scratch on every batch would reintroduce the O(history) cost the
        engine exists to avoid. Callers are trusted to pass parallel
        sequences and a consistent ``report_by_case``.
        """
        self = cls.__new__(cls)
        self.database = database
        self._case_ids = case_ids
        self._reports = reports
        self._report_by_case = report_by_case
        return self

    @property
    def catalog(self) -> ItemCatalog:
        return self.database.catalog

    def case_id_of(self, tid: int) -> str:
        """Case id of transaction ``tid``."""
        return self._case_ids[tid]

    def report_of(self, tid: int) -> CaseReport:
        """Full source report of transaction ``tid``."""
        return self._reports[tid]

    def supporting_reports(self, itemset: Iterable[int]) -> list[CaseReport]:
        """Source reports containing every item of ``itemset``.

        This is the §4.1 drill-down: from a ranked rule back to the raw
        cases that support it.
        """
        tids = sorted(self.database.tidset_of(frozenset(itemset)))
        return [self._reports[tid] for tid in tids]


class ReportDataset:
    """An ordered, immutable collection of case reports."""

    def __init__(self, reports: Sequence[CaseReport], quarter: str = "") -> None:
        self._reports = tuple(reports)
        ids = [r.case_id for r in self._reports]
        if len(set(ids)) != len(ids):
            duplicated = sorted({i for i in ids if ids.count(i) > 1})[:5]
            raise ConfigError(
                f"duplicate case ids in dataset (run ReportCleaner first): "
                f"{duplicated}"
            )
        self.quarter = quarter or self._infer_quarter()

    @classmethod
    def from_cleaned(
        cls, reports: tuple[CaseReport, ...], quarter: str = ""
    ) -> "ReportDataset":
        """Wrap reports known to have unique case ids, skipping the scan.

        The duplicate-case-id check in ``__init__`` is O(n) on every
        call; the incremental engine already guarantees uniqueness (its
        merge state is keyed by case id), so the per-batch result
        assembly uses this trusted path. ``quarter`` follows the same
        contract as ``__init__`` (empty string = no single quarter).
        """
        self = cls.__new__(cls)
        self._reports = tuple(reports)
        self.quarter = quarter
        return self

    def _infer_quarter(self) -> str:
        quarters = {r.quarter for r in self._reports if r.quarter}
        return next(iter(quarters)) if len(quarters) == 1 else ""

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[CaseReport]:
        return iter(self._reports)

    def __getitem__(self, index: int) -> CaseReport:
        return self._reports[index]

    @property
    def reports(self) -> tuple[CaseReport, ...]:
        return self._reports

    def distinct_drugs(self) -> frozenset[str]:
        return frozenset(drug for r in self._reports for drug in r.drugs)

    def distinct_adrs(self) -> frozenset[str]:
        return frozenset(adr for r in self._reports for adr in r.adrs)

    def stats(self) -> DatasetStats:
        """The Table 5.1 row for this dataset."""
        return DatasetStats(
            quarter=self.quarter,
            n_reports=len(self._reports),
            n_drugs=len(self.distinct_drugs()),
            n_adrs=len(self.distinct_adrs()),
        )

    def filter_report_type(self, report_type: ReportType) -> "ReportDataset":
        """Keep only reports of one provenance (the paper keeps EXP)."""
        return ReportDataset(
            [r for r in self._reports if r.report_type is report_type],
            quarter=self.quarter,
        )

    def filter_quarter(self, quarter: str) -> "ReportDataset":
        return ReportDataset(
            [r for r in self._reports if r.quarter == quarter], quarter=quarter
        )

    def mentioning_drug(self, drug: str) -> "ReportDataset":
        """Reports whose drug list contains ``drug`` (exact canonical name)."""
        return ReportDataset(
            [r for r in self._reports if drug in r.drugs], quarter=self.quarter
        )

    def encode(self, catalog: ItemCatalog | None = None) -> EncodedDataset:
        """Encode into a transaction database with drug/ADR item kinds.

        A reaction term that collides with a drug name is disambiguated
        with a ``" (REACTION)"`` suffix; the collision is resolved
        consistently across the whole dataset.
        """
        catalog = catalog if catalog is not None else ItemCatalog()
        drug_labels = self.distinct_drugs()
        transactions: list[set[int]] = []
        case_ids: list[str] = []
        for report in self._reports:
            row: set[int] = set()
            for drug in report.drugs:
                row.add(catalog.add(drug, DRUG_KIND))
            for adr in report.adrs:
                label = adr + _COLLISION_SUFFIX if adr in drug_labels else adr
                row.add(catalog.add(label, ADR_KIND))
            transactions.append(row)
            case_ids.append(report.case_id)
        database = TransactionDatabase(transactions, catalog)
        return EncodedDataset(database, tuple(case_ids), self._reports)


def stats_table(datasets: Sequence[ReportDataset]) -> list[DatasetStats]:
    """Table 5.1: one stats row per quarter dataset."""
    return [dataset.stats() for dataset in datasets]
