"""Parser for FAERS quarterly ASCII extracts.

FDA ships each quarter as a set of ``$``-delimited text files with a
single header line. One adverse-event case is spread across DEMO (one
row per case version), DRUG (one row per drug mention) and REAC (one row
per reaction). Two layout generations exist and both are handled:

- legacy AERS (through 2012Q3): rows keyed by ``ISR``;
- modern FAERS (2012Q4 on, the paper's 2014 data): keyed by
  ``primaryid``.

:func:`parse_quarter` joins the three files into
:class:`~repro.faers.schema.CaseReport` objects. Rows that cannot be
joined (a DRUG/REAC row whose key has no DEMO row) or cases missing a
drug or a reaction are counted and skipped rather than raising — real
extracts always contain a few of these — but a *structurally* broken
file (missing key column, malformed header) raises
:class:`~repro.errors.ParseError` immediately.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ParseError
from repro.faers.schema import CaseReport, ReportType
from repro.obs import get_registry

DELIMITER = "$"

# Report-type codes seen across extract generations; 30DAY/5DAY are the
# legacy expedited codes.
_REPORT_TYPE_CODES = {
    "EXP": ReportType.EXPEDITED,
    "30DAY": ReportType.EXPEDITED,
    "5DAY": ReportType.EXPEDITED,
    "PER": ReportType.PERIODIC,
    "DIR": ReportType.DIRECT,
}

_KEY_COLUMNS = ("primaryid", "isr")


def read_delimited(path: str | os.PathLike[str]) -> Iterator[dict[str, str]]:
    """Yield one lower-cased-key dict per data row of a ``$`` file.

    Short rows are padded with empty strings; rows *longer* than the
    header raise :class:`~repro.errors.ParseError` since that always
    means a corrupted record boundary.
    """
    path = Path(path)
    with path.open("r", encoding="latin-1") as handle:
        header_line = handle.readline()
        if not header_line.strip():
            raise ParseError("empty file or blank header", path=str(path), line_number=1)
        columns = [c.strip().lower() for c in header_line.rstrip("\n").split(DELIMITER)]
        if len(set(columns)) != len(columns):
            raise ParseError(
                f"duplicate column names in header: {columns}",
                path=str(path),
                line_number=1,
            )
        for line_number, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            values = line.split(DELIMITER)
            if len(values) > len(columns):
                raise ParseError(
                    f"row has {len(values)} fields but header has {len(columns)}",
                    path=str(path),
                    line_number=line_number,
                )
            values.extend([""] * (len(columns) - len(values)))
            yield dict(zip(columns, values))


def _case_key(row: dict[str, str], path: str) -> str:
    for column in _KEY_COLUMNS:
        value = row.get(column, "").strip()
        if value:
            return value
    raise ParseError(
        f"row has no case key (expected one of {_KEY_COLUMNS}): {row}",
        path=path,
    )


def _require_key_column(first_row: dict[str, str], path: str) -> None:
    if not any(column in first_row for column in _KEY_COLUMNS):
        raise ParseError(
            f"file lacks a case-key column (one of {_KEY_COLUMNS}); "
            f"columns present: {sorted(first_row)}",
            path=path,
        )


@dataclass(slots=True)
class ParseStats:
    """Row accounting for one :func:`parse_quarter` run."""

    demo_rows: int = 0
    drug_rows: int = 0
    reac_rows: int = 0
    orphan_drug_rows: int = 0
    orphan_reac_rows: int = 0
    cases_without_drugs: int = 0
    cases_without_reactions: int = 0
    reports: int = 0


def iter_quarter(
    demo_path: str | os.PathLike[str],
    drug_path: str | os.PathLike[str],
    reac_path: str | os.PathLike[str],
    *,
    quarter: str = "",
    report_types: frozenset[ReportType] | None = None,
    stats: ParseStats | None = None,
) -> Iterator[CaseReport]:
    """Stream one quarter's joined case reports without materializing them.

    The generator behind :func:`parse_quarter`: reports are yielded in
    **first-seen DEMO-row order** (the order a key's first DEMO row
    appears in the file — later versions of a case supersede the row
    content but never move the case's position), one at a time, so the
    caller decides whether a list ever exists. Pass a *fresh*
    :class:`ParseStats` to receive row accounting; it is complete only
    once the generator is exhausted.

    Memory: the three-file join inherently indexes the quarter's DEMO
    rows and per-case item sets by key before emission can start (a
    case's last DRUG row may be the file's last line), so peak memory is
    O(cases in the quarter) — but the emitted ``CaseReport`` stream is
    not retained, and each case's joined state is released as it is
    yielded. Feeding a multi-quarter sequence through this keeps peak
    memory at one quarter's index, not the whole stream.
    """
    stats = stats if stats is not None else ParseStats()

    demographics: dict[str, dict[str, str]] = {}
    order: list[str] = []
    for row in read_delimited(demo_path):
        if stats.demo_rows == 0:
            _require_key_column(row, str(demo_path))
        stats.demo_rows += 1
        key = _case_key(row, str(demo_path))
        if key not in demographics:
            order.append(key)
        demographics[key] = row  # later versions of a case supersede earlier

    drugs: dict[str, set[str]] = {}
    for row in read_delimited(drug_path):
        if stats.drug_rows == 0:
            _require_key_column(row, str(drug_path))
        stats.drug_rows += 1
        key = _case_key(row, str(drug_path))
        if key not in demographics:
            stats.orphan_drug_rows += 1
            continue
        name = row.get("drugname", "").strip()
        if name:
            drugs.setdefault(key, set()).add(name)

    reactions: dict[str, set[str]] = {}
    for row in read_delimited(reac_path):
        if stats.reac_rows == 0:
            _require_key_column(row, str(reac_path))
        stats.reac_rows += 1
        key = _case_key(row, str(reac_path))
        if key not in demographics:
            stats.orphan_reac_rows += 1
            continue
        term = row.get("pt", "").strip()
        if term:
            reactions.setdefault(key, set()).add(term)

    for key in order:
        # Joined state is released as each case is emitted, so memory
        # sheds while the stream drains.
        row = demographics.pop(key)
        case_drugs = drugs.pop(key, None)
        case_reactions = reactions.pop(key, None)
        if not case_drugs:
            stats.cases_without_drugs += 1
            continue
        if not case_reactions:
            stats.cases_without_reactions += 1
            continue
        report_type = _parse_report_type(row)
        if report_types is not None and report_type not in report_types:
            continue
        stats.reports += 1
        yield CaseReport.build(
            case_id=key,
            drugs=case_drugs,
            adrs=case_reactions,
            report_type=report_type,
            quarter=quarter,
            age=_parse_age(row),
            sex=row.get("sex", row.get("gndr_cod", "")).strip() or None,
            country=row.get("occr_country", row.get("reporter_country", "")).strip()
            or None,
            event_date=_parse_event_date(row),
        )
    registry = get_registry()
    if registry.enabled:
        registry.counter("faers.parse.demo_rows").inc(stats.demo_rows)
        registry.counter("faers.parse.drug_rows").inc(stats.drug_rows)
        registry.counter("faers.parse.reac_rows").inc(stats.reac_rows)
        registry.counter("faers.parse.orphan_rows").inc(
            stats.orphan_drug_rows + stats.orphan_reac_rows
        )
        registry.counter("faers.parse.incomplete_cases").inc(
            stats.cases_without_drugs + stats.cases_without_reactions
        )
        registry.counter("faers.parse.reports").inc(stats.reports)


def parse_quarter(
    demo_path: str | os.PathLike[str],
    drug_path: str | os.PathLike[str],
    reac_path: str | os.PathLike[str],
    *,
    quarter: str = "",
    report_types: frozenset[ReportType] | None = None,
) -> tuple[list[CaseReport], ParseStats]:
    """Join one quarter's DEMO/DRUG/REAC files into case reports.

    A thin ``list()`` wrapper over :func:`iter_quarter` — callers that
    can consume a stream (the chunked ingest tier,
    :func:`repro.faers.ingest.encode_stream`) should use the generator
    directly and skip the materialization.

    Parameters
    ----------
    quarter:
        Label stamped onto every report (e.g. ``"2014Q1"``).
    report_types:
        Keep only these provenance types; ``None`` keeps everything. The
        paper keeps :attr:`ReportType.EXPEDITED` only.

    Returns
    -------
    (reports, stats)
        Reports in first-seen DEMO-row order, plus row accounting.
    """
    stats = ParseStats()
    reports = list(
        iter_quarter(
            demo_path,
            drug_path,
            reac_path,
            quarter=quarter,
            report_types=report_types,
            stats=stats,
        )
    )
    return reports, stats


def _parse_report_type(row: dict[str, str]) -> ReportType:
    code = row.get("rept_cod", "").strip().upper()
    return _REPORT_TYPE_CODES.get(code, ReportType.EXPEDITED)


def _parse_event_date(row: dict[str, str]) -> str | None:
    """FAERS event_dt is YYYYMMDD, sometimes truncated to YYYYMM or YYYY.

    Full dates convert to ISO; partial or malformed dates become None
    (downstream temporal analysis needs day precision).
    """
    raw = row.get("event_dt", "").strip()
    if len(raw) != 8 or not raw.isdigit():
        return None
    candidate = f"{raw[:4]}-{raw[4:6]}-{raw[6:]}"
    import datetime

    try:
        datetime.date.fromisoformat(candidate)
    except ValueError:
        return None
    return candidate


def _parse_age(row: dict[str, str]) -> float | None:
    raw = row.get("age", "").strip()
    if not raw:
        return None
    try:
        age = float(raw)
    except ValueError:
        return None
    # FAERS age units: YR (default), MON, WK, DY, DEC, HR.
    unit = row.get("age_cod", "YR").strip().upper() or "YR"
    factors = {"YR": 1.0, "DEC": 10.0, "MON": 1 / 12, "WK": 1 / 52, "DY": 1 / 365, "HR": 1 / 8760}
    factor = factors.get(unit)
    if factor is None:
        return None
    age = age * factor
    if not 0 <= age <= 150:
        return None
    return age
