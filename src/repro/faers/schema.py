"""Dataclasses modelling FAERS records and the abstracted case report.

The raw quarterly extract splits one adverse-event case across several
``$``-delimited files; the three that matter to MeDIAR are DEMO (one row
per case: demographics and report provenance), DRUG (one row per drug
per case) and REAC (one row per reaction per case). The parser reads
those into :class:`DemoRecord` / :class:`DrugRecord` / :class:`ReacRecord`
and joins them into the :class:`CaseReport` abstraction the rest of the
system consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ValidationError


class ReportType(enum.Enum):
    """FAERS report provenance.

    The paper uses only the mandatory manufacturer reports marked
    *expedited* (EXP), which by regulation contain at least one serious
    unlabelled adverse event.
    """

    EXPEDITED = "EXP"
    PERIODIC = "PER"
    DIRECT = "DIR"

    @classmethod
    def from_code(cls, code: str) -> "ReportType":
        code = code.strip().upper()
        for member in cls:
            if member.value == code:
                return member
        raise ValidationError(f"unknown report type code {code!r}")


@dataclass(frozen=True, slots=True)
class DemoRecord:
    """One row of a DEMO file: case identity and provenance."""

    case_id: str
    report_type: ReportType
    quarter: str
    age: float | None = None
    sex: str | None = None
    country: str | None = None
    event_date: str | None = None


@dataclass(frozen=True, slots=True)
class DrugRecord:
    """One row of a DRUG file: one drug mentioned in one case."""

    case_id: str
    drug_name: str
    role: str = "SS"  # PS primary suspect, SS secondary suspect, C concomitant, I interacting


@dataclass(frozen=True, slots=True)
class ReacRecord:
    """One row of a REAC file: one MedDRA preferred term for one case."""

    case_id: str
    adr_term: str


@dataclass(frozen=True, slots=True)
class CaseReport:
    """The abstraction MeDIAR mines: a case's drugs and ADRs.

    ``drugs`` and ``adrs`` are stored as sorted tuples so that reports
    are hashable, deterministic to render, and cheap to compare during
    de-duplication. Construct via :meth:`build` to get the sorting and
    validation for free.
    """

    case_id: str
    drugs: tuple[str, ...]
    adrs: tuple[str, ...]
    report_type: ReportType = ReportType.EXPEDITED
    quarter: str = ""
    age: float | None = None
    sex: str | None = None
    country: str | None = None
    event_date: str | None = None  # FAERS event_dt, ISO "YYYY-MM-DD"

    @classmethod
    def build(
        cls,
        case_id: str,
        drugs: object,
        adrs: object,
        *,
        report_type: ReportType = ReportType.EXPEDITED,
        quarter: str = "",
        age: float | None = None,
        sex: str | None = None,
        country: str | None = None,
        event_date: str | None = None,
    ) -> "CaseReport":
        """Validate and normalize into a canonical report.

        Duplicate drug/ADR mentions collapse; empty strings are
        rejected. A report must mention at least one drug and one ADR —
        a case with neither side populated carries no minable signal and
        is dropped earlier in the pipeline, so reaching here with one is
        a programming error worth surfacing.
        """
        if not case_id:
            raise ValidationError("case_id must be non-empty")
        drug_set = _canonical_terms(drugs, "drug")
        adr_set = _canonical_terms(adrs, "adr")
        if not drug_set or not adr_set:
            raise ValidationError(
                f"case {case_id}: report needs at least one drug and one ADR "
                f"(got {len(drug_set)} drugs, {len(adr_set)} ADRs)"
            )
        if age is not None and not 0 <= age <= 150:
            raise ValidationError(f"case {case_id}: implausible age {age}")
        if event_date is not None:
            _validate_iso_date(case_id, event_date)
        return cls(
            case_id=case_id,
            drugs=drug_set,
            adrs=adr_set,
            report_type=report_type,
            quarter=quarter,
            age=age,
            sex=sex,
            country=country,
            event_date=event_date,
        )

    @property
    def items(self) -> frozenset[str]:
        """Drugs and ADRs as one label set (the transaction view)."""
        return frozenset(self.drugs) | frozenset(self.adrs)

    def signature(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Content signature used for exact-duplicate detection."""
        return (self.drugs, self.adrs)

    def to_json(self) -> dict:
        """JSON-compatible record; :meth:`from_json` round-trips exactly.

        The durable store serializes carried surveillance state (merged
        case reports) through this; default-valued optional fields are
        omitted to keep checkpoints compact.
        """
        record: dict = {
            "case_id": self.case_id,
            "drugs": list(self.drugs),
            "adrs": list(self.adrs),
        }
        if self.report_type is not ReportType.EXPEDITED:
            record["report_type"] = self.report_type.value
        if self.quarter:
            record["quarter"] = self.quarter
        for field_name in ("age", "sex", "country", "event_date"):
            value = getattr(self, field_name)
            if value is not None:
                record[field_name] = value
        return record

    @classmethod
    def from_json(cls, record: dict) -> "CaseReport":
        """Rebuild a report written by :meth:`to_json` (validated)."""
        return cls.build(
            record["case_id"],
            record["drugs"],
            record["adrs"],
            report_type=ReportType(record.get("report_type", "EXP")),
            quarter=record.get("quarter", ""),
            age=record.get("age"),
            sex=record.get("sex"),
            country=record.get("country"),
            event_date=record.get("event_date"),
        )


def _validate_iso_date(case_id: str, value: str) -> None:
    import datetime

    try:
        datetime.date.fromisoformat(value)
    except ValueError:
        raise ValidationError(
            f"case {case_id}: event_date must be ISO YYYY-MM-DD, got {value!r}"
        ) from None


def _canonical_terms(terms: object, side: str) -> tuple[str, ...]:
    if isinstance(terms, str):
        raise ValidationError(
            f"{side}s must be an iterable of strings, not a bare string {terms!r}"
        )
    result = set()
    for term in terms:  # type: ignore[union-attr]
        if not isinstance(term, str) or not term.strip():
            raise ValidationError(f"invalid {side} term {term!r}")
        result.add(term.strip())
    return tuple(sorted(result))
