"""Data preparation and cleaning (§5.2, step one).

The paper: "We extracted the drugs and ADRs from FAERS reports and
merged them for each single case. We performed some preliminary cleaning
on drug names and ADRs to remove duplication and correct misspellings."

Three layers:

- :func:`normalize_drug_name` / :func:`normalize_adr_term` — verbatim
  string → canonical term (case folding, punctuation and whitespace
  collapse, dosage/form suffix stripping, trade-name parentheses).
- misspelling repair — edit-distance-1 correction against a reference
  vocabulary, only applied when the correction is unambiguous.
- :class:`ReportCleaner` — whole-dataset pass: normalizes every report,
  merges rows belonging to the same case id, drops exact content
  duplicates (same drugs + ADRs from follow-up versions of one case),
  and keeps counters of everything it did in :class:`CleaningStats`.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faers.schema import CaseReport
from repro.obs import get_registry

# Dose/strength/form tails frequently pasted into FAERS verbatim drug
# strings: "ASPIRIN 81 MG", "WARFARIN SODIUM TAB", "NEXIUM 40MG CAPSULES".
_DOSAGE_TAIL = re.compile(
    r"\s+(\d+(\.\d+)?\s*(MG|MCG|G|ML|IU|%)(/\s*\w+)?"
    r"|TAB(LET)?S?|CAP(SULE)?S?|INJ(ECTION)?|SOLUTION|CREAM|SYRUP"
    r"|ORAL|TOPICAL|HCL|SODIUM|POTASSIUM|CALCIUM)\s*$"
)
_PARENTHETICAL = re.compile(r"\s*\([^)]*\)\s*")
_NON_TERM = re.compile(r"[^A-Z0-9\- ]+")
_MULTISPACE = re.compile(r"\s{2,}")


def normalize_drug_name(verbatim: str) -> str:
    """Canonicalize one verbatim drug string.

    Uppercases, drops parentheticals (``"TACROLIMUS (PROGRAF)"`` →
    ``"TACROLIMUS"``), strips punctuation, and repeatedly removes
    dose/strength/form tails. Returns the empty string when nothing
    survives — callers treat that as "no usable drug mention".
    """
    term = verbatim.upper().strip()
    term = _PARENTHETICAL.sub(" ", term)
    term = _NON_TERM.sub(" ", term)
    term = _MULTISPACE.sub(" ", term).strip()
    while True:
        stripped = _DOSAGE_TAIL.sub("", term).strip()
        if stripped == term:
            break
        term = stripped
    return _MULTISPACE.sub(" ", term).strip()


def normalize_adr_term(verbatim: str) -> str:
    """Canonicalize one reaction term (MedDRA PTs are already clean-ish)."""
    term = verbatim.upper().strip()
    term = _NON_TERM.sub(" ", term)
    return _MULTISPACE.sub(" ", term).strip()


class SpellingCorrector:
    """Unambiguous edit-distance-1 correction against a vocabulary.

    A candidate is corrected only when exactly one vocabulary term is
    within edit distance 1 — ambiguity leaves the input untouched, since
    a wrong merge is worse for signal mining than a missed one.
    """

    def __init__(self, vocabulary: Iterable[str]) -> None:
        self._vocabulary = frozenset(vocabulary)
        if not self._vocabulary:
            raise ConfigError("vocabulary must be non-empty")
        # Deletion-neighborhood index: every vocab term keyed by each of
        # its single-character deletions (and itself). This finds all
        # edit-distance-1 matches without scanning the vocabulary.
        self._deletions: dict[str, set[str]] = {}
        for term in self._vocabulary:
            for key in self._deletion_keys(term):
                self._deletions.setdefault(key, set()).add(term)

    @staticmethod
    def _deletion_keys(term: str) -> set[str]:
        keys = {term}
        keys.update(term[:i] + term[i + 1 :] for i in range(len(term)))
        return keys

    def correct(self, term: str) -> str:
        """Return the corrected term, or ``term`` itself if no unique fix."""
        if term in self._vocabulary:
            return term
        candidates: set[str] = set()
        for key in self._deletion_keys(term):
            candidates.update(self._deletions.get(key, ()))
        matches = {c for c in candidates if _edit_distance_at_most_one(term, c)}
        if len(matches) == 1:
            return next(iter(matches))
        return term


def _edit_distance_at_most_one(left: str, right: str) -> bool:
    """True when Levenshtein distance ≤ 1 (cheap two-pointer check)."""
    if left == right:
        return True
    len_l, len_r = len(left), len(right)
    if abs(len_l - len_r) > 1:
        return False
    if len_l > len_r:
        left, right, len_l, len_r = right, left, len_r, len_l
    i = j = 0
    edited = False
    while i < len_l and j < len_r:
        if left[i] == right[j]:
            i += 1
            j += 1
            continue
        if edited:
            return False
        edited = True
        if len_l == len_r:
            i += 1
        j += 1
    return True


@dataclass(slots=True)
class CleaningStats:
    """What one :meth:`ReportCleaner.clean` pass did."""

    rows_in: int = 0
    reports_out: int = 0
    cases_merged: int = 0
    exact_duplicates_dropped: int = 0
    drug_names_corrected: int = 0
    adr_terms_corrected: int = 0
    empty_reports_dropped: int = 0


class ReportCleaner:
    """Whole-dataset cleaning pass over raw case reports.

    Parameters
    ----------
    drug_vocabulary, adr_vocabulary:
        Optional reference vocabularies for misspelling repair; when
        omitted, only normalization and de-duplication run.
    """

    def __init__(
        self,
        drug_vocabulary: Iterable[str] | None = None,
        adr_vocabulary: Iterable[str] | None = None,
    ) -> None:
        self._drug_corrector = (
            SpellingCorrector(drug_vocabulary) if drug_vocabulary else None
        )
        self._adr_corrector = (
            SpellingCorrector(adr_vocabulary) if adr_vocabulary else None
        )

    def clean(
        self, reports: Iterable[CaseReport]
    ) -> tuple[list[CaseReport], CleaningStats]:
        """Normalize, correct, merge and de-duplicate ``reports``.

        Returns the cleaned reports (original order of first appearance
        preserved) and the counters. Rows sharing a case id are merged
        into one report whose drug/ADR sets are the unions; after
        merging, reports with identical (drugs, adrs) content beyond the
        first are dropped as FAERS follow-up duplicates.

        ``reports`` may be any iterable, including a one-shot generator
        (the streaming synthetic source, :func:`~repro.faers.parser.
        iter_quarter`); the input is consumed in a single pass and never
        materialized. **Ordering contract under streaming:** output
        order is the order each kept case id was *first seen* while
        consuming the input — a case claims its output slot with its
        first row whose normalized content is non-empty, later follow-up
        rows merge into that slot in place, and the post-merge
        duplicate drop never reorders survivors. A list and a generator
        over the same rows therefore produce identical output
        (``tests/faers/test_streaming.py`` pins this down).
        """
        registry = get_registry()
        with registry.timer("faers.clean"):
            return self._clean(reports, registry)

    def _clean(
        self, reports: Iterable[CaseReport], registry
    ) -> tuple[list[CaseReport], CleaningStats]:
        stats = CleaningStats()
        merged: dict[str, CaseReport] = {}
        order: list[str] = []
        for report in reports:
            stats.rows_in += 1
            drugs = self._clean_terms(
                report.drugs, normalize_drug_name, self._drug_corrector, stats, "drug"
            )
            adrs = self._clean_terms(
                report.adrs, normalize_adr_term, self._adr_corrector, stats, "adr"
            )
            if not drugs or not adrs:
                stats.empty_reports_dropped += 1
                continue
            existing = merged.get(report.case_id)
            if existing is None:
                order.append(report.case_id)
                merged[report.case_id] = CaseReport.build(
                    report.case_id,
                    drugs,
                    adrs,
                    report_type=report.report_type,
                    quarter=report.quarter,
                    age=report.age,
                    sex=report.sex,
                    country=report.country,
                    event_date=report.event_date,
                )
            else:
                stats.cases_merged += 1
                merged[report.case_id] = CaseReport.build(
                    existing.case_id,
                    set(existing.drugs) | drugs,
                    set(existing.adrs) | adrs,
                    report_type=existing.report_type,
                    quarter=existing.quarter,
                    age=existing.age,
                    sex=existing.sex,
                    country=existing.country,
                    event_date=existing.event_date or report.event_date,
                )

        seen_signatures: set[tuple[tuple[str, ...], tuple[str, ...]]] = set()
        cleaned: list[CaseReport] = []
        for case_id in order:
            report = merged[case_id]
            signature = report.signature()
            if signature in seen_signatures:
                stats.exact_duplicates_dropped += 1
                continue
            seen_signatures.add(signature)
            cleaned.append(report)
        stats.reports_out = len(cleaned)
        if registry.enabled:
            registry.counter("faers.clean.rows_in").inc(stats.rows_in)
            registry.counter("faers.clean.reports_out").inc(stats.reports_out)
            registry.counter("faers.clean.cases_merged").inc(stats.cases_merged)
            registry.counter("faers.clean.exact_duplicates_dropped").inc(
                stats.exact_duplicates_dropped
            )
            registry.counter("faers.clean.drug_names_corrected").inc(
                stats.drug_names_corrected
            )
            registry.counter("faers.clean.adr_terms_corrected").inc(
                stats.adr_terms_corrected
            )
            registry.counter("faers.clean.empty_reports_dropped").inc(
                stats.empty_reports_dropped
            )
        return cleaned, stats

    def _clean_terms(
        self,
        terms: tuple[str, ...],
        normalizer,
        corrector: SpellingCorrector | None,
        stats: CleaningStats,
        side: str,
    ) -> set[str]:
        return clean_terms(terms, normalizer, corrector, stats, side)


def clean_terms(
    terms: tuple[str, ...],
    normalizer,
    corrector: SpellingCorrector | None,
    stats: CleaningStats,
    side: str,
) -> set[str]:
    """Normalize (and optionally spell-correct) one side of one report.

    Shared between the whole-dataset :class:`ReportCleaner` pass and the
    per-batch incremental cleaner
    (:class:`repro.incremental.cleaning.IncrementalCleaner`), which must
    produce byte-identical terms; correction counters accumulate into
    ``stats`` per verbatim occurrence, exactly as the one-shot pass does.
    """
    cleaned: set[str] = set()
    for verbatim in terms:
        term = normalizer(verbatim)
        if not term:
            continue
        if corrector is not None:
            corrected = corrector.correct(term)
            if corrected != term:
                if side == "drug":
                    stats.drug_names_corrected += 1
                else:
                    stats.adr_terms_corrected += 1
                term = corrected
        cleaned.add(term)
    return cleaned
