"""Streaming, bounded-memory ingest: clean + encode a report stream.

The one-shot path materializes three full copies of a quarter on its way
into the miner: the raw ``list[CaseReport]``, the cleaned list, and the
encoded database. At the ~5k-report benchmark scale nobody notices; at
the million-report capacity tier the raw/cleaned report lists alone cost
hundreds of megabytes that the miner never looks at.

:func:`encode_stream` consumes any ``Iterable[CaseReport]`` — a list, the
synthetic generator's :meth:`~repro.faers.synthetic.
SyntheticFAERSGenerator.iter_reports`, or the parser's
:func:`~repro.faers.parser.iter_quarter` — in fixed-size chunks and
builds the :class:`~repro.mining.transactions.GrowableTransactionDatabase`
directly. Peak memory is the retained encoded state (database, catalog,
per-case index) plus **O(chunk_size)** transient rows: no full raw list,
no full cleaned list, and no retained ``CaseReport`` objects unless the
caller asks for them (``keep_reports=True`` restores the one-shot
drill-down behaviour at one-shot memory cost). The bounded-memory
regression test (``tests/faers/test_streaming_memory.py``) holds the
transient overhead to O(chunk) so the path cannot silently regress to a
hidden ``list()``.

Equivalence contract
--------------------
For a stream in which every case id appears once (the synthetic source;
a deduplicated extract), the resulting catalog, transactions, case ids
and :class:`~repro.faers.cleaning.CleaningStats` are **byte-identical**
to ``ReportCleaner().clean(list(stream))`` → ``ReportDataset.encode()``
— enforced across seed grids and arbitrary chunk sizes by
``tests/faers/test_streaming.py``. Two whole-pass decisions are made
streaming-safe:

- **drug/ADR label collisions** — the one-shot encoder suffixes an ADR
  term that collides with *any* drug label in the dataset, a decision
  that needs full-pass visibility. The streaming encoder instead repairs
  on first collision: the already-encoded unsuffixed ADR item is renamed
  in place (:meth:`~repro.mining.transactions.ItemCatalog.rename_label`
  — ids are first-seen-row ordered, and a rename moves no rows), which
  reproduces the one-shot catalog exactly at O(1) cost.
- **exact-duplicate drop** — decided on each case's content at *first
  sight*, which equals the one-shot post-merge decision whenever first
  sight is final.

Streams that carry follow-up versions of a case are still accepted:
later rows union-merge into the case's database row in place
(:meth:`~repro.mining.transactions.GrowableTransactionDatabase.
update_row`), matching the one-shot merge. The one caveat is the
duplicate drop above: a case whose content only *becomes* an exact
duplicate of another case after a later merge is kept by the streaming
path but dropped by the one-shot pass (which decides after all merging).
Surveillance streams needing exact follow-up semantics belong on
:class:`~repro.incremental.IncrementalEngine`, which carries the full
per-case merge state for precisely this reason.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.faers.cleaning import (
    CleaningStats,
    SpellingCorrector,
    clean_terms,
    normalize_adr_term,
    normalize_drug_name,
)
from repro.faers.dataset import _COLLISION_SUFFIX, ADR_KIND, DRUG_KIND
from repro.faers.schema import CaseReport
from repro.mining.transactions import (
    GrowableTransactionDatabase,
    ItemCatalog,
)
from repro.obs import get_registry

#: Default rows per chunk: large enough that per-chunk overhead
#: (timer spans, registry lookups) vanishes, small enough that the
#: transient chunk is noise next to the retained database.
DEFAULT_CHUNK_SIZE = 4096


def iter_chunks(reports: Iterable[CaseReport], chunk_size: int) -> Iterator[list[CaseReport]]:
    """Split any iterable into lists of at most ``chunk_size`` rows."""
    if chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    iterator = iter(reports)
    while chunk := list(itertools.islice(iterator, chunk_size)):
        yield chunk


@dataclass(slots=True)
class StreamedIngest:
    """What one :func:`encode_stream` pass produced.

    ``database`` rows, ``case_ids`` and the catalog are parallel to the
    one-shot ``ReportDataset.encode()`` output; ``reports`` is populated
    only under ``keep_reports=True`` (the capacity path leaves it empty —
    retaining a million ``CaseReport`` objects is exactly the cost this
    module exists to avoid).
    """

    database: GrowableTransactionDatabase
    case_ids: list[str]
    cleaning_stats: CleaningStats
    n_chunks: int = 0
    reports: list[CaseReport] = field(default_factory=list)

    @property
    def catalog(self) -> ItemCatalog:
        return self.database.catalog


class StreamEncoder:
    """Chunked clean + encode into a growable database.

    One instance per stream; feed chunks with :meth:`ingest_chunk` (or
    let :func:`encode_stream` drive it) and read the accumulated state
    from the attributes mirrored by :class:`StreamedIngest`.
    """

    def __init__(
        self,
        *,
        drug_vocabulary: Iterable[str] | None = None,
        adr_vocabulary: Iterable[str] | None = None,
        keep_reports: bool = False,
    ) -> None:
        self.catalog = ItemCatalog()
        self.database = GrowableTransactionDatabase([], self.catalog)
        self.case_ids: list[str] = []
        self.stats = CleaningStats()
        self.reports: list[CaseReport] = []
        self.n_chunks = 0
        self._keep_reports = keep_reports
        self._drug_corrector = (
            SpellingCorrector(drug_vocabulary) if drug_vocabulary else None
        )
        self._adr_corrector = (
            SpellingCorrector(adr_vocabulary) if adr_vocabulary else None
        )
        # Collision namespace: every drug label seen so far, and the ADR
        # terms currently encoded *without* the collision suffix (the
        # candidates for in-place repair).
        self._drug_labels: set[str] = set()
        self._unsuffixed_adr_item: dict[str, int] = {}
        # Per-case state, all O(distinct kept cases) and id-sized:
        # tid for follow-up merging, signature set for the duplicate drop.
        self._tid_by_case: dict[str, int] = {}
        self._seen_signatures: set[tuple[tuple[str, ...], tuple[str, ...]]] = set()

    def ingest_chunk(self, chunk: Iterable[CaseReport]) -> None:
        """Clean and encode one chunk of raw rows."""
        registry = get_registry()
        stats = self.stats
        self.n_chunks += 1
        with registry.timer("ingest.clean"):
            cleaned: list[tuple[CaseReport, set[str], set[str]]] = []
            for report in chunk:
                stats.rows_in += 1
                drugs = clean_terms(
                    report.drugs, normalize_drug_name, self._drug_corrector, stats, "drug"
                )
                adrs = clean_terms(
                    report.adrs, normalize_adr_term, self._adr_corrector, stats, "adr"
                )
                if not drugs or not adrs:
                    stats.empty_reports_dropped += 1
                    continue
                cleaned.append((report, drugs, adrs))
        with registry.timer("ingest.encode"):
            for report, drugs, adrs in cleaned:
                self._encode_one(report, drugs, adrs)

    def _encode_one(self, report: CaseReport, drugs: set[str], adrs: set[str]) -> None:
        stats = self.stats
        existing_tid = self._tid_by_case.get(report.case_id)
        if existing_tid is not None:
            # Follow-up version: union-merge into the case's row in
            # place, exactly as the one-shot pass merges case versions.
            stats.cases_merged += 1
            self._register_drugs(drugs)
            row = set(self.database[existing_tid])
            row.update(self.catalog.add(drug, DRUG_KIND) for drug in sorted(drugs))
            for adr in sorted(adrs):
                row.add(self._encode_adr(adr))
            self.database.update_row(existing_tid, row)
            return

        # First sight of this case: the duplicate drop decides on the
        # cleaned content now (see the module docstring for the one
        # divergence this implies under later follow-up merges).
        signature = (tuple(sorted(drugs)), tuple(sorted(adrs)))
        if signature in self._seen_signatures:
            stats.exact_duplicates_dropped += 1
            return
        self._seen_signatures.add(signature)

        self._register_drugs(drugs)
        # Sorted iteration matches the tuple order of ``CaseReport.build``
        # (and therefore the one-shot encoder's id-assignment order).
        row = {self.catalog.add(drug, DRUG_KIND) for drug in sorted(drugs)}
        for adr in sorted(adrs):
            row.add(self._encode_adr(adr))
        tid = self.database.append_row(row)
        self._tid_by_case[report.case_id] = tid
        self.case_ids.append(report.case_id)
        stats.reports_out += 1
        if self._keep_reports:
            self.reports.append(
                CaseReport.build(
                    report.case_id,
                    drugs,
                    adrs,
                    report_type=report.report_type,
                    quarter=report.quarter,
                    age=report.age,
                    sex=report.sex,
                    country=report.country,
                    event_date=report.event_date,
                )
            )

    def _register_drugs(self, drugs: set[str]) -> None:
        """Admit new drug labels, repairing ADR collisions in place."""
        for drug in sorted(drugs):
            if drug in self._drug_labels:
                continue
            self._drug_labels.add(drug)
            item = self._unsuffixed_adr_item.pop(drug, None)
            if item is not None:
                # The one-shot encoder, seeing all drugs up front, would
                # have suffixed this ADR from row one; renaming keeps the
                # id (first-seen order is unchanged) and restores
                # byte-identity without touching any row.
                self.catalog.rename_label(item, drug + _COLLISION_SUFFIX)

    def _encode_adr(self, adr: str) -> int:
        if adr in self._drug_labels:
            return self.catalog.add(adr + _COLLISION_SUFFIX, ADR_KIND)
        item = self.catalog.add(adr, ADR_KIND)
        self._unsuffixed_adr_item.setdefault(adr, item)
        return item

    def finish(self) -> StreamedIngest:
        """Freeze the accumulated state into a :class:`StreamedIngest`."""
        registry = get_registry()
        if registry.enabled:
            registry.counter("ingest.rows_in").inc(self.stats.rows_in)
            registry.counter("ingest.reports_out").inc(self.stats.reports_out)
            registry.counter("ingest.chunks").inc(self.n_chunks)
        return StreamedIngest(
            database=self.database,
            case_ids=self.case_ids,
            cleaning_stats=self.stats,
            n_chunks=self.n_chunks,
            reports=self.reports,
        )


def encode_stream(
    reports: Iterable[CaseReport],
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    drug_vocabulary: Iterable[str] | None = None,
    adr_vocabulary: Iterable[str] | None = None,
    keep_reports: bool = False,
) -> StreamedIngest:
    """Clean + encode a report stream in bounded-memory chunks.

    The streaming replacement for the ``clean → ReportDataset →
    encode`` chain; see the module docstring for the memory model and
    the equivalence contract. ``reports`` may be a list (processed
    identically) or a one-shot generator (never materialized).
    """
    encoder = StreamEncoder(
        drug_vocabulary=drug_vocabulary,
        adr_vocabulary=adr_vocabulary,
        keep_reports=keep_reports,
    )
    for chunk in iter_chunks(reports, chunk_size):
        encoder.ingest_chunk(chunk)
    return encoder.finish()
