"""Synthetic FAERS quarters with planted drug-drug-interaction ground truth.

The paper mines the public FAERS 2014 extracts (Table 5.1: ~121-138k
expedited reports and ~33-38k distinct drug strings per quarter). Those
extracts are not available offline, so this module generates a synthetic
report stream with the same *abstraction* (case → drug set + ADR set)
and the same statistical texture the MeDIAR pipeline depends on:

- a Zipf-popularity drug universe with a long verbatim tail (matching
  the distinct-drugs ≫ distinct-ADRs shape of Table 5.1);
- per-drug single-drug ADR profiles, so contextual (sub-)rules have
  genuine support and confidence;
- **planted interactions** (:class:`InteractionSpec`): for a chosen drug
  combination, a chosen ADR set fires with high probability only when
  the *complete* combination is present, and with a configurable low
  probability under partial exposure — the exact signal shape the
  exclusiveness measure is built to detect;
- **planted confounders**: combinations whose ADRs are just as likely
  under a single member drug, which a good ranker must score low.

Unlike the real data, the generator knows the truth, so the benchmarks
can measure signal *recovery* (precision@k of genuine interactions)
rather than only eyeballing case studies.

Determinism: everything is driven by one :class:`random.Random` seeded
from the config, so a quarter is a pure function of its configuration.
Sampling is *restartable*: the post-construction RNG state is snapshotted
once, and every :meth:`SyntheticFAERSGenerator.iter_reports` /
:meth:`SyntheticFAERSGenerator.generate` call replays from that
snapshot — two calls on one generator produce identical reports, and the
lazy stream is byte-identical to the materialized list.

Scale: :meth:`SyntheticFAERSGenerator.iter_reports` yields one report at
a time, so multi-million-report streams (:func:`iter_year`,
:func:`quarter_sequence`) run in O(1) report memory — the capacity
testbed (``benchmarks/bench_capacity.py``) feeds them straight into the
streaming ingest tier (:mod:`repro.faers.ingest`) without ever holding
the report list.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.faers.schema import CaseReport, ReportType
from repro.faers.vocab import adr_universe, drug_universe


@dataclass(frozen=True, slots=True)
class InteractionSpec:
    """One planted multi-drug signal.

    Attributes
    ----------
    drugs:
        The interacting combination (2-4 drugs).
    adrs:
        The reactions the interaction triggers.
    trigger_probability:
        Per-ADR firing probability when the complete combination is
        present in a report.
    solo_probability:
        Per-ADR firing probability when some but not all of the
        combination is present. A *genuine* interaction has this far
        below the trigger probability; a *confounder* has them close.
    prevalence:
        Probability that a generated report is exposed to the full
        combination.
    partial_prevalence:
        Probability that a generated report is exposed to a random
        proper subset of the combination (gives the contextual rules
        real support).
    """

    drugs: tuple[str, ...]
    adrs: tuple[str, ...]
    trigger_probability: float
    solo_probability: float
    prevalence: float = 0.004
    partial_prevalence: float = 0.006

    def __post_init__(self) -> None:
        if not 2 <= len(self.drugs) <= 6:
            raise ConfigError(
                f"interaction needs 2-6 drugs, got {len(self.drugs)}: {self.drugs}"
            )
        if len(set(self.drugs)) != len(self.drugs):
            raise ConfigError(f"duplicate drugs in interaction: {self.drugs}")
        if not self.adrs:
            raise ConfigError("interaction needs at least one ADR")
        for name, value in (
            ("trigger_probability", self.trigger_probability),
            ("solo_probability", self.solo_probability),
            ("prevalence", self.prevalence),
            ("partial_prevalence", self.partial_prevalence),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")

    @property
    def is_genuine(self) -> bool:
        """True when the signal is exclusive to the full combination.

        Convention used by the recovery benchmarks: genuine means the
        full-combination effect is at least three times the partial
        effect.
        """
        return self.trigger_probability >= 3 * self.solo_probability


def default_interactions() -> tuple[InteractionSpec, ...]:
    """The planted signal roster mirroring the paper's examples.

    Genuine interactions reproduce the §5.4 case studies (plus the
    aspirin+warfarin motivator from the introduction); the dominated
    combinations reproduce Table 3.1's asthma cluster — where every
    single drug is itself an asthma medication — and give the rankers
    something they *should* score low.
    """
    return (
        # --- genuine interactions (case studies I-III + intro) ---
        InteractionSpec(
            drugs=("IBUPROFEN", "METAMIZOLE"),
            adrs=("ACUTE RENAL FAILURE",),
            trigger_probability=0.75,
            solo_probability=0.05,
            prevalence=0.006,
        ),
        InteractionSpec(
            drugs=("METHOTREXATE", "PROGRAF"),
            adrs=("DRUG INEFFECTIVE",),
            trigger_probability=0.70,
            solo_probability=0.07,
            prevalence=0.006,
        ),
        InteractionSpec(
            drugs=("NEXIUM", "PREVACID"),
            adrs=("OSTEOPOROSIS",),
            trigger_probability=0.65,
            solo_probability=0.06,
            prevalence=0.006,
        ),
        InteractionSpec(
            drugs=("ASPIRIN", "WARFARIN"),
            adrs=("HAEMORRHAGE",),
            trigger_probability=0.80,
            solo_probability=0.07,
            prevalence=0.006,
        ),
        InteractionSpec(
            drugs=("PRILOSEC", "ZOMETA"),
            adrs=("OSTEONECROSIS OF JAW", "OSTEOARTHRITIS"),
            trigger_probability=0.60,
            solo_probability=0.05,
            prevalence=0.006,
        ),
        InteractionSpec(
            drugs=("FLUDARABINE", "MELPHALAN", "PROGRAF"),
            adrs=("CHRONIC GRAFT VERSUS HOST DISEASE",),
            trigger_probability=0.70,
            solo_probability=0.06,
            prevalence=0.005,
        ),
        InteractionSpec(
            drugs=("FLUDARABINE", "MELPHALAN", "METHOTREXATE", "PROGRAF"),
            adrs=("ACUTE GRAFT VERSUS HOST DISEASE",),
            trigger_probability=0.70,
            solo_probability=0.05,
            prevalence=0.004,
        ),
        # --- single-drug-dominated combinations (must rank low) ---
        InteractionSpec(
            drugs=("PREDNISONE", "SINGULAIR", "XOLAIR"),
            adrs=("ASTHMA",),
            trigger_probability=0.75,
            solo_probability=0.55,
            prevalence=0.005,
            partial_prevalence=0.012,
        ),
        InteractionSpec(
            drugs=("TUMS", "ZANTAC"),
            adrs=("OSTEOPOROSIS",),
            trigger_probability=0.65,
            solo_probability=0.50,
            prevalence=0.005,
            partial_prevalence=0.012,
        ),
    )


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """Parameters of one synthetic quarter."""

    n_reports: int = 5000
    n_drugs: int = 4000
    n_adrs: int = 600
    seed: int = 2014
    quarter: str = "2014Q1"
    zipf_exponent: float = 1.05
    mean_extra_drugs: float = 2.0
    profile_adrs_per_drug: int = 2
    profile_rate: float = 0.35
    noise_adr_rate: float = 0.8
    verbatim_tail_rate: float = 0.12
    # Therapy-class co-prescription: drugs are partitioned into
    # n_therapy_classes classes; after the first background drug of a
    # report, each further background drug is drawn from an already
    # present drug's class with probability class_affinity (a patient
    # on one cardiac drug is likely on another). Class-correlated
    # co-prescription is the classic confounder-by-indication texture a
    # context-aware ranker has to cut through.
    n_therapy_classes: int = 40
    class_affinity: float = 0.45
    interactions: tuple[InteractionSpec, ...] = field(
        default_factory=default_interactions
    )

    def __post_init__(self) -> None:
        if self.n_reports < 1:
            raise ConfigError(f"n_reports must be >= 1, got {self.n_reports}")
        if self.n_drugs < 50 or self.n_adrs < 20:
            raise ConfigError(
                "universe too small: need n_drugs >= 50 and n_adrs >= 20"
            )
        if self.zipf_exponent <= 0:
            raise ConfigError(f"zipf_exponent must be > 0, got {self.zipf_exponent}")
        if not 0 <= self.verbatim_tail_rate < 1:
            raise ConfigError(
                f"verbatim_tail_rate must be in [0, 1), got {self.verbatim_tail_rate}"
            )
        if self.n_therapy_classes < 1:
            raise ConfigError(
                f"n_therapy_classes must be >= 1, got {self.n_therapy_classes}"
            )
        if not 0.0 <= self.class_affinity < 1.0:
            raise ConfigError(
                f"class_affinity must be in [0, 1), got {self.class_affinity}"
            )
        named = {d for spec in self.interactions for d in spec.drugs}
        universe = set(drug_universe(self.n_drugs))
        missing = named - universe
        if missing:
            raise ConfigError(
                f"interaction drugs missing from the drug universe: {sorted(missing)}"
            )


# Per-quarter report counts of Table 5.1, used to scale the synthetic
# quarters proportionally to the real ones.
PAPER_QUARTER_REPORTS = {
    "2014Q1": 126_755,
    "2014Q2": 138_278,
    "2014Q3": 121_725,
    "2014Q4": 121_490,
}


def quarter_config(quarter: str, *, scale: float = 0.04, seed_base: int = 2014) -> SyntheticConfig:
    """A config for one 2014 quarter, scaled from Table 5.1's row.

    ``scale`` multiplies the paper's per-quarter report count (0.04 →
    roughly 5k reports per quarter, laptop-friendly); drug/ADR universe
    sizes scale with the square root of the report ratio, which keeps
    the distinct-item-to-report ratios in the paper's ballpark.
    """
    if quarter not in PAPER_QUARTER_REPORTS:
        raise ConfigError(
            f"unknown quarter {quarter!r}; expected one of "
            f"{sorted(PAPER_QUARTER_REPORTS)}"
        )
    if not 0 < scale <= 1:
        raise ConfigError(f"scale must be in (0, 1], got {scale}")
    n_reports = max(500, round(PAPER_QUARTER_REPORTS[quarter] * scale))
    n_drugs = max(400, round(n_reports * 0.8))
    n_adrs = max(100, round(n_reports * 0.12))
    quarter_index = sorted(PAPER_QUARTER_REPORTS).index(quarter)
    return SyntheticConfig(
        n_reports=n_reports,
        n_drugs=n_drugs,
        n_adrs=n_adrs,
        seed=seed_base * 10 + quarter_index,
        quarter=quarter,
    )


class SyntheticFAERSGenerator:
    """Generate one synthetic quarter of case reports.

    >>> generator = SyntheticFAERSGenerator(SyntheticConfig(n_reports=100))
    >>> reports = generator.generate()
    >>> len(reports)
    100
    """

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config
        self._drugs = drug_universe(config.n_drugs)
        self._adrs = adr_universe(config.n_adrs)
        self._rng = random.Random(config.seed)
        # Popularity rank is decoupled from vocabulary order: without
        # this shuffle the paper-named drugs (first in the universe)
        # would all be the most popular drugs of the quarter, and their
        # chance co-occurrence would drown the planted signals.
        self._popularity = list(self._drugs)
        self._rng.shuffle(self._popularity)
        self._zipf_cdf = self._build_zipf_cdf()
        self._profiles = self._build_profiles()
        self._spec_adr_index = self._build_spec_adr_index()
        self._therapy_classes = self._build_therapy_classes()
        self._verbatim_counter = 0
        # Post-construction RNG snapshot: model construction (shuffle,
        # profiles) consumed part of the seeded stream; every sampling
        # pass replays from here, so generate()/iter_reports() are pure
        # functions of the configuration no matter how often or how
        # lazily they are consumed.
        self._sampling_state = self._rng.getstate()

    # ------------------------------------------------------------------
    # model construction
    # ------------------------------------------------------------------

    def _build_zipf_cdf(self) -> list[float]:
        weights = [
            1.0 / (rank + 1) ** self.config.zipf_exponent
            for rank in range(len(self._drugs))
        ]
        total = sum(weights)
        cdf: list[float] = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight / total
            cdf.append(cumulative)
        cdf[-1] = 1.0
        return cdf

    def _build_profiles(self) -> dict[str, tuple[str, ...]]:
        """Assign each drug its own single-drug ADR profile.

        Profiles are sampled once per generator from the seeded RNG, so
        they are stable across the quarter. Interaction ADRs are never
        used as profile ADRs of the interacting drugs themselves — the
        planted solo effect is controlled solely by ``solo_probability``.
        """
        forbidden: dict[str, set[str]] = {}
        for spec in self.config.interactions:
            for drug in spec.drugs:
                forbidden.setdefault(drug, set()).update(spec.adrs)
        profiles: dict[str, tuple[str, ...]] = {}
        for drug in self._drugs:
            banned = forbidden.get(drug, set())
            candidates = [a for a in self._adrs if a not in banned]
            count = min(self.config.profile_adrs_per_drug, len(candidates))
            profiles[drug] = tuple(self._rng.sample(candidates, count))
        return profiles

    def _build_spec_adr_index(self) -> dict[str, list[InteractionSpec]]:
        index: dict[str, list[InteractionSpec]] = {}
        for spec in self.config.interactions:
            for drug in spec.drugs:
                index.setdefault(drug, []).append(spec)
        return index

    def _build_therapy_classes(self) -> dict[str, tuple[str, ...]]:
        """Partition the universe into therapy classes (drug → class members).

        Classes follow the popularity order in round-robin, so every
        class mixes popular and rare drugs, like real therapy classes
        mix blockbusters and niche drugs.
        """
        n_classes = min(self.config.n_therapy_classes, len(self._drugs))
        members: list[list[str]] = [[] for _ in range(n_classes)]
        for rank, drug in enumerate(self._popularity):
            members[rank % n_classes].append(drug)
        classmates: dict[str, tuple[str, ...]] = {}
        for group in members:
            frozen = tuple(group)
            for drug in group:
                classmates[drug] = frozen
        return classmates

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def _sample_background_drug(self, rng: random.Random) -> str:
        roll = rng.random()
        if roll < self.config.verbatim_tail_rate:
            # The long verbatim tail: a rare drug string, as FAERS
            # verbatim data produces. Drawn uniformly from the unpopular
            # half of the universe.
            index = rng.randrange(len(self._popularity) // 2, len(self._popularity))
            return self._popularity[index]
        position = rng.random()
        return self._popularity[self._bisect_cdf(position)]

    def _bisect_cdf(self, position: float) -> int:
        low, high = 0, len(self._zipf_cdf) - 1
        while low < high:
            mid = (low + high) // 2
            if self._zipf_cdf[mid] < position:
                low = mid + 1
            else:
                high = mid
        return low

    def _sample_report(self, index: int, rng: random.Random) -> CaseReport:
        drugs: set[str] = set()
        full_exposures: list[InteractionSpec] = []

        for spec in self.config.interactions:
            roll = rng.random()
            if roll < spec.prevalence:
                drugs.update(spec.drugs)
                full_exposures.append(spec)
            elif roll < spec.prevalence + spec.partial_prevalence:
                subset_size = rng.randrange(1, len(spec.drugs))
                drugs.update(rng.sample(spec.drugs, subset_size))

        extra = _poisson(rng, self.config.mean_extra_drugs)
        if not drugs:
            extra = max(1, extra)
        for _ in range(extra):
            # Co-prescription structure: with class_affinity, the next
            # background drug comes from the therapy class of a drug
            # already on the report.
            if drugs and rng.random() < self.config.class_affinity:
                anchor = rng.choice(sorted(drugs))
                classmates = self._therapy_classes.get(anchor)
                if classmates and len(classmates) > 1:
                    drugs.add(classmates[rng.randrange(len(classmates))])
                    continue
            drugs.add(self._sample_background_drug(rng))

        adrs: set[str] = set()
        # Planted effects: trigger probability for full exposures,
        # solo probability whenever any spec member is present without
        # the full combination.
        for spec in full_exposures:
            for adr in spec.adrs:
                if rng.random() < spec.trigger_probability:
                    adrs.add(adr)
        # Iteration below must be deterministic: sets iterate in a
        # hash-salted order that differs between processes, and any
        # order-dependent RNG consumption would make the "same seed,
        # same quarter" guarantee false.
        fully_exposed = set(full_exposures)
        partial_specs = sorted(
            {
                spec
                for drug in drugs
                for spec in self._spec_adr_index.get(drug, ())
                if spec not in fully_exposed and not set(spec.drugs) <= drugs
            },
            key=lambda spec: spec.drugs,
        )
        for spec in partial_specs:
            for adr in spec.adrs:
                if rng.random() < spec.solo_probability:
                    adrs.add(adr)

        # Single-drug profiles and background noise.
        for drug in sorted(drugs):
            for adr in self._profiles[drug]:
                if rng.random() < self.config.profile_rate:
                    adrs.add(adr)
        noise_count = _poisson(rng, self.config.noise_adr_rate)
        if not adrs:
            noise_count = max(1, noise_count)
        for _ in range(noise_count):
            adrs.add(self._adrs[rng.randrange(len(self._adrs))])

        return CaseReport.build(
            case_id=f"{self.config.quarter}-{index:07d}",
            drugs=drugs,
            adrs=adrs,
            report_type=ReportType.EXPEDITED,
            quarter=self.config.quarter,
            age=round(min(119.0, max(0.0, rng.gauss(58, 18))), 1),
            sex=rng.choice(("F", "M")),
            country=rng.choice(("US", "US", "US", "GB", "DE", "JP", "CA", "MX")),
            event_date=self._sample_event_date(index),
        )

    def _sample_event_date(self, index: int) -> str:
        """A date inside the configured quarter.

        Drawn from an RNG derived from (seed, report index) rather than
        the main stream, so adding dates did not — and changing the date
        model will not — perturb the calibrated drug/ADR sampling.
        """
        date_rng = random.Random(f"{self.config.seed}:event_date:{index}")
        year = int(self.config.quarter[:4])
        quarter_index = int(self.config.quarter[5]) - 1
        month = quarter_index * 3 + date_rng.randrange(3) + 1
        day = date_rng.randrange(1, 29)  # 1-28: valid in every month
        return f"{year:04d}-{month:02d}-{day:02d}"

    def iter_reports(self) -> Iterator[CaseReport]:
        """Yield the quarter's reports one at a time, deterministically.

        The stream is a pure function of the configuration: every call
        replays the sampling RNG from the post-construction snapshot, so
        repeated or interleaved iterations (each call carries its own
        RNG instance) all produce the same reports, byte-identical to
        :meth:`generate`. Nothing is materialized — a 1M-report quarter
        costs O(1) report memory to consume.
        """
        rng = random.Random()
        rng.setstate(self._sampling_state)
        for index in range(self.config.n_reports):
            yield self._sample_report(index + 1, rng)

    def generate(self) -> list[CaseReport]:
        """Generate the quarter's reports as a list (see :meth:`iter_reports`)."""
        return list(self.iter_reports())

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------

    def ground_truth(self) -> tuple[InteractionSpec, ...]:
        """All planted specs (genuine and confounded)."""
        return self.config.interactions

    def genuine_interactions(self) -> tuple[InteractionSpec, ...]:
        """Planted specs that a correct ranker should score high."""
        return tuple(s for s in self.config.interactions if s.is_genuine)

    def confounded_combinations(self) -> tuple[InteractionSpec, ...]:
        """Planted specs dominated by single-drug effects (should rank low)."""
        return tuple(s for s in self.config.interactions if not s.is_genuine)


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler (mean values here are tiny)."""
    if mean <= 0:
        return 0
    limit = 2.718281828459045 ** (-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def generate_year(
    *, scale: float = 0.04, seed_base: int = 2014
) -> dict[str, list[CaseReport]]:
    """Generate all four 2014 quarters (the full Table 5.1 workload)."""
    return {
        quarter: SyntheticFAERSGenerator(
            quarter_config(quarter, scale=scale, seed_base=seed_base)
        ).generate()
        for quarter in sorted(PAPER_QUARTER_REPORTS)
    }


def iter_year(
    *, scale: float = 0.04, seed_base: int = 2014
) -> Iterator[CaseReport]:
    """Stream all four 2014 quarters in order without materializing any.

    The concatenation of the per-quarter streams, quarter labels in
    sorted order — byte-identical to chaining :func:`generate_year`'s
    lists, at O(1) report memory. At ``scale=1.0`` this is the paper's
    full ~508k-report year; the capacity benchmark drives multi-year
    sequences through it via :func:`quarter_sequence`.
    """
    for quarter in sorted(PAPER_QUARTER_REPORTS):
        generator = SyntheticFAERSGenerator(
            quarter_config(quarter, scale=scale, seed_base=seed_base)
        )
        yield from generator.iter_reports()


def quarter_sequence(
    n_quarters: int,
    *,
    start_year: int = 2014,
    reports_per_quarter: int = 5000,
    n_drugs: int = 4000,
    n_adrs: int = 600,
    seed_base: int = 2014,
) -> Iterator[tuple[str, SyntheticFAERSGenerator]]:
    """Lazily yield ``(quarter label, generator)`` for a multi-year stream.

    Labels run ``"2014Q1", "2014Q2", …`` rolling over year boundaries,
    so a 50-quarter surveillance schedule — the long-stream soak the
    incremental engine is tested against — is one call. Each quarter
    gets its own seed (``seed_base * 10 + index``) and shares one item
    universe, mirroring how real FAERS quarters share the drug/ADR
    namespace. Generators are constructed lazily: consuming the sequence
    one quarter at a time holds one model in memory, never ``n_quarters``.
    """
    if n_quarters < 1:
        raise ConfigError(f"n_quarters must be >= 1, got {n_quarters}")
    for index in range(n_quarters):
        year = start_year + index // 4
        quarter = f"{year:04d}Q{index % 4 + 1}"
        config = SyntheticConfig(
            n_reports=reports_per_quarter,
            n_drugs=n_drugs,
            n_adrs=n_adrs,
            seed=seed_base * 10 + index,
            quarter=quarter,
        )
        yield quarter, SyntheticFAERSGenerator(config)
