"""Near-duplicate report detection.

The cleaning pass drops *exact* content duplicates; real FAERS also
contains near-duplicates — the same adverse event reported by both the
patient and the manufacturer, with slightly different drug lists or one
extra reaction term. Left in, they double-count support and inflate
every downstream statistic.

:func:`find_near_duplicates` finds report pairs whose item sets overlap
above a Jaccard threshold, using a sorted-neighborhood-style blocking
scheme (reports sharing a rare item are candidates; reports sharing
nothing are never compared) so the comparison count stays far below
O(n²) on realistic data. :class:`NearDuplicatePolicy` then drops or
merges the flagged pairs.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faers.schema import CaseReport
from repro.obs import get_registry


@dataclass(frozen=True, slots=True)
class DuplicatePair:
    """Two reports flagged as near-duplicates."""

    left_index: int
    right_index: int
    similarity: float


def jaccard_similarity(left: frozenset[str], right: frozenset[str]) -> float:
    """Jaccard similarity of two item sets (1.0 for two empty sets)."""
    if not left and not right:
        return 1.0
    union = len(left | right)
    return len(left & right) / union


def find_near_duplicates(
    reports: Iterable[CaseReport],
    *,
    threshold: float = 0.8,
    max_block_size: int = 200,
    min_items: int = 4,
) -> list[DuplicatePair]:
    """Report pairs with item-set Jaccard ≥ ``threshold``.

    ``reports`` may be any iterable (one single pass is taken; pair
    indices refer to stream positions), but near-duplicate detection is
    inherently a whole-dataset decision — the rarity blocking below
    needs global item frequencies — so unlike the exact-dedup pass in
    :mod:`repro.faers.ingest` it cannot run in O(chunk) memory: the
    item sets of the full input are held for pairwise comparison.

    Blocking: each report is indexed under its three *rarest* items
    (fewest occurrences across the dataset, ties by name); only reports
    sharing a blocking key are compared. Near-duplicates at a high
    Jaccard threshold share most of their items, so they share at
    least one of each other's rare items with overwhelming probability
    on report data; a pair overlapping only on ubiquitous terms cannot
    reach Jaccard ≥ 0.8 anyway. Blocks larger than ``max_block_size``
    are skipped (an item that common cannot identify duplicates) —
    this bounds worst-case cost.

    ``min_items`` guards against false positives on short reports: two
    independent patients can easily file identical two-item reports
    (one common drug, one common reaction), and merging those would
    destroy genuine support. Reports with fewer items are never
    flagged.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigError(f"threshold must be in (0, 1], got {threshold}")
    if max_block_size < 2:
        raise ConfigError(f"max_block_size must be >= 2, got {max_block_size}")
    if min_items < 1:
        raise ConfigError(f"min_items must be >= 1, got {min_items}")

    frequencies: dict[str, int] = {}
    item_sets: list[frozenset[str]] = []
    for report in reports:
        items = frozenset(report.items)
        item_sets.append(items)
        for item in items:
            frequencies[item] = frequencies.get(item, 0) + 1

    blocks: dict[str, list[int]] = {}
    for index, items in enumerate(item_sets):
        if len(items) < min_items:
            continue
        rarest_three = sorted(items, key=lambda item: (frequencies[item], item))[:3]
        for key in rarest_three:
            blocks.setdefault(key, []).append(index)

    pairs: list[DuplicatePair] = []
    seen: set[tuple[int, int]] = set()
    for members in blocks.values():
        if len(members) < 2 or len(members) > max_block_size:
            continue
        for position, left in enumerate(members):
            for right in members[position + 1 :]:
                key = (left, right)
                if key in seen:
                    continue
                similarity = jaccard_similarity(item_sets[left], item_sets[right])
                if similarity >= threshold:
                    seen.add(key)
                    pairs.append(DuplicatePair(left, right, similarity))
    pairs.sort(key=lambda pair: (-pair.similarity, pair.left_index, pair.right_index))
    registry = get_registry()
    if registry.enabled:
        registry.counter("faers.dedup.reports_scanned").inc(len(item_sets))
        registry.counter("faers.dedup.pairs_flagged").inc(len(pairs))
    return pairs


class NearDuplicatePolicy(enum.Enum):
    """What to do with a flagged pair."""

    DROP_LATER = "drop-later"  # keep the first report, drop the second
    MERGE = "merge"  # union the two reports into the first


def resolve_near_duplicates(
    reports: Iterable[CaseReport],
    *,
    threshold: float = 0.8,
    min_items: int = 4,
    policy: NearDuplicatePolicy = NearDuplicatePolicy.DROP_LATER,
) -> tuple[list[CaseReport], list[DuplicatePair]]:
    """Apply a policy to every flagged pair; returns (kept reports, pairs).

    Pair resolution is transitive through the kept representative: if
    A~B and B~C, both B and C resolve into A. Kept reports come back in
    input order (the loser of each pair is always the later stream
    position, so survivors never move). ``reports`` may be a one-shot
    generator; it is materialized here — resolution needs random access
    to the keeper/loser rows, and the pairs it resolves already require
    whole-dataset visibility (see :func:`find_near_duplicates`).
    """
    reports = list(reports)
    pairs = find_near_duplicates(reports, threshold=threshold, min_items=min_items)
    representative: dict[int, int] = {}

    def root(index: int) -> int:
        while index in representative:
            index = representative[index]
        return index

    merged_items: dict[int, tuple[set[str], set[str]]] = {}
    dropped: set[int] = set()
    for pair in pairs:
        keeper = root(pair.left_index)
        loser = root(pair.right_index)
        if keeper == loser:
            continue
        if loser < keeper:
            keeper, loser = loser, keeper
        representative[loser] = keeper
        dropped.add(loser)
        if policy is NearDuplicatePolicy.MERGE:
            drugs, adrs = merged_items.setdefault(
                keeper,
                (set(reports[keeper].drugs), set(reports[keeper].adrs)),
            )
            drugs.update(reports[loser].drugs)
            adrs.update(reports[loser].adrs)

    kept: list[CaseReport] = []
    for index, report in enumerate(reports):
        if index in dropped:
            continue
        if policy is NearDuplicatePolicy.MERGE and index in merged_items:
            drugs, adrs = merged_items[index]
            report = CaseReport.build(
                report.case_id,
                drugs,
                adrs,
                report_type=report.report_type,
                quarter=report.quarter,
                age=report.age,
                sex=report.sex,
                country=report.country,
            )
        kept.append(report)
    return kept, pairs
