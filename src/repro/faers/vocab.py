"""Drug and ADR vocabularies.

Two roles:

1. the *named* vocabulary — every drug and MedDRA-style reaction term
   that appears in the paper's tables, case studies and examples, so the
   reproduction can speak the paper's language (Table 3.1's
   Xolair/Singulair/Prednisone cluster, Table 5.2's Zometa/Prilosec
   rows, the §5.4 case-study pairs, ...);
2. a deterministic *synthesizer* of realistic filler names, so the
   synthetic FAERS generator can populate a vocabulary of thousands of
   distinct drugs/ADRs (Table 5.1 reports ~33-38k distinct drug strings
   per quarter) without shipping a dictionary.

Synthesized names are built from pharmaceutical syllables (drugs) and
body-system × condition phrases (ADRs) and are guaranteed not to collide
with the named vocabulary or each other.
"""

from __future__ import annotations

from repro.errors import ConfigError

# Drugs named anywhere in the paper (thesis tables, case studies, examples).
DRUG_VOCABULARY: tuple[str, ...] = (
    "ASPIRIN",
    "WARFARIN",
    "ZOMETA",
    "PRILOSEC",
    "XOLAIR",
    "SINGULAIR",
    "PREDNISONE",
    "ZANTAC",
    "METHOTREXATE",
    "PROGRAF",
    "TUMS",
    "AMBIEN",
    "MELPHALAN",
    "MYLANTA",
    "NEXIUM",
    "ROLAIDS",
    "FLUDARABINE",
    "PREVACID",
    "PEPCID",
    "IBUPROFEN",
    "METAMIZOLE",
    "POSICOR",
    "TROGLITAZONE",
    "CERIVASTATIN",
    "PAROXETINE",
    "PRAVASTATIN",
)

# Reaction terms (MedDRA preferred-term style) named in the paper.
ADR_VOCABULARY: tuple[str, ...] = (
    "ASTHMA",
    "OSTEOPOROSIS",
    "CHRONIC GRAFT VERSUS HOST DISEASE",
    "ACUTE GRAFT VERSUS HOST DISEASE",
    "DRUG INEFFECTIVE",
    "OSTEONECROSIS OF JAW",
    "OSTEOARTHRITIS",
    "NEUROPATHY PERIPHERAL",
    "PAIN",
    "ANAEMIA",
    "ACUTE RENAL FAILURE",
    "HAEMORRHAGE",
    "GRANULOCYTE COLONY-STIMULATING FACTOR NOS",
    "ANXIETY",
    "BLOOD GLUCOSE INCREASED",
    "BONE FRACTURE",
    "GASTROOESOPHAGEAL REFLUX DISEASE",
)

_DRUG_PREFIXES = (
    "AB", "ACE", "BARI", "BE", "CALMO", "CARDI", "CETI", "CLO", "DARU",
    "DEX", "ENZA", "ERLO", "FLU", "GEMCI", "HYDRO", "IMA", "KETO", "LAMI",
    "LEVO", "MIRA", "NALO", "OLME", "PANTO", "QUETIA", "RIVA", "SIME",
    "TOLVA", "ULIPRI", "VALGAN", "ZOLE",
)
_DRUG_MIDDLES = (
    "", "BA", "CO", "DRA", "FE", "GLI", "LU", "MO", "NA", "PRA", "RI",
    "SO", "TA", "VE", "XI", "ZO",
)
_DRUG_SUFFIXES = (
    "CILLIN", "DIPINE", "FLOXACIN", "LOL", "MAB", "NAVIR", "OLONE",
    "PAMIDE", "PRAZOLE", "PRIL", "SARTAN", "SETRON", "STATIN", "TEROL",
    "TINIB", "TRIPTAN", "VUDINE", "ZEPAM", "ZIDE", "ZOLID",
)

_ADR_QUALIFIERS = (
    "ACUTE", "CHRONIC", "SEVERE", "TRANSIENT", "RECURRENT", "PROGRESSIVE",
    "IDIOPATHIC", "GENERALISED", "LOCALISED", "INTERMITTENT",
)
_ADR_SITES = (
    "HEPATIC", "RENAL", "CARDIAC", "PULMONARY", "GASTRIC", "DERMAL",
    "OCULAR", "NEURAL", "VASCULAR", "MUSCULAR", "ARTICULAR", "SPLENIC",
    "PANCREATIC", "THYROID", "ADRENAL", "INTESTINAL", "OESOPHAGEAL",
    "CEREBRAL", "SPINAL", "AURICULAR",
)
_ADR_CONDITIONS = (
    "OEDEMA", "NECROSIS", "FIBROSIS", "HAEMORRHAGE", "STENOSIS",
    "HYPERPLASIA", "ATROPHY", "INSUFFICIENCY", "INFLAMMATION", "SPASM",
    "EROSION", "CALCIFICATION", "ISCHAEMIA", "DYSTROPHY", "EFFUSION",
    "HYPERTROPHY", "ULCERATION", "DEGENERATION", "THROMBOSIS", "RUPTURE",
)


def synthesize_drug_name(index: int) -> str:
    """Deterministically derive the ``index``-th filler drug name.

    The syllable grids yield 30 × 16 × 20 = 9600 distinct base names;
    beyond that a numeric series suffix keeps names unique (FAERS itself
    is full of suffixed verbatim drug strings).
    """
    if index < 0:
        raise ConfigError(f"index must be non-negative, got {index}")
    base_space = len(_DRUG_PREFIXES) * len(_DRUG_MIDDLES) * len(_DRUG_SUFFIXES)
    cycle, position = divmod(index, base_space)
    position, prefix_i = divmod(position, len(_DRUG_PREFIXES))
    position, middle_i = divmod(position, len(_DRUG_MIDDLES))
    suffix_i = position
    name = _DRUG_PREFIXES[prefix_i] + _DRUG_MIDDLES[middle_i] + _DRUG_SUFFIXES[suffix_i]
    if cycle:
        name = f"{name} {cycle + 1}"
    return name


def synthesize_adr_term(index: int) -> str:
    """Deterministically derive the ``index``-th filler reaction term."""
    if index < 0:
        raise ConfigError(f"index must be non-negative, got {index}")
    base_space = len(_ADR_QUALIFIERS) * len(_ADR_SITES) * len(_ADR_CONDITIONS)
    cycle, position = divmod(index, base_space)
    position, qualifier_i = divmod(position, len(_ADR_QUALIFIERS))
    position, site_i = divmod(position, len(_ADR_SITES))
    condition_i = position
    term = (
        f"{_ADR_QUALIFIERS[qualifier_i]} {_ADR_SITES[site_i]} "
        f"{_ADR_CONDITIONS[condition_i]}"
    )
    if cycle:
        term = f"{term} TYPE {cycle + 1}"
    return term


def drug_universe(size: int) -> tuple[str, ...]:
    """The first ``size`` drug names: the named vocabulary, then fillers."""
    if size < 0:
        raise ConfigError(f"size must be non-negative, got {size}")
    names = list(DRUG_VOCABULARY[:size])
    index = 0
    taken = set(names)
    while len(names) < size:
        candidate = synthesize_drug_name(index)
        index += 1
        if candidate not in taken:
            names.append(candidate)
            taken.add(candidate)
    return tuple(names)


def adr_universe(size: int) -> tuple[str, ...]:
    """The first ``size`` reaction terms: named vocabulary, then fillers."""
    if size < 0:
        raise ConfigError(f"size must be non-negative, got {size}")
    terms = list(ADR_VOCABULARY[:size])
    index = 0
    taken = set(terms)
    while len(terms) < size:
        candidate = synthesize_adr_term(index)
        index += 1
        if candidate not in taken:
            terms.append(candidate)
            taken.add(candidate)
    return tuple(terms)
