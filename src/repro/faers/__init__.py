"""FAERS substrate: schema, parsing, cleaning, and synthetic generation.

The FDA Adverse Event Reporting System publishes quarterly extracts of
spontaneous adverse-event reports. MeDIAR consumes an abstraction of a
report — *case → (set of drugs taken, set of ADRs observed)* — and this
package provides every step from raw quarterly files to that
abstraction:

- :mod:`repro.faers.schema` — record and report dataclasses.
- :mod:`repro.faers.parser` — parser for the ``$``-delimited ASCII
  quarterly files (both legacy AERS ``ISR`` and modern ``primaryid``
  layouts).
- :mod:`repro.faers.cleaning` — drug-name normalization, misspelling
  repair against a vocabulary, and case de-duplication (§5.2's "data
  preparation and cleaning" step).
- :mod:`repro.faers.dataset` — :class:`ReportDataset`, the bridge from
  reports to the mining substrate's transaction database, with report
  linkage preserved so ranked rules can be traced back to source cases.
- :mod:`repro.faers.synthetic` — a generator of synthetic FAERS quarters
  with *planted* drug-drug-interaction ground truth, standing in for the
  real 2014 extracts (see DESIGN.md, substitutions).
- :mod:`repro.faers.ingest` — the streaming tier: chunked, bounded-memory
  clean + encode of any report iterable (the million-report capacity
  path; byte-identical to the one-shot chain for single-version streams).
- :mod:`repro.faers.vocab` — drug/ADR vocabularies seeded with the names
  appearing in the paper.
"""

from repro.faers.cleaning import CleaningStats, ReportCleaner, normalize_adr_term, normalize_drug_name
from repro.faers.dedup import (
    NearDuplicatePolicy,
    find_near_duplicates,
    resolve_near_duplicates,
)
from repro.faers.dataset import DatasetStats, ReportDataset
from repro.faers.ingest import StreamedIngest, StreamEncoder, encode_stream, iter_chunks
from repro.faers.parser import iter_quarter, parse_quarter, read_delimited
from repro.faers.schema import CaseReport, ReportType
from repro.faers.synthetic import (
    InteractionSpec,
    SyntheticConfig,
    SyntheticFAERSGenerator,
    iter_year,
    quarter_config,
    quarter_sequence,
)
from repro.faers.vocab import ADR_VOCABULARY, DRUG_VOCABULARY
from repro.faers.writer import QuarterFiles, write_quarter_files

__all__ = [
    "ADR_VOCABULARY",
    "CaseReport",
    "CleaningStats",
    "DatasetStats",
    "DRUG_VOCABULARY",
    "InteractionSpec",
    "NearDuplicatePolicy",
    "ReportCleaner",
    "ReportDataset",
    "ReportType",
    "StreamEncoder",
    "StreamedIngest",
    "SyntheticConfig",
    "SyntheticFAERSGenerator",
    "encode_stream",
    "find_near_duplicates",
    "iter_chunks",
    "iter_quarter",
    "iter_year",
    "normalize_adr_term",
    "normalize_drug_name",
    "resolve_near_duplicates",
    "parse_quarter",
    "quarter_config",
    "quarter_sequence",
    "QuarterFiles",
    "read_delimited",
    "write_quarter_files",
]
