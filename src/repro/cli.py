"""Command-line interface: the MeDIAR system as a tool.

Installed as the ``mediar`` console script; also runnable as
``python -m repro.cli``. Subcommands mirror the workflows of Chapter 5:

- ``generate`` — write a synthetic quarter as FAERS-format ASCII files;
- ``stats``    — Table 5.1-style statistics of a quarter;
- ``mine``     — run the pipeline and print the top-ranked interactions;
- ``render``   — write the ranked glyph panorama / zoom views as SVG;
- ``study``    — run the simulated user study (Fig 5.2);
- ``validate`` — classify top-ranked interactions against the DDI
  reference and flag severe ones;
- ``serve``    — mine (or load a saved store) and serve the results
  over the :mod:`repro.serve` JSON HTTP API;
- ``run``      — full pipeline then JSON export in one step; with
  ``--workers N`` the mining stage shards across N processes
  (byte-identical output, see :mod:`repro.parallel`);
- ``watch``    — stream a quarter in batches through incremental
  surveillance; ``--store sqlite:///path.db`` checkpoints after each
  batch so a killed watch resumes mid-stream with identical output;
- ``runs``     — list/show/prune the runs in a durable store.

``mine``, ``render``, ``validate`` and ``stats`` accept either
``--synthetic QUARTER`` (e.g. 2014Q1) or ``--demo/--drug/--reac`` file
paths for real extracts.

The global ``--profile`` flag (before the subcommand) turns on the
observability layer for any pipeline subcommand: per-stage wall times
and counters are printed to stderr after the run, and ``--trace PATH``
additionally writes the full structured-event stream as JSONL.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import Maras, MarasConfig, MarasResult, RankingMethod
from repro.errors import ConfigError, ReproError
from repro.faers import (
    ReportCleaner,
    ReportDataset,
    SyntheticFAERSGenerator,
    parse_quarter,
    quarter_config,
)
from repro.faers.schema import ReportType
from repro.knowledge import default_reference, default_severity_index
from repro.obs import NULL_REGISTRY, JsonlSink, MetricsRegistry, peak_rss_bytes, use_registry
from repro.userstudy import UserStudy, build_questions
from repro.viz import render_panorama, render_zoom_view

RANKING_BY_NAME = {method.value: method for method in RankingMethod}

#: Upper bound on serving worker processes (`mediar serve --workers`).
#: Each worker is a forked process sharing the listening socket; values
#: beyond this are configuration mistakes, rejected with one line
#: instead of a fork storm. Mining workers are bounded separately by
#: :data:`repro.parallel.miner.MAX_WORKERS`.
MAX_SERVE_WORKERS = 128


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mediar",
        description="MeDIAR: multi-drug adverse reaction analytics",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record stage timings/counters and print them to stderr",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="with --profile, also write a JSONL event trace to PATH",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="write a synthetic quarter as FAERS ASCII files"
    )
    generate.add_argument("quarter", help="one of 2014Q1..2014Q4")
    generate.add_argument("--scale", type=float, default=0.02)
    generate.add_argument("--out", type=Path, default=Path("faers_out"))

    for name, help_text in (
        ("stats", "Table 5.1-style statistics of a quarter"),
        ("mine", "mine and rank multi-drug interactions"),
        ("render", "write ranked glyphs as SVG"),
        ("validate", "validate top interactions against the DDI reference"),
        ("study", "run the simulated user study"),
        ("report", "write the quarterly markdown surveillance report"),
        ("export", "write the mined result as JSON"),
        ("dashboard", "write the self-contained HTML dashboard"),
        ("profile", "drug-centric risk profile"),
        ("run", "run the full pipeline and write the exported result"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_input_arguments(sub)
        if name in (
            "mine", "render", "validate", "study", "report", "export",
            "dashboard", "profile", "run",
        ):
            sub.add_argument("--min-support", type=int, default=5)
            sub.add_argument("--max-drugs", type=int, default=4)
            _add_worker_arguments(sub)
        if name == "profile":
            sub.add_argument("drug", help="canonical drug name to profile")
        if name in ("mine", "render", "validate", "report", "dashboard"):
            sub.add_argument(
                "--method",
                choices=sorted(RANKING_BY_NAME),
                default=RankingMethod.EXCLUSIVENESS_CONFIDENCE.value,
            )
            sub.add_argument("--top", type=int, default=10)
        if name == "report":
            sub.add_argument("--out", type=Path, default=Path("quarter_report.md"))
        if name in ("export", "run"):
            sub.add_argument("--out", type=Path, default=Path("result.json"))
        if name == "dashboard":
            sub.add_argument("--out", type=Path, default=Path("dashboard.html"))
        if name == "mine":
            sub.add_argument("--drug", help="restrict to clusters mentioning this drug")
            sub.add_argument("--adr", help="restrict to clusters mentioning this ADR")
            sub.add_argument(
                "--show-context",
                action="store_true",
                help="print each cluster's contextual rules",
            )
        if name == "render":
            sub.add_argument("--out", type=Path, default=Path("glyphs"))
        if name == "study":
            sub.add_argument("--annotators", type=int, default=50)

    watch = subparsers.add_parser(
        "watch",
        help="stream a quarter in batches through incremental surveillance",
    )
    _add_input_arguments(watch)
    watch.add_argument("--min-support", type=int, default=5)
    watch.add_argument("--max-drugs", type=int, default=4)
    _add_worker_arguments(watch)
    watch.add_argument(
        "--batches",
        type=int,
        default=8,
        metavar="N",
        help="split the input stream into N ingest batches",
    )
    watch.add_argument("--top", type=int, default=5)
    watch.add_argument(
        "--full-rescan",
        action="store_true",
        help="re-run the full pipeline per batch instead of the "
        "incremental engine (for comparison)",
    )
    watch.add_argument(
        "--store",
        default=None,
        metavar="URI",
        help="checkpoint into a durable store (sqlite:///path.db) after "
        "each batch; a killed watch resumes where it stopped",
    )
    watch.add_argument(
        "--run",
        default=None,
        metavar="NAME",
        help="run name in the store (default: the dataset's quarter)",
    )
    watch.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="commit a checkpoint every N batches (default 1; the final "
        "batch always checkpoints)",
    )
    watch.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the final result as a JSON export",
    )

    serve = subparsers.add_parser(
        "serve", help="serve mined results over a JSON HTTP API"
    )
    _add_input_arguments(serve)
    serve.add_argument("--min-support", type=int, default=5)
    serve.add_argument("--max-drugs", type=int, default=4)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--name",
        default=None,
        help="run name to serve under (default: the dataset's quarter)",
    )
    serve.add_argument(
        "--load",
        default=None,
        metavar="DIR",
        help="serve snapshots from a store directory instead of mining",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="URI",
        help="serve snapshots from a durable store URI "
        "(dir:///path or sqlite:///path.db) instead of mining",
    )
    serve.add_argument(
        "--save",
        default=None,
        metavar="STORE",
        help="also write the runs to a store (directory path or URI) "
        "for warm restarts",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=512,
        help="bounded LRU response-cache capacity",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="serving worker processes sharing one listening socket "
        "(async transport only; default 1)",
    )
    transport = serve.add_mutually_exclusive_group()
    transport.add_argument(
        "--async",
        dest="async_transport",
        action="store_true",
        default=True,
        help="asyncio transport (the default)",
    )
    transport.add_argument(
        "--sync",
        dest="async_transport",
        action="store_false",
        help="threaded fallback transport (single process)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=1024,
        metavar="N",
        help="per-worker open-connection cap before shedding with 503",
    )
    serve.add_argument(
        "--grace",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="graceful-shutdown drain deadline on SIGTERM/SIGINT",
    )

    runs = subparsers.add_parser(
        "runs", help="inspect and maintain a durable run store"
    )
    runs.add_argument(
        "--store",
        required=True,
        metavar="URI",
        help="store to operate on (dir:///path or sqlite:///path.db)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_sub.add_parser("list", help="list every run version in the store")
    show = runs_sub.add_parser("show", help="show one run's catalog row")
    show.add_argument("name", help="run name")
    show.add_argument(
        "--version",
        type=int,
        default=None,
        help="pin a version (default: latest)",
    )
    show.add_argument(
        "--json",
        action="store_true",
        help="print the full snapshot payload as JSON",
    )
    prune = runs_sub.add_parser(
        "prune", help="apply retention: drop old versions per run"
    )
    prune.add_argument(
        "--keep",
        type=int,
        default=1,
        metavar="N",
        help="versions to keep per run (default 1)",
    )
    prune.add_argument(
        "--compact",
        action="store_true",
        help="also drop superseded payload bodies and VACUUM "
        "(catalog rows stay listable)",
    )
    return parser


def _add_worker_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="mine in N worker processes (0 = one per core; default 1, "
        "same results for every value)",
    )
    sub.add_argument(
        "--shard-strategy",
        choices=("hash", "quarter"),
        default="hash",
        help="how the parallel path partitions reports into shards",
    )


def _add_input_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--synthetic",
        metavar="QUARTER",
        help="use a synthetic quarter (2014Q1..2014Q4)",
    )
    sub.add_argument("--scale", type=float, default=0.02, help="synthetic scale")
    sub.add_argument("--demo", type=Path, help="DEMO file of a real extract")
    sub.add_argument("--drug-file", type=Path, help="DRUG file of a real extract")
    sub.add_argument("--reac", type=Path, help="REAC file of a real extract")
    sub.add_argument(
        "--no-clean", action="store_true", help="skip the cleaning pass"
    )


def load_dataset(args: argparse.Namespace) -> ReportDataset:
    """Resolve the input arguments to a report dataset."""
    if args.synthetic:
        config = quarter_config(args.synthetic, scale=args.scale)
        reports = SyntheticFAERSGenerator(config).generate()
        return ReportDataset(reports)
    if args.demo and args.drug_file and args.reac:
        reports, _ = parse_quarter(
            args.demo,
            args.drug_file,
            args.reac,
            report_types=frozenset({ReportType.EXPEDITED}),
        )
        if not args.no_clean:
            reports, _ = ReportCleaner().clean(reports)
        return ReportDataset(reports)
    raise SystemExit(
        "error: provide --synthetic QUARTER or all of --demo/--drug-file/--reac"
    )


def build_registry(args: argparse.Namespace):
    """The metrics registry requested by ``--profile`` / ``--trace``."""
    if not getattr(args, "profile", False):
        return NULL_REGISTRY
    sink = JsonlSink(args.trace) if getattr(args, "trace", None) else None
    return MetricsRegistry(sink=sink)


def report_peak_rss(registry) -> None:
    """Print the process peak RSS under ``--profile``.

    The metrics snapshot inside a result is frozen before the run
    returns, so the lifetime high-water mark gets its own line (and a
    live gauge for trace consumers). Silently absent on platforms
    without procfs/getrusage.
    """
    peak = peak_rss_bytes()
    if peak is None:
        return
    registry.gauge("process.peak_rss_bytes").set(peak)
    print(f"peak RSS: {peak / 2**20:.1f} MiB", file=sys.stderr)


def run_pipeline(args: argparse.Namespace) -> MarasResult:
    config = MarasConfig(
        min_support=args.min_support,
        max_drugs=args.max_drugs,
        clean=False,  # load_dataset already cleaned when asked to
        n_workers=getattr(args, "workers", 1),
        shard_strategy=getattr(args, "shard_strategy", "hash"),
    )
    registry = build_registry(args)
    with use_registry(registry):
        # load_dataset's cleaning/parsing records into the same registry
        # as the pipeline stages.
        dataset = load_dataset(args)
        result = Maras(config, registry=registry).run(dataset)
    if registry.enabled:
        print(result.metrics.format_table(), file=sys.stderr)
        report_peak_rss(registry)
        registry.close()
        if args.trace:
            print(f"wrote trace {args.trace}", file=sys.stderr)
    return result


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.faers.writer import write_quarter_files

    config = quarter_config(args.quarter, scale=args.scale)
    reports = SyntheticFAERSGenerator(config).generate()
    files = write_quarter_files(reports, args.out, quarter=args.quarter)
    for path in files.as_tuple():
        print(f"wrote {path}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    stats = load_dataset(args).stats()
    print(f"quarter:  {stats.quarter or '(unlabelled)'}")
    print(f"reports:  {stats.n_reports:,d}")
    print(f"drugs:    {stats.n_drugs:,d}")
    print(f"ADRs:     {stats.n_adrs:,d}")
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    from repro.viz import cluster_detail

    result = run_pipeline(args)
    method = RANKING_BY_NAME[args.method]
    clusters = result.clusters
    if args.drug or args.adr:
        clusters = result.search(drug=args.drug, adr=args.adr)
        if not clusters:
            print("no clusters match the search criteria")
            return 1
    from repro.core.ranking import rank_clusters

    ranked = rank_clusters(clusters, method, top_k=args.top)
    print(f"{len(result.clusters)} clusters mined; top {len(ranked)} by {args.method}:")
    for entry in ranked:
        print(f"  {entry.describe(result.catalog)}")
        if args.show_context:
            detail = cluster_detail(entry.cluster, result.catalog)
            for line in detail.splitlines()[1:]:
                print(f"      {line}")
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    result = run_pipeline(args)
    method = RANKING_BY_NAME[args.method]
    ranked = result.rank(method, top_k=args.top)
    if not ranked:
        print("nothing to render: no clusters mined")
        return 1
    args.out.mkdir(parents=True, exist_ok=True)
    panorama = render_panorama(ranked, result.catalog).save(args.out / "panorama.svg")
    zoom = render_zoom_view(ranked[0].cluster, result.catalog).save(
        args.out / "top1_zoom.svg"
    )
    print(f"wrote {panorama}")
    print(f"wrote {zoom}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    result = run_pipeline(args)
    method = RANKING_BY_NAME[args.method]
    reference = default_reference()
    severity = default_severity_index()
    catalog = result.catalog
    print(f"top {args.top} by {args.method}, validated:")
    for entry in result.rank(method, top_k=args.top):
        drugs = catalog.labels(entry.cluster.target.antecedent)
        adrs = catalog.labels(entry.cluster.target.consequent)
        novelty = reference.classify(drugs, adrs)
        severe = "SEVERE" if severity.is_severe(adrs) else "      "
        print(
            f"  #{entry.rank:<3d} [{novelty:>26s}] [{severe}] "
            f"{' + '.join(drugs)} => {', '.join(adrs)}"
        )
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    result = run_pipeline(args)
    questions = build_questions(result.clusters)
    outcome = UserStudy(n_annotators=args.annotators).run(questions)
    print(
        f"simulated user study: {outcome.n_annotators} annotators, "
        f"{outcome.n_questions} questions"
    )
    print(f"{'#drugs':>8s} {'glyph':>8s} {'barchart':>10s}")
    glyph = outcome.series("contextual-glyph")
    barchart = outcome.series("bar-chart")
    for n_drugs in sorted(glyph):
        print(f"{n_drugs:>8d} {glyph[n_drugs]:>8.0%} {barchart[n_drugs]:>10.0%}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report_builder import write_quarter_report

    result = run_pipeline(args)
    path = write_quarter_report(
        result,
        args.out,
        method=RANKING_BY_NAME[args.method],
        top_k=args.top,
    )
    print(f"wrote {path}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.core.export import write_export

    result = run_pipeline(args)
    path = write_export(result, args.out)
    print(f"wrote {path} ({len(result.clusters)} clusters)")
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.viz.dashboard import write_dashboard

    result = run_pipeline(args)
    path = write_dashboard(
        result,
        args.out,
        method=RANKING_BY_NAME[args.method],
        top_k=args.top,
    )
    print(f"wrote {path}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.profile import build_drug_profile
    from repro.faers.cleaning import normalize_drug_name

    result = run_pipeline(args)
    profile = build_drug_profile(result, normalize_drug_name(args.drug))
    print(profile.describe(result.catalog))
    print("body systems:", "; ".join(sorted(profile.body_systems)) or "none")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.core.export import write_export

    result = run_pipeline(args)
    path = write_export(result, args.out)
    print(
        f"mined {len(result.clusters)} clusters from "
        f"{len(result.dataset)} reports "
        f"(workers={args.workers}, strategy={args.shard_strategy})"
    )
    print(f"wrote {path}")
    return 0


def _watch_kill_hook(variable: str, batch_index: int) -> None:
    """Crash-injection hook for the durability test harness.

    When the named environment variable holds ``batch_index``, the
    process SIGKILLs itself — no cleanup, no atexit, exactly the
    failure mode the checkpoint/journal transaction must survive.
    """
    import os
    import signal

    if os.environ.get(variable, "") == str(batch_index):
        os.kill(os.getpid(), signal.SIGKILL)


def cmd_watch(args: argparse.Namespace) -> int:
    from repro.core.incremental import SurveillanceMonitor

    if args.batches < 1:
        raise ConfigError(f"--batches must be >= 1, got {args.batches}")
    if args.checkpoint_every < 1:
        raise ConfigError(
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    if args.store and args.full_rescan:
        raise ConfigError(
            "--store checkpointing requires the incremental engine; "
            "drop --full-rescan"
        )
    dataset = load_dataset(args)
    reports = dataset.reports
    config = MarasConfig(
        min_support=args.min_support,
        max_drugs=args.max_drugs,
        clean=False,  # load_dataset already cleaned when asked to
        incremental=not args.full_rescan,
        n_workers=getattr(args, "workers", 1),
        shard_strategy=getattr(args, "shard_strategy", "hash"),
    )
    registry = build_registry(args)
    size = max(1, -(-len(reports) // args.batches))
    batches = [
        list(reports[start : start + size])
        for start in range(0, len(reports), size)
    ]
    mode = "full-rescan" if args.full_rescan else "incremental"
    print(
        f"watching {len(reports)} reports as {args.batches} batches ({mode})"
    )

    backend = None
    monitor = None
    start_batch = 0
    if args.store:
        from repro.store import (
            JournalEntry,
            config_fingerprint,
            checkpoint_monitor,
            open_backend,
            restore_monitor,
            verify_journal,
        )

        backend = open_backend(args.store)
        run_name = args.run or dataset.quarter or "watch"
        fingerprint = config_fingerprint(config)
        monitor = restore_monitor(backend, run_name, config, registry=registry)
        if monitor is not None:
            start_batch = monitor.n_batches
            verify_journal(backend, run_name, batches, start_batch)
            print(
                f"resumed run {run_name!r} from its checkpoint: "
                f"{start_batch}/{len(batches)} batches already ingested"
            )
    if monitor is None:
        monitor = SurveillanceMonitor(config, registry=registry)
    try:
        pending = []
        for index in range(start_batch, len(batches)):
            delta = monitor.ingest(batches[index])
            line = (
                f"batch {delta.batch_index}: {delta.n_reports_total} reports, "
                f"+{len(delta.newly_surfaced)} surfaced, "
                f"-{len(delta.dropped)} dropped, {len(delta.risers)} risers"
            )
            if delta.rank_correlation is not None:
                line += f", rank ρ={delta.rank_correlation:.3f}"
            stats = monitor.engine_stats
            if stats:
                line += (
                    f" | delta +{stats['n_rows_appended']}"
                    f"/~{stats['n_rows_updated']} rows, "
                    f"reuse {stats.get('reuse_ratio', 0.0):.0%} "
                    f"({stats.get('n_carried', 0)} carried, "
                    f"{stats.get('n_mined', 0)} re-mined)"
                )
                if stats.get("rebuild_reason"):
                    line += f" [rebuild: {stats['rebuild_reason']}]"
            print(line, flush=True)
            if backend is not None:
                pending.append(
                    JournalEntry(
                        index, [report.case_id for report in batches[index]]
                    )
                )
                _watch_kill_hook("MEDIAR_WATCH_KILL_BEFORE_CHECKPOINT", index)
                due = (index + 1 - start_batch) % args.checkpoint_every == 0
                if due or index == len(batches) - 1:
                    checkpoint_monitor(
                        backend,
                        run_name,
                        monitor,
                        fingerprint=fingerprint,
                        journal=pending,
                    )
                    pending = []
                _watch_kill_hook("MEDIAR_WATCH_KILL_AFTER_CHECKPOINT", index)
        print(f"\ntop {args.top} after {monitor.n_batches} batches:")
        for key, rank in monitor.watchlist(top_k=args.top):
            drugs, adrs = key
            print(f"  #{rank:<3d} {' + '.join(drugs)} => {', '.join(adrs)}")
        if backend is not None:
            from repro.core.export import export_result

            record = backend.save_run(run_name, export_result(monitor.result))
            print(f"published {record.location}")
        if args.out is not None:
            from repro.core.export import write_export

            print(f"wrote {write_export(monitor.result, args.out)}")
    finally:
        monitor.close()
        if backend is not None:
            backend.close()
    if registry.enabled:
        print(monitor.result.metrics.format_table(), file=sys.stderr)
        report_peak_rss(registry)
        registry.close()
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    import json

    from repro.store import open_backend

    with open_backend(args.store) as backend:
        if args.runs_command == "list":
            records = backend.list_runs()
            if not records:
                print(f"no runs in {backend.uri}")
                return 0
            print(
                f"{'name':<24s} {'ver':>4s} {'clusters':>8s} "
                f"{'quarter':>8s}  created"
            )
            for record in records:
                clusters = (
                    "-" if record.compacted else str(record.n_clusters)
                )
                note = "  (compacted)" if record.compacted else ""
                print(
                    f"{record.name:<24s} {record.version:>4d} "
                    f"{clusters:>8s} {record.quarter or '-':>8s}  "
                    f"{record.created_at}{note}"
                )
            return 0
        if args.runs_command == "show":
            payload = backend.load_run(args.name, args.version)
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
                return 0
            records = [
                record
                for record in backend.list_runs()
                if record.name == args.name
                and (args.version is None or record.version == args.version)
            ]
            record = records[-1]
            for key, value in record.describe().items():
                print(f"{key}: {value}")
            return 0
        # prune
        deleted = backend.prune(keep=args.keep)
        line = f"pruned {deleted} version(s) beyond the newest {args.keep}"
        if args.compact:
            line += f"; compacted {backend.compact()} payload(s)"
        print(line)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import tempfile
    import threading

    from repro.serve import (
        ApiResponder,
        MediarHTTPServer,
        QueryEngine,
        ResultStore,
        serve_forked,
    )

    if args.workers < 1:
        raise ReproError("--workers must be at least 1")
    if args.workers > MAX_SERVE_WORKERS:
        raise ReproError(
            f"--workers must be <= {MAX_SERVE_WORKERS}, got {args.workers}"
        )
    if not args.async_transport and args.workers > 1:
        raise ReproError(
            "--sync serves from one threaded process; "
            "use the async transport for --workers > 1"
        )
    if args.load and args.store:
        raise ReproError("--load and --store are aliases; pass one")
    source = args.store or args.load
    if source:
        store = ResultStore.load(source)
    else:
        result = run_pipeline(args)
        name = args.name or result.dataset.quarter or "run"
        store = ResultStore()
        store.add_result(name, result)
    if args.save:
        for path in store.save(args.save):
            print(f"wrote {path}")
    # Serving always records endpoint metrics: /v1/metrics is part of
    # the API contract, independent of the pipeline --profile flag.
    engine = QueryEngine(
        store, cache_size=args.cache_size, registry=MetricsRegistry()
    )
    responder = ApiResponder(engine)
    primed = responder.warm()
    print(f"primed {primed} precomputed responses", flush=True)

    if args.async_transport:
        runs = ", ".join(store.names())
        with tempfile.TemporaryDirectory(prefix="mediar-metrics-") as mdir:
            return serve_forked(
                responder,
                args.host,
                args.port,
                args.workers,
                metrics_dir=mdir if args.workers > 1 else None,
                max_connections=args.max_connections,
                grace=args.grace,
                announce=lambda url: print(
                    f"serving {runs} on {url} "
                    f"({args.workers} worker(s), Ctrl-C to stop)",
                    flush=True,
                ),
            )

    server = MediarHTTPServer(responder, args.host, args.port)

    def _stop(signum: int, frame: object) -> None:
        # shutdown() blocks until serve_forever returns, so hand it to a
        # helper thread and let the main thread fall through to drain.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    print(
        f"serving {', '.join(store.names())} on {server.url} "
        "(Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.drain(args.grace)
        server.server_close()
    return 0


COMMANDS = {
    "generate": cmd_generate,
    "stats": cmd_stats,
    "mine": cmd_mine,
    "render": cmd_render,
    "validate": cmd_validate,
    "study": cmd_study,
    "report": cmd_report,
    "export": cmd_export,
    "dashboard": cmd_dashboard,
    "profile": cmd_profile,
    "run": cmd_run,
    "watch": cmd_watch,
    "serve": cmd_serve,
    "runs": cmd_runs,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
