"""Sharded multi-process mining with an exact deterministic merge.

Partition a dataset into shards (:mod:`~repro.parallel.sharding`), mine
all locally frequent itemsets per shard in worker processes
(:mod:`~repro.parallel.worker`), and merge them *tree-wise* into the
exact global closed set (:mod:`~repro.parallel.merge`). Scheduling is
dependency-driven dataflow (:mod:`~repro.parallel.miner`): each merge
node is submitted the moment its inputs complete, and for full mines
the root's closure/dedup pass runs inside the top tree node. Workers
keep shard rows resident across mines in a persistent
:class:`~repro.parallel.pool.MiningPool`, keyed by a database
fingerprint, so repeated mines (watch batches, serving refreshes) ship
thresholds and deltas instead of rows. The top-level entry point is
:func:`~repro.parallel.miner.fpclose_sharded`, threaded through
``Maras.run`` via ``MarasConfig(n_workers=...)`` — and through the
incremental engine's delta re-mining via ``touched_mask``.
"""

from repro.parallel.merge import merge_pair, merge_shard_itemsets
from repro.parallel.miner import MAX_WORKERS, fpclose_sharded, resolve_workers
from repro.parallel.pool import MiningPool, database_fingerprint, reset_residency
from repro.parallel.sharding import (
    HASH_STRATEGY,
    QUARTER_STRATEGY,
    SHARD_STRATEGIES,
    plan_digest,
    plan_shards,
    round_robin_shards,
    shard_of_case,
    validate_plan,
)
from repro.parallel.worker import local_threshold, mine_shard

__all__ = [
    "HASH_STRATEGY",
    "MAX_WORKERS",
    "MiningPool",
    "QUARTER_STRATEGY",
    "SHARD_STRATEGIES",
    "database_fingerprint",
    "fpclose_sharded",
    "local_threshold",
    "merge_pair",
    "merge_shard_itemsets",
    "mine_shard",
    "plan_digest",
    "plan_shards",
    "reset_residency",
    "resolve_workers",
    "round_robin_shards",
    "shard_of_case",
    "validate_plan",
]
