"""Sharded multi-process mining with an exact deterministic merge.

Partition a dataset into shards (:mod:`~repro.parallel.sharding`), mine
all locally frequent itemsets per shard in worker processes
(:mod:`~repro.parallel.worker`), and merge them *tree-wise* into the
exact global closed set (:mod:`~repro.parallel.merge`): sibling shards
pair-merge at region thresholds inside the workers (or coalesce into
directly-mined regions when the pool is narrower than the leaf count),
and only region survivors reach the parent's root merge over chunked
tidset masks. The top-level entry point is
:func:`~repro.parallel.miner.fpclose_sharded`, threaded through
``Maras.run`` via ``MarasConfig(n_workers=...)`` — and through the
incremental engine's delta re-mining via ``touched_mask``.
"""

from repro.parallel.merge import merge_pair, merge_shard_itemsets
from repro.parallel.miner import fpclose_sharded, resolve_workers
from repro.parallel.sharding import (
    HASH_STRATEGY,
    QUARTER_STRATEGY,
    SHARD_STRATEGIES,
    plan_shards,
    round_robin_shards,
    shard_of_case,
    validate_plan,
)
from repro.parallel.worker import local_threshold, mine_shard

__all__ = [
    "HASH_STRATEGY",
    "QUARTER_STRATEGY",
    "SHARD_STRATEGIES",
    "fpclose_sharded",
    "local_threshold",
    "merge_pair",
    "merge_shard_itemsets",
    "mine_shard",
    "plan_shards",
    "resolve_workers",
    "round_robin_shards",
    "shard_of_case",
    "validate_plan",
]
