"""The per-shard and per-region mining tasks run inside worker processes.

Each worker mines **all locally frequent itemsets** (``fpgrowth``) over
its shard at a scaled-down local threshold, not closed itemsets. That
choice is what makes the merge in :mod:`repro.parallel.merge` *exact*
(the Savasere/Omiecinski/Navathe two-phase partition scheme):

If itemset ``X`` has global support ``sup(X) >= s`` over ``N``
transactions split into shards of sizes ``n_1..n_k``, then by
pigeonhole there is a shard ``i`` with local support
``sup_i(X) >= ceil(s * n_i / N)``. So mining every shard at local
threshold ``t_i = max(1, ceil(s * n_i / N))`` guarantees each globally
frequent itemset — in particular each globally *closed* one — appears
verbatim in at least one shard's output. Mining locally-*closed* sets
instead would lose this guarantee: an itemset can be non-closed in
every shard yet closed globally (e.g. ``{A}`` when shard 1 only sees
``AB`` rows and shard 2 only ``AC`` rows).

The same argument nests: a *region* (union of sibling shards) at
threshold ``ceil(s * |region| / N)`` keeps every globally frequent
itemset alive along some root-to-leaf chain. That is what lets the
scheduler in :mod:`repro.parallel.miner` pair-merge sibling shards
inside workers (:func:`repro.parallel.merge.merge_pair`) or mine a
coalesced region directly at its region threshold — both are nodes of
the same merge tree.

Everything crossing the process boundary is plain ints/tuples so
pickling stays cheap: transactions travel as tuples of item ids, and
the worker wraps them in a label-free
:class:`~repro.mining.transactions.MiningCatalog` (labels are never
consulted during mining, so none are built).
"""

from __future__ import annotations

import time

from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import MiningCatalog, TransactionDatabase

#: What a worker sends back: shard index, transaction count, local
#: threshold used, wall-clock seconds, and the locally frequent
#: itemsets as ``(sorted_items_tuple, local_support)`` pairs.
ShardResult = tuple[int, int, int, float, tuple[tuple[tuple[int, ...], int], ...]]


def local_threshold(min_support: int, shard_size: int, n_transactions: int) -> int:
    """``max(1, ceil(min_support * shard_size / n_transactions))``."""
    if n_transactions <= 0:
        return 1
    return max(1, -((-min_support * shard_size) // n_transactions))


def mine_shard(
    index: int,
    transactions: tuple[tuple[int, ...], ...],
    n_items: int,
    threshold: int,
    max_len: int | None,
) -> ShardResult:
    """Mine one shard; module-level so it pickles under ProcessPoolExecutor."""
    started = time.perf_counter()
    database = TransactionDatabase(transactions, MiningCatalog(n_items))
    itemsets = fpgrowth(database, threshold, max_len=max_len)
    payload = tuple(
        (tuple(sorted(fi.items)), fi.support) for fi in itemsets
    )
    return index, len(transactions), threshold, time.perf_counter() - started, payload
