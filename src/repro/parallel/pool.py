"""Persistent mining pool with per-worker shard residency.

:class:`MiningPool` is the process-pool substrate of the dataflow
scheduler in :mod:`repro.parallel.miner`. Unlike a bare
``ProcessPoolExecutor`` it survives *across* mines and lets workers pin
shard state between them:

- **Residency.** Every task names its shard rows by ``(fingerprint,
  leaf key)`` instead of carrying them. Workers keep the rows (plus a
  lazily built vertical item index and, for the finalize node, the
  assembled full database with its mask table) in module-level caches,
  so a repeated mine of the same-fingerprint database ships only
  thresholds and the touched-item universe — not the rows. The
  fingerprint (:func:`database_fingerprint`) hashes the database's
  per-item transaction masks plus the shard plan, so "same fingerprint"
  *implies* byte-identical shard rows.
- **Delta shipping.** When the database grew since the pool's last mine
  (the ``mediar watch`` loop), the caller passes the tids whose rows
  changed; per leaf whose previous tids are a prefix of its new ones,
  only the appended rows and in-place updates cross the process
  boundary, and workers patch their resident rows (and vertical index)
  forward to the new fingerprint.
- **Self-healing.** Tasks are pure, so a worker that does not hold a
  referenced shard answers with a ``miss`` sentinel and the scheduler
  resubmits with the rows attached — residency converges per worker
  rather than requiring task→worker routing. A dead worker breaks the
  whole stdlib pool (``BrokenProcessPool``); :meth:`MiningPool.recover`
  replaces the executor wholesale and forgets all shipping state, so
  the resubmitted tasks rebuild residency from the fingerprint.

Parent-side state (:attr:`MiningPool.resident_fp`, per-leaf tid
history, counters) is only ever touched from the scheduler's driver
thread; completion callbacks merely enqueue events. Worker-side caches
hold at most one row set per leaf key plus one finalize database, so
memory is bounded by one database copy per worker (twice, counting the
finalize cache) — the explicit residency trade: memory for not
re-pickling a growing corpus on every surveillance batch.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_left, insort
from collections.abc import Collection, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from hashlib import blake2b

from repro.mining.transactions import MiningCatalog, TransactionDatabase
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel.merge import merge_pair, merge_shard_itemsets
from repro.parallel.sharding import plan_digest
from repro.parallel.worker import mine_shard

#: Outcome tags of :func:`run_node`.
OK = "ok"
MISS = "miss"

#: Environment hook for the worker-death harness: ``"<node label>|<marker
#: path>"`` makes the worker that picks up that node die once (creating
#: the marker first so the resubmitted task survives).
KILL_ENV = "MEDIAR_POOL_KILL_NODE"


def database_fingerprint(database: TransactionDatabase, plan) -> str:
    """Content fingerprint of ``(database, shard plan)``.

    Hashes the row/item counts, the full per-item transaction mask
    table, and the plan's tid partition. Equal fingerprints imply
    byte-identical shard rows (the mask table determines every row),
    which is what lets warm mines reference resident rows by name.
    """
    digest = blake2b(digest_size=16)
    digest.update(len(database).to_bytes(8, "little"))
    digest.update(len(database.catalog).to_bytes(8, "little"))
    masks = database.item_masks()
    for item in sorted(masks):
        mask = masks[item]
        digest.update(item.to_bytes(4, "little"))
        digest.update(mask.to_bytes((mask.bit_length() + 7) // 8 or 1, "little"))
    return f"{digest.hexdigest()}:{plan_digest(plan)}"


class WarmCollector:
    """Records ``oracle.warm`` calls so a worker can return them.

    The finalize node runs the root closure pass inside a worker where
    the caller's :class:`~repro.mining.bitsets.SupportOracle` does not
    exist; this stand-in collects every ``(items, support)`` pair so
    the parent can replay them into the real oracle.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[tuple[tuple[int, ...], int]] = []

    def warm(self, items, support: int) -> None:
        self.entries.append((tuple(sorted(items)), support))


# --------------------------------------------------------------------------
# Worker-side residency. These module-level caches live in each worker
# process; in tests that drive an inline pool they live in the parent,
# which is why `reset_residency` is public.

#: leaf key -> [fingerprint, rows tuple, vertical index | None]
_LEAVES: dict[int, list] = {}
#: [fingerprint, TransactionDatabase] of the finalize node's full DB.
_ROOT_DB: list | None = None


def reset_residency() -> None:
    """Drop all resident shard state (tests, and executor teardown)."""
    global _ROOT_DB
    _LEAVES.clear()
    _ROOT_DB = None


def _maybe_die(label: str) -> None:
    target = os.environ.get(KILL_ENV)
    if not target:
        return
    node, _, marker = target.partition("|")
    if node != label or not marker or os.path.exists(marker):
        return
    with open(marker, "w", encoding="utf-8") as handle:
        handle.write(label)
    os._exit(1)


def _vertical_of(entry: list) -> dict[int, list[int]]:
    """The leaf's item -> ascending local positions index, built lazily."""
    vertical = entry[2]
    if vertical is None:
        vertical = {}
        for pos, row in enumerate(entry[1]):
            for item in row:
                vertical.setdefault(item, []).append(pos)
        entry[2] = vertical
    return vertical


def _apply_delta(
    entry: list,
    fingerprint: str,
    appended: Sequence[tuple[int, ...]],
    updates: Mapping[int, tuple[int, ...]],
) -> None:
    rows = list(entry[1])
    vertical = entry[2]
    for pos, row in updates.items():
        if vertical is not None:
            old, new = set(rows[pos]), set(row)
            for item in old - new:
                positions = vertical.get(item)
                if positions:
                    i = bisect_left(positions, pos)
                    if i < len(positions) and positions[i] == pos:
                        positions.pop(i)
            for item in new - old:
                insort(vertical.setdefault(item, []), pos)
        rows[pos] = row
    base = len(rows)
    rows.extend(appended)
    if vertical is not None:
        for offset, row in enumerate(appended):
            for item in row:
                vertical.setdefault(item, []).append(base + offset)
    entry[0] = fingerprint
    entry[1] = tuple(rows)


def _leaf_rows(fingerprint: str, key: int, shipment) -> tuple | None:
    """Resolve one leaf's resident rows, or ``None`` on a miss."""
    kind = shipment[0]
    entry = _LEAVES.get(key)
    if kind == "rows":
        entry = [fingerprint, tuple(shipment[1]), None]
        _LEAVES[key] = entry
        return entry[1]
    if entry is not None and entry[0] == fingerprint:
        # Already current — a sibling task applied the delta first.
        return entry[1]
    if kind == "delta":
        _kind, base_fp, appended, updates = shipment
        if entry is None or entry[0] != base_fp:
            return None
        _apply_delta(entry, fingerprint, appended, updates)
        return entry[1]
    return None  # ("ref",) without residency


def _leaf_projection(key: int, universe: tuple[int, ...]) -> tuple:
    """Leaf rows projected onto the sorted ``universe``, empties dropped.

    Uses the resident vertical index, so a warm delta mine's projection
    cost tracks the touched neighbourhood (sum of the universe items'
    supports), not the shard size.
    """
    vertical = _vertical_of(_LEAVES[key])
    buckets: dict[int, list[int]] = {}
    for item in universe:
        for pos in vertical.get(item, ()):
            buckets.setdefault(pos, []).append(item)
    return tuple(tuple(buckets[pos]) for pos in sorted(buckets))


def _root_database(fingerprint: str, rows: tuple, n_items: int) -> TransactionDatabase:
    global _ROOT_DB
    if _ROOT_DB is not None and _ROOT_DB[0] == fingerprint:
        return _ROOT_DB[1]
    database = TransactionDatabase(rows, MiningCatalog(n_items))
    _ROOT_DB = [fingerprint, database]
    return database


def run_node(task: dict):
    """Execute one merge-tree node inside a worker process.

    ``task["groups"]`` is a tuple of leaf groups, each a tuple of
    ``(leaf key, shipment)`` pairs where a shipment is ``("ref",)``,
    ``("rows", rows)`` or ``("delta", base_fp, appended, updates)``.
    Returns ``(OK, payload)`` or ``(MISS, missing_keys)`` when a
    referenced leaf is not resident (the scheduler resubmits with
    rows attached).
    """
    started = time.perf_counter()
    _maybe_die(task["label"])
    fingerprint = task["fp"]
    universe = task.get("universe")
    missing: list[int] = []
    group_rows: list[tuple] = []
    for group in task["groups"]:
        parts: list[tuple] = []
        for key, shipment in group:
            rows = _leaf_rows(fingerprint, key, shipment)
            if rows is None:
                missing.append(key)
            elif universe is None:
                parts.append(rows)
            else:
                parts.append(_leaf_projection(key, universe))
        if not missing:
            merged: list = []
            for part in parts:
                merged.extend(part)
            group_rows.append(tuple(merged))
    if missing:
        return (MISS, tuple(missing))

    kind = task["kind"]
    if kind == "mine":
        result = mine_shard(
            task["index"],
            group_rows[0],
            task["n_items"],
            task["threshold"],
            task["max_len"],
        )
        return (OK, result)
    left_rows, right_rows = group_rows
    survivors, stats = merge_pair(
        task["left_payload"],
        task["right_payload"],
        left_rows,
        right_rows,
        task["left_threshold"],
        task["right_threshold"],
        task["threshold"],
    )
    if kind == "pair":
        return (OK, (survivors, stats, time.perf_counter() - started))
    # finalize: the root's closure/dedup pass, pushed down into the top
    # tree node. Runs the exact root-merge code over the worker's
    # (cached) full database, so the parent's "merge" is just receiving
    # the already-closed list.
    database = _root_database(
        fingerprint, left_rows + right_rows, task["n_items"]
    )
    collector = WarmCollector()
    local_registry = MetricsRegistry()
    with use_registry(local_registry):
        closed = merge_shard_itemsets(
            [survivors],
            database,
            task["threshold"],
            max_len=task["max_len"],
            oracle=collector,
        )
    counters = {
        name: value
        for name, value in local_registry.snapshot().counters.items()
        if name.startswith("parallel.merge.")
    }
    return (
        OK,
        (
            closed,
            collector.entries,
            stats,
            counters,
            time.perf_counter() - started,
        ),
    )


# --------------------------------------------------------------------------
# Parent-side pool.


class MiningPool:
    """A persistent process pool whose workers keep shard rows resident.

    Parameters
    ----------
    max_workers:
        Requested parallelism. The actual process count is capped at
        the machine's core count (shard *plans* are a function of the
        request, never of the cap, so results do not depend on it).
    width:
        Scheduling width override for tests: how many tasks the
        dataflow scheduler may assume can run concurrently. Defaults
        to the capped process count.

    The pool is NOT thread-safe: all methods must be called from the
    scheduler's driver thread. Completion callbacks installed by the
    scheduler only enqueue events.
    """

    def __init__(self, max_workers: int, *, width: int | None = None) -> None:
        requested = max(1, int(max_workers))
        self._processes = min(requested, os.cpu_count() or 1)
        self.width = width if width is not None else self._processes
        self.generation = 0
        self._executor = None
        self._borrowed = False
        self.resident_fp: str | None = None
        #: leaf key -> (fingerprint, tids) of the rows last shipped there.
        self._leaf_state: dict[int, tuple[str, tuple[int, ...]]] = {}
        self.counters = {
            "reuse": 0,
            "cold_start": 0,
            "delta_ships": 0,
            "residency_misses": 0,
            "worker_replacements": 0,
        }

    @classmethod
    def adopt(cls, executor: ProcessPoolExecutor) -> "MiningPool":
        """Wrap a caller-owned executor (back-compat for raw pools).

        The executor is used as-is and never shut down here; residency
        still works because its worker processes persist. If it breaks,
        recovery replaces it with an owned one.
        """
        width = getattr(executor, "_max_workers", None) or 1
        pool = cls(width, width=width)
        pool._executor = executor
        pool._borrowed = True
        return pool

    # -- executor lifecycle -------------------------------------------

    def _spawn_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self._processes)

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = self._spawn_executor()
        return self._executor

    def recover(self, generation: int) -> None:
        """Replace a broken executor and forget all shipping state.

        Generation-guarded so one failure wave (every in-flight future
        of a broken pool fails at once) rebuilds exactly once. Fresh
        workers have empty residency, which the cleared parent-side
        state reflects: every resubmitted task ships rows again.
        """
        if generation != self.generation:
            return
        self.generation += 1
        executor, self._executor = self._executor, None
        self._borrowed = False
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        self.resident_fp = None
        self._leaf_state.clear()
        self.counters["worker_replacements"] += 1

    def submit(self, fn, task):
        try:
            future = self.executor.submit(fn, task)
        except BrokenProcessPool:
            self.recover(self.generation)
            future = self.executor.submit(fn, task)
        future.generation = self.generation
        return future

    def map(self, fn, iterable, chunksize: int = 1):
        """``executor.map`` with one rebuild-and-retry on a broken pool.

        This is the :func:`repro.parallel.cleaning.normalize_batch`
        interface, so the incremental engine can share one pool between
        cleaning and mining.
        """
        items = list(iterable)
        try:
            return list(self.executor.map(fn, items, chunksize=chunksize))
        except BrokenProcessPool:
            self.recover(self.generation)
            return list(self.executor.map(fn, items, chunksize=chunksize))

    def wait_event(self, events, timeout: float | None = None):
        """Block for the next completion event (overridden by stubs)."""
        return events.get(timeout=timeout)

    def shutdown(self) -> None:
        if self._executor is not None and not self._borrowed:
            self._executor.shutdown()
        self._executor = None

    def __enter__(self) -> "MiningPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- residency bookkeeping ----------------------------------------

    def plan_shipments(
        self,
        fingerprint: str,
        leaf_tids: Mapping[int, tuple[int, ...]],
        updated_tids: Collection[int] | None,
    ) -> dict[int, tuple]:
        """Decide, per leaf, how its rows reach the workers this mine.

        Returns ``key -> ("ref",) | ("full",) | ("delta", base_fp,
        n_prev, updated_positions)``. ``updated_tids`` is the caller's
        promise that every row whose *content* changed since this
        pool's previous mine is listed (appends are inferred from the
        tid prefix); the incremental encoder's in-place-update/append
        contract provides exactly that.
        """
        warm = self.resident_fp == fingerprint
        plans: dict[int, tuple] = {}
        n_delta = 0
        updated = (
            None
            if warm or updated_tids is None or self.resident_fp is None
            else frozenset(updated_tids)
        )
        for key, tids in leaf_tids.items():
            if warm:
                plans[key] = ("ref",)
                continue
            previous = self._leaf_state.get(key)
            if (
                updated is not None
                and previous is not None
                and previous[0] == self.resident_fp
                and len(tids) >= len(previous[1])
                and tids[: len(previous[1])] == previous[1]
            ):
                positions = tuple(
                    pos
                    for pos, tid in enumerate(previous[1])
                    if tid in updated
                )
                plans[key] = ("delta", previous[0], len(previous[1]), positions)
                n_delta += 1
            else:
                plans[key] = ("full",)
        if warm or n_delta:
            self.counters["reuse"] += 1
            self.counters["delta_ships"] += n_delta
        else:
            self.counters["cold_start"] += 1
        self.resident_fp = fingerprint
        return plans

    def leaf_state(self, key: int) -> tuple[str, tuple[int, ...]] | None:
        return self._leaf_state.get(key)

    def mark_resident(
        self, key: int, fingerprint: str, tids: tuple[int, ...]
    ) -> None:
        self._leaf_state[key] = (fingerprint, tids)

    def note_miss(self, n: int = 1) -> None:
        self.counters["residency_misses"] += n
