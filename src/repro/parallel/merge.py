"""Exact merge of per-shard frequent itemsets into the global closed set.

Input: the union of locally frequent itemsets from every shard (see
:mod:`repro.parallel.worker` for why that union is guaranteed to
contain every globally frequent itemset). This module recomputes exact
global supports over the full :class:`TransactionDatabase` bitmask
table, discards the globally infrequent, and collapses the survivors
to their closures — producing byte-for-byte the same list as running
``fpclose`` on the whole database.

Support recomputation is a layered bitmask DP rather than per-itemset
intersection from scratch: candidates are processed in
``(len, sorted items)`` order so ``mask(X) = mask(X - {max X}) &
item_mask(max X)`` reuses the parent's tidset mask, and an infrequent
parent kills all its recorded supersets without touching their masks
(``sup`` is antitone, so that pruning is exact).

Closure dedup is free: two itemsets share a closure iff they share a
tidset mask (Galois connection ``tid(closure(Y)) = tid(Y)``), so
grouping by mask integer yields exactly one representative per distinct
closed set. Each closure is then materialised by whichever direction is
cheaper — intersecting the ``sup`` supporting transactions when ``sup``
is small, else scanning items whose global support admits a superset
mask.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.mining.bitsets import SupportOracle
from repro.mining.transactions import FrequentItemset, TransactionDatabase
from repro.obs.metrics import get_registry

#: Below this support, closures intersect transactions; above, scan items.
_CLOSURE_SCAN_CUTOFF = 48


def merge_shard_itemsets(
    shard_outputs: Iterable[Sequence[tuple[tuple[int, ...], int]]],
    database: TransactionDatabase,
    min_support: int,
    *,
    max_len: int | None = None,
    oracle: SupportOracle | None = None,
) -> list[FrequentItemset]:
    """Merge per-shard frequent itemsets into the global closed set.

    Returns the closed frequent itemsets of ``database`` at
    ``min_support`` in canonical ``sorted(items)`` order. When an
    ``oracle`` is given, every exact support computed here is warmed
    into its memo cache so downstream rule/cluster construction never
    re-intersects these tidsets.
    """
    registry = get_registry()
    masks_table = database.item_masks()
    item_supports = database.item_supports()

    candidates: set[frozenset[int]] = set()
    for output in shard_outputs:
        for items, _local_support in output:
            candidates.add(frozenset(items))
    registry.counter("parallel.merge.candidates").inc(len(candidates))

    # Layered DP in (len, sorted items) order: each itemset's mask derives
    # from its max-item-removed parent one layer up.
    ordered = sorted(candidates, key=lambda s: (len(s), tuple(sorted(s))))
    prev_layer: dict[frozenset[int], int] = {}
    cur_layer: dict[frozenset[int], int] = {}
    dead_prev: set[frozenset[int]] = set()
    dead_cur: set[frozenset[int]] = set()
    cur_size = 1
    groups: dict[int, int] = {}  # tidset mask -> global support
    for items in ordered:
        size = len(items)
        if size != cur_size:
            prev_layer, cur_layer = cur_layer, {}
            dead_prev, dead_cur = dead_cur, set()
            cur_size = size
        if size == 1:
            mask = masks_table.get(next(iter(items)), 0)
        else:
            last = max(items)
            parent = items - {last}
            if parent in dead_prev:
                dead_cur.add(items)
                continue
            parent_mask = prev_layer.get(parent)
            if parent_mask is None:
                # Parent absent from the candidate union (shard outputs
                # are downward closed per shard, but the union's parent
                # may sit in a layer this shard never emitted).
                parent_mask = -1
                for item in parent:
                    parent_mask &= masks_table.get(item, 0)
            mask = parent_mask & masks_table.get(last, 0)
        support = mask.bit_count()
        if support >= min_support:
            cur_layer[items] = mask
            groups[mask] = support
            if oracle is not None:
                oracle.warm(items, support)
        else:
            dead_cur.add(items)
    registry.counter("parallel.merge.globally_frequent").inc(len(groups))

    transactions = list(database)
    results: list[FrequentItemset] = []
    for mask, support in groups.items():
        if support <= _CLOSURE_SCAN_CUTOFF:
            remaining = mask
            closed: set[int] | None = None
            while remaining:
                low = remaining & -remaining
                tid = low.bit_length() - 1
                remaining ^= low
                row = transactions[tid]
                closed = set(row) if closed is None else (closed & row)
            closure = frozenset(closed) if closed is not None else frozenset()
        else:
            closure = frozenset(
                item
                for item, item_mask in masks_table.items()
                if item_supports[item] >= support and (item_mask & mask) == mask
            )
        if not closure:
            continue
        if max_len is None or len(closure) <= max_len:
            if oracle is not None:
                oracle.warm(closure, support)
            results.append(FrequentItemset(closure, support))
    registry.counter("parallel.merge.reclosed").inc(len(results))

    results.sort(key=lambda fi: tuple(sorted(fi.items)))
    return results
