"""Exact merges of per-region frequent itemsets, pair-wise and at the root.

Two layers implement the merge tree:

- :func:`merge_pair` — an internal tree node. It combines two sibling
  regions' locally frequent itemsets into the parent region's, working
  entirely in *region-local* bitmask space (masks as wide as the region,
  not the database). Regions are disjoint, so a candidate present in
  **both** children gets its exact region support by summation — no mask
  work at all. One-sided candidates are first attacked with the
  pigeonhole bound (the missing side contributes at most
  ``local_threshold - 1``) and only survivors of that bound pay a
  narrow-mask intersection for the missing side's exact count.
- :func:`merge_shard_itemsets` — the root. It recomputes exact *global*
  supports, discards the globally infrequent, and collapses survivors to
  their closures, producing byte-for-byte the same list as running
  ``fpclose`` on the whole database. Candidates present in **every**
  region list are summed exactly like at a pair node; the rest run a
  layered DP over :class:`~repro.mining.bitsets.ChunkedItemMasks` —
  sparse fixed-width block masks whose intersection cost tracks itemset
  density instead of database width, with dense items stored as
  diffsets.

The DP processes candidates in ``(len, sorted items)`` order so
``mask(X) = mask(X - {max X}) & item_mask(max X)`` reuses the parent's
tidset, and an infrequent parent kills all recorded supersets without
touching their masks (``sup`` is antitone, so the pruning is exact).
Parents absent from the candidate union are recomputed from scratch
**and recorded** — their mask when frequent, their death otherwise — so
sibling supersets never repeat the full-width intersection.

Closure dedup is free: two itemsets share a closure iff they share a
tidset (Galois connection ``tid(closure(Y)) = tid(Y)``), so grouping by
tidset yields exactly one representative per distinct closed set. Each
closure is materialised by whichever direction is cheaper — intersecting
the ``sup`` supporting transactions when ``sup`` is small, else scanning
the support-descending item prefix that can still admit a superset
tidset (found by bisection, tested with early-exit block containment).

Exactness contract: ``shard_outputs`` must be the per-region outputs of
a *disjoint, covering* partition of the database (zero-row regions may
be dropped; empty outputs from non-empty regions must be passed
through), each itemset tagged with its exact support within its region.
The summation shortcut relies on both properties.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Sequence

from repro.mining.bitsets import (
    ChunkedItemMasks,
    ChunkedMask,
    SupportOracle,
    chunk_disjoint,
    chunk_mask,
    chunk_popcount,
    chunk_tids,
)
from repro.mining.transactions import FrequentItemset, TransactionDatabase
from repro.obs.metrics import get_registry

#: Below this support, closures intersect transactions; above, scan items.
_CLOSURE_SCAN_CUTOFF = 48

#: ``(sorted_items_tuple, support)`` pairs, as produced by the workers.
ItemsetPayload = Sequence[tuple[tuple[int, ...], int]]


def _group_key(blocks: ChunkedMask) -> tuple[tuple[int, int], ...]:
    return tuple(sorted(blocks.items()))


def merge_shard_itemsets(
    shard_outputs: Iterable[ItemsetPayload],
    database: TransactionDatabase,
    min_support: int,
    *,
    max_len: int | None = None,
    oracle: SupportOracle | None = None,
    touched_mask: int | None = None,
) -> list[FrequentItemset]:
    """Merge per-region frequent itemsets into the global closed set.

    Returns the closed frequent itemsets of ``database`` at
    ``min_support`` in canonical ``sorted(items)`` order. When an
    ``oracle`` is given, every exact support computed here is warmed
    into its memo cache so downstream rule/cluster construction never
    re-intersects these tidsets. When ``touched_mask`` is given, only
    closed sets whose tidset intersects it are emitted — the delta
    contract of ``fpclose(touched_mask=...)``.
    """
    registry = get_registry()
    table = ChunkedItemMasks(
        database.item_masks(), database.item_supports(), len(database)
    )

    # candidate -> [number of region lists containing it, support sum].
    # A candidate present in *every* region list has exact global support
    # = the sum (regions partition the database); missing from any list
    # means that region's count is unknown (< its local threshold, not 0).
    outputs = list(shard_outputs)
    n_lists = len(outputs)
    stats: dict[tuple[int, ...], list[int]] = {}
    for output in outputs:
        for items, local_support in output:
            key = tuple(sorted(items))
            record = stats.get(key)
            if record is None:
                stats[key] = [1, local_support]
            else:
                record[0] += 1
                record[1] += local_support
    registry.counter("parallel.merge.candidates").inc(len(stats))

    ordered = sorted(stats, key=lambda t: (len(t), t))
    prev_layer: dict[tuple[int, ...], ChunkedMask] = {}
    cur_layer: dict[tuple[int, ...], ChunkedMask] = {}
    dead_prev: set[tuple[int, ...]] = set()
    dead_cur: set[tuple[int, ...]] = set()
    cur_size = 1
    groups: dict[tuple, tuple[ChunkedMask, int]] = {}
    summed = reintersections = pruned_dead = 0
    for items in ordered:
        size = len(items)
        if size != cur_size:
            prev_layer, cur_layer = cur_layer, {}
            dead_prev, dead_cur = dead_cur, set()
            cur_size = size
        if size > 1:
            parent = items[:-1]
            if parent in dead_prev:
                dead_cur.add(items)
                pruned_dead += 1
                continue
        present, total = stats[items]
        known = total if present == n_lists else None
        if known is not None and known < min_support:
            # Exact by summation and infrequent: killed without mask work.
            dead_cur.add(items)
            summed += 1
            continue
        if size == 1:
            blocks = table.positive(items[0])
        else:
            parent_blocks = prev_layer.get(parent)
            if parent_blocks is None:
                # Parent absent from the candidate union (region outputs
                # are downward closed, but an arbitrary caller's union
                # need not be). Recompute it from scratch — and record
                # its fate either way, so sibling supersets are pruned
                # or reuse the mask instead of repeating this.
                parent_blocks = table.positive(parent[0])
                for item in parent[1:]:
                    if not parent_blocks:
                        break
                    parent_blocks = table.and_item(parent_blocks, item)
                reintersections += 1
                if chunk_popcount(parent_blocks) < min_support:
                    dead_prev.add(parent)
                    dead_cur.add(items)
                    pruned_dead += 1
                    continue
                prev_layer[parent] = parent_blocks
            blocks = table.and_item(parent_blocks, items[-1])
        if known is not None:
            support = known
            summed += 1
        else:
            support = chunk_popcount(blocks)
            reintersections += 1
        if support >= min_support:
            cur_layer[items] = blocks
            groups[_group_key(blocks)] = (blocks, support)
            if oracle is not None:
                oracle.warm(frozenset(items), support)
        else:
            dead_cur.add(items)
    registry.counter("parallel.merge.globally_frequent").inc(len(groups))
    registry.counter("parallel.merge.summed").inc(summed)
    registry.counter("parallel.merge.reintersections").inc(reintersections)
    registry.counter("parallel.merge.pruned_dead").inc(pruned_dead)

    touched_blocks = (
        chunk_mask(touched_mask) if touched_mask is not None else None
    )
    by_support, neg_supports = table.items_by_support()
    covers = table.covers
    transactions: list | None = None
    skipped_untouched = 0
    results: list[FrequentItemset] = []
    for blocks, support in groups.values():
        if touched_blocks is not None and chunk_disjoint(
            blocks, touched_blocks
        ):
            skipped_untouched += 1
            continue
        if support <= _CLOSURE_SCAN_CUTOFF:
            if transactions is None:
                transactions = list(database)
            closed: set[int] | None = None
            for tid in chunk_tids(blocks):
                row = transactions[tid]
                closed = set(row) if closed is None else (closed & row)
                if not closed:
                    break
            closure = frozenset(closed) if closed else frozenset()
        else:
            # Only items at least as frequent as the group can contain
            # its tidset; they form a prefix of the support-descending
            # item order, found by bisection.
            stop = bisect_right(neg_supports, -support)
            closure = frozenset(
                item for item in by_support[:stop] if covers(item, blocks)
            )
        if not closure:
            continue
        if max_len is None or len(closure) <= max_len:
            if oracle is not None:
                oracle.warm(closure, support)
            results.append(FrequentItemset(closure, support))
    registry.counter("parallel.merge.reclosed").inc(len(results))
    if touched_blocks is not None:
        registry.counter("parallel.merge.skipped_untouched").inc(
            skipped_untouched
        )

    results.sort(key=lambda fi: tuple(sorted(fi.items)))
    return results


#: Per-pair-merge statistics, returned alongside the survivors.
PairStats = dict[str, int]


def _row_item_masks(rows: Sequence[tuple[int, ...]]) -> dict[int, int]:
    """Region-local per-item bitmasks, one bit per local row."""
    masks: dict[int, int] = {}
    for tid, row in enumerate(rows):
        bit = 1 << tid
        for item in row:
            masks[item] = masks.get(item, 0) | bit
    return masks


def _side_mask(
    items: tuple[int, ...],
    prev_layer: dict[tuple[int, ...], int],
    masks: dict[int, int],
) -> int:
    """One side's region-local mask of ``items`` via the layered DP."""
    if len(items) == 1:
        return masks.get(items[0], 0)
    parent = items[:-1]
    parent_mask = prev_layer.get(parent)
    if parent_mask is None:
        parent_mask = -1
        for item in parent:
            parent_mask &= masks.get(item, 0)
            if not parent_mask:
                break
        prev_layer[parent] = parent_mask
    return parent_mask & masks.get(items[-1], 0)


def merge_pair(
    left_itemsets: ItemsetPayload,
    right_itemsets: ItemsetPayload,
    left_rows: Sequence[tuple[int, ...]],
    right_rows: Sequence[tuple[int, ...]],
    left_threshold: int,
    right_threshold: int,
    region_threshold: int,
) -> tuple[tuple[tuple[tuple[int, ...], int], ...], PairStats]:
    """Merge two sibling regions' locally frequent itemsets exactly.

    Returns the parent region's frequent itemsets at
    ``region_threshold`` — with exact region supports — plus counters.
    The two input lists must cover disjoint row sets whose union is the
    parent region, each itemset tagged with its exact support on its
    side; absence from a side certifies that side's support is below
    that side's ``*_threshold``.

    Candidates present on both sides are summed (regions are disjoint).
    One-sided candidates first face the pigeonhole bound — the missing
    side can contribute at most ``threshold - 1`` — and only when that
    could still reach ``region_threshold`` is the missing side's exact
    count computed, over *region-local* masks no wider than the side's
    row count. An infrequent parent kills recorded supersets outright.
    """
    candidates: dict[tuple[int, ...], list[int | None]] = {}
    for items, support in left_itemsets:
        candidates[items] = [support, None]
    for items, support in right_itemsets:
        record = candidates.get(items)
        if record is None:
            candidates[items] = [None, support]
        else:
            record[1] = support

    left_masks: dict[int, int] | None = None
    right_masks: dict[int, int] | None = None
    left_prev: dict[tuple[int, ...], int] = {}
    left_cur: dict[tuple[int, ...], int] = {}
    right_prev: dict[tuple[int, ...], int] = {}
    right_cur: dict[tuple[int, ...], int] = {}
    dead_prev: set[tuple[int, ...]] = set()
    dead_cur: set[tuple[int, ...]] = set()
    cur_size = 1
    summed = reintersections = pruned_dead = bound_kills = 0
    survivors: list[tuple[tuple[int, ...], int]] = []
    for items in sorted(candidates, key=lambda t: (len(t), t)):
        size = len(items)
        if size != cur_size:
            left_prev, left_cur = left_cur, {}
            right_prev, right_cur = right_cur, {}
            dead_prev, dead_cur = dead_cur, set()
            cur_size = size
        if size > 1 and items[:-1] in dead_prev:
            dead_cur.add(items)
            pruned_dead += 1
            continue
        left_support, right_support = candidates[items]
        if left_support is None:
            if right_support + left_threshold - 1 < region_threshold:
                dead_cur.add(items)
                bound_kills += 1
                continue
            if left_masks is None:
                left_masks = _row_item_masks(left_rows)
            mask = _side_mask(items, left_prev, left_masks)
            left_cur[items] = mask
            left_support = mask.bit_count()
            reintersections += 1
        elif right_support is None:
            if left_support + right_threshold - 1 < region_threshold:
                dead_cur.add(items)
                bound_kills += 1
                continue
            if right_masks is None:
                right_masks = _row_item_masks(right_rows)
            mask = _side_mask(items, right_prev, right_masks)
            right_cur[items] = mask
            right_support = mask.bit_count()
            reintersections += 1
        else:
            summed += 1
        total = left_support + right_support
        if total >= region_threshold:
            survivors.append((items, total))
        else:
            dead_cur.add(items)
    stats: PairStats = {
        "candidates": len(candidates),
        "summed": summed,
        "reintersections": reintersections,
        "pruned_dead": pruned_dead,
        "bound_kills": bound_kills,
        "survivors": len(survivors),
    }
    return tuple(survivors), stats
