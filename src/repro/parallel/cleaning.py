"""Parallel normalization of one surveillance batch — shard the delta.

The incremental engine's per-batch cost is dominated (once mining is
delta-restricted) by the regex normalization of the batch's verbatim
drug/ADR strings. With ``MarasConfig(n_workers > 1)`` the engine ships
*only the batch* — never the accumulated history — through a persistent
process pool, one pure :func:`normalize_report` call per row.

Determinism: ``executor.map`` preserves submission order and the worker
function is a pure per-row computation, so the output is positionally
identical to the inline path — the differential harness runs the same
schedules at workers 1 and 2 to prove it. Only the vocabulary-free
normalizer runs here (spelling correction counts corrections per
occurrence into shared stats, which cannot cross a process boundary);
the engine never configures vocabularies, matching the one-shot
pipeline's ``ReportCleaner()``.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import Executor

from repro.faers.cleaning import (
    CleaningStats,
    clean_terms,
    normalize_adr_term,
    normalize_drug_name,
)
from repro.faers.schema import CaseReport

NormalizedRow = tuple[frozenset[str], frozenset[str]]


def normalize_report(report: CaseReport) -> NormalizedRow:
    """Normalized (drugs, adrs) of one report, vocabulary-free.

    Must stay byte-identical to what
    :class:`~repro.incremental.cleaning.IncrementalCleaner` computes
    inline with no correctors — same ``clean_terms``, same normalizers.
    """
    throwaway = CleaningStats()  # no correctors → counters stay zero
    return (
        frozenset(
            clean_terms(report.drugs, normalize_drug_name, None, throwaway, "drug")
        ),
        frozenset(
            clean_terms(report.adrs, normalize_adr_term, None, throwaway, "adr")
        ),
    )


def normalize_batch(
    reports: Sequence[CaseReport],
    pool: Executor,
    n_workers: int,
) -> list[NormalizedRow]:
    """Normalize a batch through ``pool``, preserving row order."""
    chunksize = max(1, len(reports) // (max(1, n_workers) * 4))
    return list(pool.map(normalize_report, reports, chunksize=chunksize))
