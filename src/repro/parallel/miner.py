"""Sharded closed-itemset mining across worker processes.

:func:`fpclose_sharded` is a drop-in replacement for
:func:`repro.mining.fpclose.fpclose` that partitions the transaction
database (via a shard plan from :mod:`repro.parallel.sharding`), mines
each shard in a worker process, and merges the results exactly
(:mod:`repro.parallel.merge`). The returned list is byte-identical to
the single-process miner's output after canonical ordering — the
differential harness in ``tests/parallel`` enforces this.

Scheduling is **dependency-driven dataflow**, not level-synchronous
rounds: every merge-tree node is submitted the moment its inputs exist
(futures plus completion callbacks feeding an event queue), so a slow
shard delays only its own ancestors while the rest of the tree keeps
mining. On pools that can run at least two tasks at once the tree runs
all the way to a single top node for full mines, and that node also
performs the root's closure/dedup pass (the exact
:func:`~repro.parallel.merge.merge_shard_itemsets` code over the
worker's cached full database), so the parent merely receives the
already-closed, canonically ordered list. Narrow pools still coalesce
sibling shards into ``max(2, pool_size)`` directly-mined regions —
decomposing further than the pool can run concurrently weakens the
pigeonhole thresholds without buying parallelism (the root cause of
the old 4-worker regression) — and a serial pool keeps the classic
parent-side root merge. Every shape, every completion order, and warm
vs cold pools yield the same bytes; the adversarial executor stub in
``tests/parallel/test_dataflow.py`` drives worst-case orders.

Rows reach workers through :class:`repro.parallel.pool.MiningPool`
residency: cold mines ship rows once, repeated mines of the same
database fingerprint ship only thresholds (plus the touched-item
universe for deltas, which workers apply to their *resident* rows via
a vertical index), and grown databases ship per-leaf append/update
deltas. Passing ``touched_mask`` runs the *delta* contract — only
closed itemsets whose tidset intersects the mask are returned, exactly
like ``fpclose(touched_mask=...)``; rows are projected onto the union
of the touched rows' items while thresholds still come from *full*
shard sizes, so the pigeonhole guarantee is untouched. The delta path
keeps the parent-side root merge: closures over projected rows would
be wrong for the real database, so closure pushdown applies to full
mines only (both paths compute the same mathematical set).
"""

from __future__ import annotations

import os
import queue
import time
from collections.abc import Collection, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ConfigError, MiningError
from repro.mining.bitsets import SupportOracle
from repro.mining.fpclose import touched_universe
from repro.mining.transactions import FrequentItemset, TransactionDatabase
from repro.obs.metrics import get_registry
from repro.parallel.merge import merge_pair, merge_shard_itemsets
from repro.parallel.pool import MISS, MiningPool, database_fingerprint, run_node
from repro.parallel.sharding import ShardPlan, round_robin_shards, validate_plan
from repro.parallel.worker import local_threshold, mine_shard

#: Hard ceiling on a worker request. The process count is capped at the
#: core count anyway; values beyond this are configuration mistakes
#: (they would explode the shard plan and the cleaning pool), reported
#: as a one-line ConfigError instead of an absurd fork storm.
MAX_WORKERS = 512

#: Seconds the dataflow driver waits for *any* task completion before
#: declaring the pool stalled. Generous: a single node is one shard
#: mine or one pair merge, orders of magnitude below this.
_STALL_TIMEOUT = 600.0


def resolve_workers(n_workers: int) -> int:
    """Resolve a worker request (``0`` means one per core).

    The request is NOT clamped to the core count: it determines the
    shard *plan*, which must be a pure function of (dataset, n_workers,
    strategy) so the same invocation means the same shards on every
    machine. Only the process-pool size is capped by the cores, inside
    :func:`fpclose_sharded` — the merged result is independent of how
    shards map onto processes. Requests outside ``[0, MAX_WORKERS]``
    are rejected with a one-line :class:`~repro.errors.ConfigError`.
    """
    if n_workers < 0:
        raise ConfigError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers > MAX_WORKERS:
        raise ConfigError(
            f"n_workers must be <= {MAX_WORKERS}, got {n_workers} "
            "(use 0 for one worker per core)"
        )
    return n_workers if n_workers else (os.cpu_count() or 1)


def fpclose_sharded(
    database: TransactionDatabase,
    min_support: int,
    *,
    max_len: int | None = None,
    n_workers: int,
    plan: Sequence[Sequence[int]] | None = None,
    oracle: SupportOracle | None = None,
    pool: MiningPool | ProcessPoolExecutor | None = None,
    touched_mask: int | None = None,
    updated_tids: Collection[int] | None = None,
) -> list[FrequentItemset]:
    """Mine the global closed frequent itemsets via sharded workers.

    ``plan`` is a covering, disjoint partition of tids (see
    :func:`repro.parallel.sharding.plan_shards`); when omitted, a
    round-robin partition into ``n_workers`` shards is used. A
    caller-owned ``pool`` (a :class:`~repro.parallel.pool.MiningPool`,
    or a raw executor for back-compat) is used as-is and never shut
    down here; only a ``MiningPool`` carries residency across calls,
    so repeated mines of the same-fingerprint database skip shipping
    rows. ``touched_mask`` switches to the delta contract described in
    the module docstring, and ``updated_tids`` (rows whose *content*
    changed since this pool's previous mine; appends are inferred)
    lets a grown database ship per-leaf deltas instead of full rows.
    """
    registry = get_registry()
    n_transactions = len(database)
    if touched_mask is not None and not touched_mask:
        return []
    if plan is None:
        shards: ShardPlan = round_robin_shards(n_transactions, n_workers)
    else:
        shards = validate_plan(plan, n_transactions)
    leaves = [(index, tuple(shard)) for index, shard in enumerate(shards) if shard]
    if not leaves:
        return []

    if n_workers <= 1 or len(leaves) == 1:
        return _mine_serial(
            database,
            min_support,
            max_len,
            oracle,
            touched_mask,
            leaves,
            registry,
        )

    universe: tuple[int, ...] | None = None
    if touched_mask is not None:
        universe = tuple(sorted(touched_universe(database, touched_mask)))
    registry.counter("parallel.shards").inc(len(leaves))

    owned = pool is None
    if pool is None:
        pool_size = max(1, min(n_workers, len(leaves), os.cpu_count() or 1))
        pool = MiningPool(pool_size, width=pool_size)
    else:
        if not isinstance(pool, MiningPool):
            pool = MiningPool.adopt(pool)
        pool_size = max(1, min(n_workers, len(leaves), pool.width))
    try:
        run = _ShardedMine(
            database=database,
            min_support=min_support,
            max_len=max_len,
            oracle=oracle,
            touched_mask=touched_mask,
            universe=universe,
            leaves=leaves,
            pool=pool,
            pool_size=pool_size,
            registry=registry,
        )
        run.build_graph(updated_tids)
        return run.execute()
    finally:
        if owned:
            pool.shutdown()


def _mine_serial(
    database, min_support, max_len, oracle, touched_mask, leaves, registry
):
    """The in-process path (``n_workers <= 1`` or a single shard)."""
    n_transactions = len(database)
    universe: frozenset[int] | None = None
    if touched_mask is not None:
        universe = touched_universe(database, touched_mask)
    transactions = list(database)
    mined = []
    for index, shard in leaves:
        if universe is None:
            rows = tuple(tuple(sorted(transactions[tid])) for tid in shard)
        else:
            rows = tuple(
                projected
                for tid in shard
                if (projected := tuple(sorted(transactions[tid] & universe)))
            )
        if not rows:
            continue
        threshold = local_threshold(min_support, len(shard), n_transactions)
        mined.append((index, threshold, rows))
    if not mined:
        return []
    registry.counter("parallel.shards").inc(len(mined))
    n_items = len(database.catalog)
    with registry.timer("parallel.local_mine"):
        shard_results = [
            mine_shard(index, rows, n_items, threshold, max_len)
            for index, threshold, rows in mined
        ]
    _emit_shards(registry, shard_results)
    region_outputs = [result[4] for result in shard_results]
    return _root_merge(
        region_outputs,
        database,
        min_support,
        max_len,
        oracle,
        touched_mask,
        len(mined),
        registry,
    )


def _root_merge(
    region_outputs,
    database,
    min_support,
    max_len,
    oracle,
    touched_mask,
    n_shards,
    registry,
):
    with registry.timer("parallel.merge"):
        started = time.perf_counter()
        merged = merge_shard_itemsets(
            region_outputs,
            database,
            min_support,
            max_len=max_len,
            oracle=oracle,
            touched_mask=touched_mask,
        )
        registry.emit(
            "parallel.merge",
            n_shards=n_shards,
            n_regions=len(region_outputs),
            n_closed=len(merged),
            seconds=round(time.perf_counter() - started, 6),
        )
    return merged


class _Node:
    """One merge-tree node: a region mine, a pair merge, or the finalize."""

    __slots__ = (
        "nid",
        "kind",
        "groups",
        "index",
        "size",
        "threshold",
        "left",
        "right",
        "parent",
        "pending",
        "region_payload",
        "result",
        "label",
        "attempts",
        "queue_depth",
        "submitted_at",
        "worker_seconds",
    )

    def __init__(self, nid, kind, groups, index, size, threshold, label):
        self.nid = nid
        self.kind = kind
        self.groups = groups
        self.index = index
        self.size = size
        self.threshold = threshold
        self.left = None
        self.right = None
        self.parent = None
        self.pending = 0
        self.region_payload = None
        self.result = None
        self.label = label
        self.attempts = 0
        self.queue_depth = 0
        self.submitted_at = 0.0
        self.worker_seconds = 0.0


class _ShardedMine:
    """One dataflow-scheduled sharded mine over a :class:`MiningPool`."""

    def __init__(
        self,
        *,
        database,
        min_support,
        max_len,
        oracle,
        touched_mask,
        universe,
        leaves,
        pool,
        pool_size,
        registry,
    ):
        self.database = database
        self.min_support = min_support
        self.max_len = max_len
        self.oracle = oracle
        self.touched_mask = touched_mask
        self.universe = universe
        self.leaves = leaves
        self.pool = pool
        self.pool_size = pool_size
        self.registry = registry
        self.n_items = len(database.catalog)
        self.n_transactions = len(database)
        self.fingerprint = database_fingerprint(
            database, [tids for _index, tids in leaves]
        )
        self.plans: dict[int, tuple] = {}
        self.nodes: list[_Node] = []
        self.mine_nodes: list[_Node] = []
        self.roots: list[_Node] = []
        self.final_node: _Node | None = None
        self.events: queue.SimpleQueue = queue.SimpleQueue()
        self.inflight = 0
        self.unfinished = 0
        self.started_at = 0.0
        self._rows_cache: dict[int, tuple] = {}
        self._delta_cache: dict[int, tuple] = {}
        # Snapshot before build_graph's plan_shipments bumps anything:
        # the registry receives this mine's counter deltas only.
        self._counters_before = dict(pool.counters)
        self._tids_by_key = {index: tids for index, tids in leaves}

    # -- graph construction -------------------------------------------

    def build_graph(self, updated_tids) -> None:
        self.plans = self.pool.plan_shipments(
            self.fingerprint, self._tids_by_key, updated_tids
        )
        leaves = self.leaves
        if self.pool_size >= len(leaves) or len(leaves) < 4:
            groups = [[pos] for pos in range(len(leaves))]
        else:
            # Narrow pool: coalesce siblings into directly-mined
            # regions so leaf thresholds are not weakened beyond what
            # the pool can exploit concurrently.
            n_regions = max(2, self.pool_size)
            group_size = -(-len(leaves) // n_regions)
            groups = [
                list(range(start, min(start + group_size, len(leaves))))
                for start in range(0, len(leaves), group_size)
            ]

        def spans(positions):
            first = self.leaves[positions[0]][0]
            last = self.leaves[positions[-1]][0]
            return f"{first}-{last}"

        current: list[_Node] = []
        for ordinal, positions in enumerate(groups):
            size = sum(len(self.leaves[pos][1]) for pos in positions)
            node = _Node(
                nid=len(self.nodes),
                kind="mine",
                groups=(tuple(positions),),
                index=ordinal,
                size=size,
                threshold=local_threshold(
                    self.min_support, size, self.n_transactions
                ),
                label=f"mine:{spans(positions)}",
            )
            self.nodes.append(node)
            self.mine_nodes.append(node)
            current.append(node)

        # Full mines collapse to a single finalize node (closure
        # pushdown); delta mines stop at two regions because the
        # parent-side root merge must close over the *unprojected*
        # database.
        stop_at = 1 if self.universe is None else 2
        if self.pool_size >= 2:
            while len(current) > stop_at:
                merged_level: list[_Node] = []
                for k in range(0, len(current) - 1, 2):
                    left, right = current[k], current[k + 1]
                    positions = tuple(left.groups[-1] + right.groups[-1])
                    size = left.size + right.size
                    kind = (
                        "finalize"
                        if stop_at == 1 and len(current) == 2
                        else "pair"
                    )
                    threshold = (
                        self.min_support
                        if kind == "finalize"
                        else local_threshold(
                            self.min_support, size, self.n_transactions
                        )
                    )
                    left_positions = tuple(
                        pos for group in left.groups for pos in group
                    )
                    right_positions = tuple(
                        pos for group in right.groups for pos in group
                    )
                    node = _Node(
                        nid=len(self.nodes),
                        kind=kind,
                        groups=(left_positions, right_positions),
                        index=len(self.nodes),
                        size=size,
                        threshold=threshold,
                        label=f"{kind}:{spans(left_positions + right_positions)}",
                    )
                    node.left = left
                    node.right = right
                    node.pending = 2
                    left.parent = node
                    right.parent = node
                    self.nodes.append(node)
                    merged_level.append(node)
                if len(current) % 2:
                    merged_level.append(current[-1])
                current = merged_level
        self.roots = current
        if len(self.roots) == 1 and self.roots[0].kind == "finalize":
            self.final_node = self.roots[0]
        self.unfinished = len(self.nodes)

    # -- shipment construction ----------------------------------------

    def _row(self, tid: int) -> tuple[int, ...]:
        return tuple(sorted(self.database[tid]))

    def _rows(self, key: int) -> tuple:
        rows = self._rows_cache.get(key)
        if rows is None:
            rows = tuple(self._row(tid) for tid in self._tids_by_key[key])
            self._rows_cache[key] = rows
        return rows

    def _shipment(self, key: int, force: bool) -> tuple:
        if not force:
            plan = self.plans.get(key, ("full",))
            if plan[0] == "delta":
                # Keep shipping the (small) delta even after this
                # leaf's first node completed: another worker may hold
                # the previous rows and can patch them forward, where a
                # bare ("ref",) would force a full-row miss round-trip.
                shipment = self._delta_cache.get(key)
                if shipment is None:
                    _kind, base_fp, n_prev, positions = plan
                    tids = self._tids_by_key[key]
                    appended = tuple(self._row(tid) for tid in tids[n_prev:])
                    updates = {pos: self._row(tids[pos]) for pos in positions}
                    shipment = ("delta", base_fp, appended, updates)
                    self._delta_cache[key] = shipment
                return shipment
            state = self.pool.leaf_state(key)
            if state is not None and state[0] == self.fingerprint:
                return ("ref",)
            if plan[0] == "ref":
                return ("ref",)
        return ("rows", self._rows(key))

    def _build_task(self, node: _Node, force: set[int]) -> dict:
        groups = []
        for positions in node.groups:
            entries = []
            for pos in positions:
                key = self.leaves[pos][0]
                entries.append((key, self._shipment(key, key in force)))
            groups.append(tuple(entries))
        task = {
            "kind": node.kind,
            "fp": self.fingerprint,
            "label": node.label,
            "groups": tuple(groups),
            "n_items": self.n_items,
            "max_len": self.max_len,
            "universe": self.universe,
            "threshold": node.threshold,
            "index": node.index,
        }
        if node.kind != "mine":
            task["left_payload"] = node.left.region_payload
            task["right_payload"] = node.right.region_payload
            task["left_threshold"] = node.left.threshold
            task["right_threshold"] = node.right.threshold
        return task

    # -- driver --------------------------------------------------------

    def _submit(self, node: _Node, force: set[int]) -> None:
        node.attempts += 1
        node.queue_depth = self.inflight
        node.submitted_at = time.perf_counter()
        task = self._build_task(node, force)
        future = self.pool.submit(run_node, task)
        self.inflight += 1
        future.add_done_callback(
            lambda f, nid=node.nid: self.events.put((nid, f))
        )

    def execute(self) -> list[FrequentItemset]:
        registry = self.registry
        counters_before = self._counters_before
        self.started_at = time.perf_counter()
        with registry.timer("parallel.dataflow"):
            for node in self.mine_nodes:
                self._submit(node, set())
            while self.unfinished:
                try:
                    nid, future = self.pool.wait_event(
                        self.events, timeout=_STALL_TIMEOUT
                    )
                except queue.Empty:
                    raise MiningError(
                        "mining pool stalled: no task completed within "
                        f"{_STALL_TIMEOUT:.0f}s"
                    ) from None
                self.inflight -= 1
                node = self.nodes[nid]
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    # A dead worker broke the whole pool; every
                    # in-flight future fails with this. Rebuild once
                    # (generation-guarded) and resubmit each failed
                    # node with rows attached — tasks are pure.
                    self.pool.recover(
                        getattr(future, "generation", self.pool.generation)
                    )
                    self._submit(node, self._node_keys(node))
                    continue
                if outcome[0] == MISS:
                    # The worker that picked this up does not hold a
                    # referenced leaf (multi-worker pools route tasks
                    # arbitrarily); reship rows for exactly those keys.
                    self.pool.note_miss(len(outcome[1]))
                    self._submit(node, set(outcome[1]))
                    continue
                self._complete(node, outcome[1])
        for name, value in self.pool.counters.items():
            delta = value - counters_before.get(name, 0)
            if delta:
                registry.counter(f"parallel.pool.{name}").inc(delta)
        return self._assemble()

    def _node_keys(self, node: _Node) -> set[int]:
        return {
            self.leaves[pos][0] for group in node.groups for pos in group
        }

    def _complete(self, node: _Node, payload) -> None:
        registry = self.registry
        for key in self._node_keys(node):
            self.pool.mark_resident(
                key, self.fingerprint, self._tids_by_key[key]
            )
        if node.kind == "mine":
            _index, size, threshold, seconds, itemsets = payload
            node.region_payload = itemsets
            node.worker_seconds = seconds
            n_out = len(itemsets)
            registry.counter("parallel.local_itemsets").inc(n_out)
            if len(node.groups[0]) == 1:
                registry.emit(
                    "parallel.shard",
                    shard=self.leaves[node.groups[0][0]][0],
                    n_transactions=size,
                    local_threshold=threshold,
                    n_local_itemsets=n_out,
                    seconds=round(seconds, 6),
                )
            else:
                registry.emit(
                    "parallel.region",
                    region=node.index,
                    shards=[self.leaves[pos][0] for pos in node.groups[0]],
                    n_transactions=size,
                    region_threshold=threshold,
                    n_survivors=n_out,
                    seconds=round(seconds, 6),
                )
        elif node.kind == "pair":
            survivors, stats, seconds = payload
            node.region_payload = survivors
            node.worker_seconds = seconds
            n_out = len(survivors)
            _emit_region(registry, node.index, stats, n_out, seconds=seconds)
        else:
            closed, warm_entries, stats, merge_counters, seconds = payload
            node.result = (closed, warm_entries)
            node.worker_seconds = seconds
            n_out = len(closed)
            _emit_region(registry, node.index, stats, stats["survivors"])
            for name, value in merge_counters.items():
                registry.counter(name).inc(value)
            registry.emit(
                "parallel.merge",
                n_shards=len(self.leaves),
                n_regions=2,
                n_closed=n_out,
                seconds=round(seconds, 6),
            )
        now = time.perf_counter()
        registry.emit(
            "parallel.node",
            node=node.label,
            kind=node.kind,
            queue_depth=node.queue_depth,
            attempts=node.attempts,
            t_submit=round(node.submitted_at - self.started_at, 6),
            t_done=round(now - self.started_at, 6),
            wait_seconds=round(now - node.submitted_at, 6),
            seconds=round(node.worker_seconds, 6),
            n_out=n_out,
        )
        self.unfinished -= 1
        parent = node.parent
        if parent is not None:
            parent.pending -= 1
            if parent.pending == 0:
                self._submit(parent, set())

    def _assemble(self) -> list[FrequentItemset]:
        if self.final_node is not None:
            closed, warm_entries = self.final_node.result
            if self.oracle is not None:
                for items, support in warm_entries:
                    self.oracle.warm(frozenset(items), support)
            return closed
        region_outputs = [node.region_payload for node in self.roots]
        return _root_merge(
            region_outputs,
            self.database,
            self.min_support,
            self.max_len,
            self.oracle,
            self.touched_mask,
            len(self.leaves),
            self.registry,
        )


def _emit_shards(registry, shard_results) -> None:
    for index, shard_size, threshold, seconds, itemsets in shard_results:
        registry.counter("parallel.local_itemsets").inc(len(itemsets))
        registry.emit(
            "parallel.shard",
            shard=index,
            n_transactions=shard_size,
            local_threshold=threshold,
            n_local_itemsets=len(itemsets),
            seconds=round(seconds, 6),
        )


def _emit_region(
    registry, region_index: int, stats, n_survivors: int, *, seconds=None
) -> None:
    if stats is not None:
        registry.counter("parallel.pair.candidates").inc(stats["candidates"])
        registry.counter("parallel.pair.summed").inc(stats["summed"])
        registry.counter("parallel.pair.reintersections").inc(
            stats["reintersections"]
        )
        registry.counter("parallel.pair.pruned_dead").inc(stats["pruned_dead"])
        registry.counter("parallel.pair.bound_kills").inc(stats["bound_kills"])
    fields = {"region": region_index, "n_survivors": n_survivors}
    if stats is not None:
        fields.update(stats)
    if seconds is not None:
        fields["seconds"] = round(seconds, 6)
    registry.emit("parallel.region", **fields)


def _run_shard(task):
    return mine_shard(*task)


def _run_pair(task):
    return merge_pair(*task)


def _run_task(task):
    """Back-compat alias for the leaf task runner."""
    return mine_shard(*task)
