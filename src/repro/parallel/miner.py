"""Sharded closed-itemset mining across worker processes.

:func:`fpclose_sharded` is a drop-in replacement for
:func:`repro.mining.fpclose.fpclose` that partitions the transaction
database (via a shard plan from :mod:`repro.parallel.sharding`), mines
each shard in a worker process, and merges the results exactly
(:mod:`repro.parallel.merge`). The returned list is byte-identical to
the single-process miner's output after canonical ordering — the
differential harness in ``tests/parallel`` enforces this.

The merge is a tree, not a single parent-side pass: when the pool can
run every leaf concurrently, sibling shards' outputs are pair-merged at
pigeonhole-scaled *region* thresholds inside the workers
(:func:`repro.parallel.merge.merge_pair`, dispatched as its own
level-synchronous round), and only region survivors — with exact
region supports — reach the parent's root merge. On narrower pools the
tree is *coalesced* instead: decomposing further than the pool can run
concurrently weakens the leaf pigeonhole thresholds (more locally
frequent noise) without buying parallelism — the root cause of the old
4-worker regression — so sibling shards are grouped into
``max(2, pool_size)`` regions, each mined directly at its region
threshold (a shallower instance of the same tree, so the completeness
chain argument is untouched). Either shape, and any scheduling jitter
inside it, yields the same bytes: results are collected with
``executor.map`` (submission order), and the merges are
order-insensitive.

Passing ``touched_mask`` runs the *delta* contract instead — only
closed itemsets whose tidset intersects the mask are returned, exactly
like ``fpclose(touched_mask=...)``. Shard rows are projected onto the
union of the touched rows' items (every delta-affected closed itemset
is contained in some touched row, hence in that union), which leaves
all relevant supports intact while shrinking the mined databases to
the delta's neighbourhood; thresholds still come from *full* shard
sizes, so the pigeonhole guarantee is untouched.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence

from repro.errors import ConfigError
from repro.mining.bitsets import SupportOracle
from repro.mining.transactions import FrequentItemset, TransactionDatabase
from repro.obs.metrics import get_registry
from repro.parallel.merge import merge_pair, merge_shard_itemsets
from repro.parallel.sharding import ShardPlan, round_robin_shards, validate_plan
from repro.parallel.worker import local_threshold, mine_shard


def resolve_workers(n_workers: int) -> int:
    """Resolve a worker request (``0`` means one per core).

    The request is NOT clamped to the core count: it determines the
    shard *plan*, which must be a pure function of (dataset, n_workers,
    strategy) so the same invocation means the same shards on every
    machine. Only the process-pool size is capped by the cores, inside
    :func:`fpclose_sharded` — the merged result is independent of how
    shards map onto processes.
    """
    if n_workers < 0:
        raise ConfigError(f"n_workers must be >= 0, got {n_workers}")
    return n_workers if n_workers else (os.cpu_count() or 1)


def fpclose_sharded(
    database: TransactionDatabase,
    min_support: int,
    *,
    max_len: int | None = None,
    n_workers: int,
    plan: Sequence[Sequence[int]] | None = None,
    oracle: SupportOracle | None = None,
    pool: ProcessPoolExecutor | None = None,
    touched_mask: int | None = None,
) -> list[FrequentItemset]:
    """Mine the global closed frequent itemsets via sharded workers.

    ``plan`` is a covering, disjoint partition of tids (see
    :func:`repro.parallel.sharding.plan_shards`); when omitted, a
    round-robin partition into ``n_workers`` shards is used. Shards are
    mined at pigeonhole-scaled local thresholds, pair-merged at region
    thresholds inside the workers, and root-merged over the full
    chunked bitmask table. A caller-owned ``pool`` (e.g. the
    incremental engine's long-lived executor) is used as-is and never
    shut down here; ``touched_mask`` switches to the delta contract
    described in the module docstring.
    """
    registry = get_registry()
    n_transactions = len(database)
    if touched_mask is not None and not touched_mask:
        return []
    if plan is None:
        shards: ShardPlan = round_robin_shards(n_transactions, n_workers)
    else:
        shards = validate_plan(plan, n_transactions)
    transactions = list(database)

    universe: frozenset[int] | None = None
    if touched_mask is not None:
        touched_items: set[int] = set()
        remaining = touched_mask
        while remaining:
            low = remaining & -remaining
            touched_items |= transactions[low.bit_length() - 1]
            remaining ^= low
        universe = frozenset(touched_items)

    # (original shard index, full shard size, threshold, mined rows).
    # Shards with no (projected) rows contribute zero support to every
    # candidate and are dropped; under projection, thresholds still come
    # from the *full* shard size so the pigeonhole argument is over the
    # true partition.
    leaves = []
    for index, shard in enumerate(shards):
        if universe is None:
            rows = tuple(
                tuple(sorted(transactions[tid])) for tid in shard
            )
        else:
            rows = tuple(
                projected
                for tid in shard
                if (
                    projected := tuple(
                        sorted(transactions[tid] & universe)
                    )
                )
            )
        if not rows:
            continue
        threshold = local_threshold(min_support, len(shard), n_transactions)
        leaves.append((index, len(shard), threshold, rows))
    if not leaves:
        return []
    registry.counter("parallel.shards").inc(len(leaves))
    n_items = len(database.catalog)

    pool_size = max(1, min(n_workers, len(leaves), os.cpu_count() or 1))
    if n_workers <= 1 or len(leaves) == 1:
        with registry.timer("parallel.local_mine"):
            shard_results = [
                mine_shard(index, rows, n_items, threshold, max_len)
                for index, _size, threshold, rows in leaves
            ]
        region_outputs = [result[4] for result in shard_results]
        _emit_shards(registry, shard_results)
    elif len(leaves) < 4 or pool_size >= len(leaves):
        # Every leaf can run concurrently: mine leaves as their own
        # round, then (for 4+ shards) pair-merge in a second round.
        tasks = [
            (index, rows, n_items, threshold, max_len)
            for index, _size, threshold, rows in leaves
        ]
        with registry.timer("parallel.local_mine"):
            shard_results = _map_tasks(_run_shard, tasks, pool, pool_size)
        _emit_shards(registry, shard_results)
        if len(leaves) < 4:
            region_outputs = [result[4] for result in shard_results]
        else:
            pair_tasks = []
            passthrough = []
            for k in range(0, len(leaves) - 1, 2):
                left, right = leaves[k], leaves[k + 1]
                region_threshold = local_threshold(
                    min_support, left[1] + right[1], n_transactions
                )
                pair_tasks.append((
                    shard_results[k][4],
                    shard_results[k + 1][4],
                    left[3],
                    right[3],
                    left[2],
                    right[2],
                    region_threshold,
                ))
            if len(leaves) % 2:
                passthrough.append(shard_results[-1][4])
            with registry.timer("parallel.tree_merge"):
                pair_results = _map_tasks(
                    _run_pair, pair_tasks, pool, pool_size
                )
            region_outputs = []
            for pair_index, (survivors, stats) in enumerate(pair_results):
                region_outputs.append(survivors)
                _emit_region(registry, pair_index, stats, len(survivors))
            region_outputs.extend(passthrough)
    else:
        # Narrow pool: the tree would decompose further than the pool
        # can run concurrently, and every extra leaf level weakens the
        # pigeonhole thresholds (more locally frequent noise) without
        # buying any parallelism — the root cause of the 4-worker
        # regression. Coalesce sibling shards into ``max(2, pool_size)``
        # regions and mine each region *directly* at its region
        # threshold: a shallower instance of the same tree, so the
        # completeness chain argument is untouched.
        n_regions = max(2, pool_size)
        group_size = -(-len(leaves) // n_regions)
        region_tasks = []
        region_shards = []
        for start in range(0, len(leaves), group_size):
            group = leaves[start:start + group_size]
            region_rows = tuple(
                row for _i, _s, _t, rows in group for row in rows
            )
            region_threshold = local_threshold(
                min_support,
                sum(size for _i, size, _t, _r in group),
                n_transactions,
            )
            region_shards.append([index for index, _s, _t, _r in group])
            region_tasks.append((
                len(region_tasks),
                region_rows,
                n_items,
                region_threshold,
                max_len,
            ))
        with registry.timer("parallel.local_mine"):
            region_results = _map_tasks(
                _run_shard, region_tasks, pool, pool_size
            )
        region_outputs = []
        for region_index, size, threshold, seconds, payload in region_results:
            region_outputs.append(payload)
            registry.counter("parallel.local_itemsets").inc(len(payload))
            registry.emit(
                "parallel.region",
                region=region_index,
                shards=region_shards[region_index],
                n_transactions=size,
                region_threshold=threshold,
                n_survivors=len(payload),
                seconds=round(seconds, 6),
            )

    with registry.timer("parallel.merge"):
        started = time.perf_counter()
        merged = merge_shard_itemsets(
            region_outputs,
            database,
            min_support,
            max_len=max_len,
            oracle=oracle,
            touched_mask=touched_mask,
        )
        registry.emit(
            "parallel.merge",
            n_shards=len(leaves),
            n_regions=len(region_outputs),
            n_closed=len(merged),
            seconds=round(time.perf_counter() - started, 6),
        )
    return merged


def _map_tasks(fn, tasks, pool: ProcessPoolExecutor | None, pool_size: int):
    """Run tasks through a caller-owned or ephemeral pool, in order."""
    if pool is not None:
        return list(pool.map(fn, tasks))
    with ProcessPoolExecutor(max_workers=pool_size) as ephemeral:
        return list(ephemeral.map(fn, tasks))


def _emit_shards(registry, shard_results) -> None:
    for index, shard_size, threshold, seconds, itemsets in shard_results:
        registry.counter("parallel.local_itemsets").inc(len(itemsets))
        registry.emit(
            "parallel.shard",
            shard=index,
            n_transactions=shard_size,
            local_threshold=threshold,
            n_local_itemsets=len(itemsets),
            seconds=round(seconds, 6),
        )


def _emit_region(
    registry, region_index: int, stats, n_survivors: int, *, seconds=None
) -> None:
    if stats is not None:
        registry.counter("parallel.pair.candidates").inc(stats["candidates"])
        registry.counter("parallel.pair.summed").inc(stats["summed"])
        registry.counter("parallel.pair.reintersections").inc(
            stats["reintersections"]
        )
        registry.counter("parallel.pair.pruned_dead").inc(stats["pruned_dead"])
        registry.counter("parallel.pair.bound_kills").inc(stats["bound_kills"])
    fields = {"region": region_index, "n_survivors": n_survivors}
    if stats is not None:
        fields.update(stats)
    if seconds is not None:
        fields["seconds"] = round(seconds, 6)
    registry.emit("parallel.region", **fields)


def _run_shard(task):
    return mine_shard(*task)


def _run_pair(task):
    return merge_pair(*task)


def _run_task(task):
    """Back-compat alias for the leaf task runner."""
    return mine_shard(*task)
