"""Sharded closed-itemset mining across worker processes.

:func:`fpclose_sharded` is a drop-in replacement for
:func:`repro.mining.fpclose.fpclose` that partitions the transaction
database (via a shard plan from :mod:`repro.parallel.sharding`), mines
each shard in a worker process, and merges the results exactly
(:mod:`repro.parallel.merge`). The returned list is byte-identical to
the single-process miner's output after canonical ordering — the
differential harness in ``tests/parallel`` enforces this.

Worker results are collected with ``executor.map``, which preserves
submission order, and the merge itself is order-insensitive (it
operates on the candidate *union*), so scheduling jitter between
workers can never perturb the output.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence

from repro.errors import ConfigError
from repro.mining.bitsets import SupportOracle
from repro.mining.transactions import FrequentItemset, TransactionDatabase
from repro.obs.metrics import get_registry
from repro.parallel.merge import merge_shard_itemsets
from repro.parallel.sharding import ShardPlan, round_robin_shards, validate_plan
from repro.parallel.worker import local_threshold, mine_shard


def resolve_workers(n_workers: int) -> int:
    """Resolve a worker request (``0`` means one per core).

    The request is NOT clamped to the core count: it determines the
    shard *plan*, which must be a pure function of (dataset, n_workers,
    strategy) so the same invocation means the same shards on every
    machine. Only the process-pool size is capped by the cores, inside
    :func:`fpclose_sharded` — the merged result is independent of how
    shards map onto processes.
    """
    if n_workers < 0:
        raise ConfigError(f"n_workers must be >= 0, got {n_workers}")
    return n_workers if n_workers else (os.cpu_count() or 1)


def fpclose_sharded(
    database: TransactionDatabase,
    min_support: int,
    *,
    max_len: int | None = None,
    n_workers: int,
    plan: Sequence[Sequence[int]] | None = None,
    oracle: SupportOracle | None = None,
) -> list[FrequentItemset]:
    """Mine the global closed frequent itemsets via sharded workers.

    ``plan`` is a covering, disjoint partition of tids (see
    :func:`repro.parallel.sharding.plan_shards`); when omitted, a
    round-robin partition into ``n_workers`` shards is used. Shards are
    mined in ``n_workers`` processes at pigeonhole-scaled local
    thresholds, then merged over the full bitmask table.
    """
    registry = get_registry()
    n_transactions = len(database)
    if plan is None:
        shards: ShardPlan = round_robin_shards(n_transactions, n_workers)
    else:
        shards = validate_plan(plan, n_transactions)
    if not shards:
        return []
    registry.counter("parallel.shards").inc(len(shards))

    transactions = list(database)
    n_items = len(database.catalog)
    tasks = []
    for index, shard in enumerate(shards):
        rows = tuple(tuple(sorted(transactions[tid])) for tid in shard)
        threshold = local_threshold(min_support, len(shard), n_transactions)
        tasks.append((index, rows, n_items, threshold, max_len))

    # Pool size never exceeds the cores: extra processes on a loaded or
    # small machine only add contention, and the merged result is
    # independent of how shards map onto processes. Any multi-worker
    # request still goes through the pool (even a 1-process pool on a
    # 1-core box), so the pickling boundary is always exercised.
    pool_size = max(1, min(n_workers, len(shards), os.cpu_count() or 1))
    with registry.timer("parallel.local_mine"):
        if len(shards) == 1 or n_workers <= 1:
            shard_results = [mine_shard(*task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                shard_results = list(pool.map(_run_task, tasks))

    shard_outputs = []
    for index, shard_size, threshold, seconds, itemsets in shard_results:
        shard_outputs.append(itemsets)
        registry.counter("parallel.local_itemsets").inc(len(itemsets))
        registry.emit(
            "parallel.shard",
            shard=index,
            n_transactions=shard_size,
            local_threshold=threshold,
            n_local_itemsets=len(itemsets),
            seconds=round(seconds, 6),
        )

    with registry.timer("parallel.merge"):
        started = time.perf_counter()
        merged = merge_shard_itemsets(
            shard_outputs,
            database,
            min_support,
            max_len=max_len,
            oracle=oracle,
        )
        registry.emit(
            "parallel.merge",
            n_shards=len(shards),
            n_closed=len(merged),
            seconds=round(time.perf_counter() - started, 6),
        )
    return merged


def _run_task(task):
    return mine_shard(*task)
