"""Deterministic partitioning of a report dataset into mining shards.

The sharded miner (:mod:`repro.parallel.miner`) splits the *data*, not
the search space: each worker process mines one subset of the encoded
transactions and the per-shard results merge tree-wise (pair nodes
inside workers, or coalesced regions on narrow pools) back into the
exact global answer. The partition therefore only has to be

- **covering and disjoint** — every transaction lands in exactly one
  shard (the merge proof in :mod:`repro.parallel.merge` relies on it);
- **deterministic across processes and runs** — shard membership must
  not depend on ``PYTHONHASHSEED``, dict order, or input shuffling,
  because the differential harness asserts byte-identical results.

Two strategies, selectable via ``MarasConfig(shard_strategy=...)``:

``"hash"``
    Shard by a stable content hash of the report's case id (first eight
    bytes of its SHA-256, mod ``n_shards``). Balances load for any
    number of workers and keeps every version of a case in the same
    shard.
``"quarter"``
    One shard per distinct quarter label, in sorted quarter order — the
    natural unit for FAERS-style multi-quarter datasets, where each
    worker mines one quarterly extract.

For bare :class:`~repro.mining.transactions.TransactionDatabase` inputs
with no report linkage, :func:`round_robin_shards` partitions by
``tid % n_shards``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from repro.errors import ConfigError
from repro.faers.dataset import ReportDataset

HASH_STRATEGY = "hash"
QUARTER_STRATEGY = "quarter"
SHARD_STRATEGIES = (HASH_STRATEGY, QUARTER_STRATEGY)

#: A shard plan: per shard, the ascending tids it owns.
ShardPlan = tuple[tuple[int, ...], ...]


def shard_of_case(case_id: str, n_shards: int) -> int:
    """The stable shard index of one case id.

    Uses the first eight bytes of SHA-256 — stable across processes,
    Python versions, and ``PYTHONHASHSEED`` — unlike builtin ``hash``,
    which is salted per interpreter.
    """
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.sha256(case_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def plan_shards(
    dataset: ReportDataset, n_shards: int, strategy: str = HASH_STRATEGY
) -> ShardPlan:
    """Partition a dataset's tids into mining shards.

    Transaction id ``t`` of the encoded database is the index of the
    ``t``-th report (``ReportDataset.encode`` preserves order), so the
    plan computed here applies directly to the encoded transactions.
    Empty shards are dropped; the remaining shards cover every tid
    exactly once.
    """
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    if strategy == HASH_STRATEGY:
        buckets: list[list[int]] = [[] for _ in range(n_shards)]
        for tid, report in enumerate(dataset):
            buckets[shard_of_case(report.case_id, n_shards)].append(tid)
    elif strategy == QUARTER_STRATEGY:
        by_quarter: dict[str, list[int]] = {}
        for tid, report in enumerate(dataset):
            by_quarter.setdefault(report.quarter, []).append(tid)
        buckets = [by_quarter[quarter] for quarter in sorted(by_quarter)]
    else:
        raise ConfigError(
            f"unknown shard strategy {strategy!r}; choose from {SHARD_STRATEGIES}"
        )
    return tuple(tuple(bucket) for bucket in buckets if bucket)


def round_robin_shards(n_transactions: int, n_shards: int) -> ShardPlan:
    """``tid % n_shards`` partition for inputs without report linkage."""
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    buckets: list[list[int]] = [[] for _ in range(n_shards)]
    for tid in range(n_transactions):
        buckets[tid % n_shards].append(tid)
    return tuple(tuple(bucket) for bucket in buckets if bucket)


def plan_digest(plan: Sequence[Sequence[int]]) -> str:
    """Stable content digest of a shard plan's tid partition.

    Part of the :func:`repro.parallel.pool.database_fingerprint` key
    under which workers pin resident shard rows: the same database
    partitioned differently must not alias in the residency cache.
    """
    digest = hashlib.blake2b(digest_size=8)
    for shard in plan:
        digest.update(b"|")
        digest.update(",".join(map(str, shard)).encode("ascii"))
    return digest.hexdigest()


def validate_plan(plan: Sequence[Sequence[int]], n_transactions: int) -> ShardPlan:
    """Check a caller-supplied plan is a covering, disjoint partition."""
    seen: set[int] = set()
    total = 0
    for shard in plan:
        for tid in shard:
            if not 0 <= tid < n_transactions:
                raise ConfigError(
                    f"shard plan references tid {tid} outside database of "
                    f"size {n_transactions}"
                )
        total += len(shard)
        seen.update(shard)
    if len(seen) != total:
        raise ConfigError("shard plan assigns at least one tid to two shards")
    if len(seen) != n_transactions:
        raise ConfigError(
            f"shard plan covers {len(seen)} of {n_transactions} transactions; "
            "the merge is only exact over a full partition"
        )
    return tuple(tuple(shard) for shard in plan if len(shard))
