"""Streaming surveillance: batches, change feeds, and yearly trends.

Two workflows beyond a single static quarter:

1. **within-quarter stream** — feed one quarter to the
   :class:`SurveillanceMonitor` in weekly-sized batches and print the
   per-batch change feed (new clusters, risers, rank stability);
2. **cross-quarter trends** — run all four 2014 quarters and print the
   emerging-signal watchlist plus trend classes.

    python examples/surveillance_stream.py
"""

from __future__ import annotations

from repro import Maras, MarasConfig
from repro.core.incremental import SurveillanceMonitor
from repro.core.trends import TrendKind, build_trends, emerging_signals
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config

N_BATCHES = 5


def stream_one_quarter() -> None:
    print("=== within-quarter stream (2014Q1, 5 batches) ===")
    reports = SyntheticFAERSGenerator(quarter_config("2014Q1", scale=0.02)).generate()
    size = len(reports) // N_BATCHES
    monitor = SurveillanceMonitor(
        MarasConfig(min_support=5, clean=False), riser_threshold=5
    )
    print(f"{'batch':>6s} {'reports':>9s} {'new':>5s} {'risers':>7s} {'stability':>10s}")
    for index in range(N_BATCHES):
        start = index * size
        end = (index + 1) * size if index < N_BATCHES - 1 else len(reports)
        delta = monitor.ingest(reports[start:end])
        stability = (
            "" if delta.rank_correlation is None else f"{delta.rank_correlation:.2f}"
        )
        print(
            f"{delta.batch_index:>6d} {delta.n_reports_total:>9,d} "
            f"{len(delta.newly_surfaced):>5d} {len(delta.risers):>7d} "
            f"{stability:>10s}"
        )
    print("\ncurrent watchlist:")
    for (drugs, adrs), rank in monitor.watchlist(top_k=5):
        print(f"  #{rank}  {' + '.join(drugs)} => {', '.join(adrs)}")


def yearly_trends() -> None:
    print("\n=== cross-quarter trends (2014Q1-Q4) ===")
    maras = Maras(MarasConfig(min_support=5, clean=False))
    # Simulate a mid-year market introduction: the ibuprofen+metamizole
    # interaction is absent from the Q1/Q2 stream and appears in Q3/Q4 —
    # the emergence the trend classifier is built to flag.
    from dataclasses import replace

    results = {}
    for index, quarter in enumerate(("2014Q1", "2014Q2", "2014Q3", "2014Q4")):
        config = quarter_config(quarter, scale=0.02)
        if index < 2:
            config = replace(
                config,
                interactions=tuple(
                    spec
                    for spec in config.interactions
                    if spec.drugs != ("IBUPROFEN", "METAMIZOLE")
                ),
            )
        reports = SyntheticFAERSGenerator(config).generate()
        results[quarter] = maras.run(ReportDataset(reports))
    trends = build_trends(results)
    by_kind = {}
    for trend in trends:
        by_kind[trend.kind] = by_kind.get(trend.kind, 0) + 1
    print("trend classes:", {kind.value: n for kind, n in sorted(
        by_kind.items(), key=lambda kv: kv[0].value)})

    watchlist = emerging_signals(results)[:5]
    print(f"\ntop emerging signals ({len(watchlist)} shown):")
    for trend in watchlist:
        print(f"  {trend.describe()}")

    persistent = [
        trend
        for trend in trends
        if trend.quarters_present == 4 and trend.kind is TrendKind.STABLE
    ]
    print(f"\n{len(persistent)} clusters persist across all four quarters")

    # Trajectory chart of the watchlist + the most persistent clusters.
    from pathlib import Path

    from repro.viz import render_trend_chart

    interesting = watchlist + persistent[: max(0, 5 - len(watchlist))]
    if interesting:
        out = Path(__file__).parent / "out" / "trend_chart.svg"
        render_trend_chart(interesting).save(out)
        print(f"wrote {out}")


def main() -> None:
    stream_one_quarter()
    yearly_trends()


if __name__ == "__main__":
    main()
