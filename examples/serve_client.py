"""Query the ``mediar serve`` HTTP API like an external client would.

Boots a server in-process on an ephemeral port (no CLI, no fixed port,
so the script is self-contained and CI-safe), then walks the API with
plain ``urllib`` the way any non-Python consumer would:

1. discover the loaded runs (``/v1/runs``),
2. page through the top associations by exclusiveness,
3. drill into one cluster's full context by stable id,
4. look at a drug profile and a prefix search,
5. read the cache/endpoint accounting off ``/v1/metrics``.

Point ``BASE`` at a real ``mediar serve --port …`` process to run the
same walkthrough against a long-lived server.
"""

from __future__ import annotations

import json
from urllib.parse import quote
from urllib.request import urlopen

from repro.core import Maras, MarasConfig
from repro.faers import SyntheticFAERSGenerator, quarter_config
from repro.obs import MetricsRegistry
from repro.serve import QueryEngine, ResultStore, running_server


def get(base: str, path: str) -> dict:
    with urlopen(base + path) as response:
        return json.loads(response.read())


def main() -> int:
    print("mining a small synthetic quarter...")
    reports = SyntheticFAERSGenerator(quarter_config("2014Q1", scale=0.01)).generate()
    result = Maras(MarasConfig(min_support=4, clean=False)).run(reports)

    store = ResultStore()
    store.add_result("2014Q1", result)
    engine = QueryEngine(store, registry=MetricsRegistry())

    with running_server(engine) as server:
        base = server.url
        print(f"serving on {base}\n")

        runs = get(base, "/v1/runs")["runs"]
        for run in runs:
            print(
                f"run {run['name']}: {run['n_clusters']} clusters, "
                f"sort keys {', '.join(run['sort_keys'])}"
            )

        page = get(base, "/v1/associations?limit=5&sort=exclusiveness_confidence")
        print(f"\ntop {page['count']} of {page['total']} associations:")
        for item in page["items"]:
            drugs = " + ".join(item["drugs"])
            adrs = ", ".join(item["adrs"])
            score = item["scores"]["exclusiveness_confidence"]
            print(f"  {item['id']}  {drugs} => {adrs}  (score {score:.3f})")

        cluster_id = page["items"][0]["cluster_id"]
        cluster = get(base, f"/v1/clusters/{cluster_id}")
        print(f"\ncluster {cluster_id}: {len(cluster['context'])} contextual rules")
        for rule in cluster["context"][:3]:
            print(
                f"  {' + '.join(rule['drugs'])}  "
                f"conf={rule['confidence']:.3f} lift={rule['lift']:.2f}"
            )

        drug = cluster["drugs"][0]
        profile = get(base, f"/v1/drugs/{quote(drug)}")
        partners = ", ".join(p["drug"] for p in profile["partners"][:3])
        print(f"\n{drug}: {profile['n_clusters']} clusters; top partners: {partners}")

        matches = get(base, f"/v1/search?q={quote(drug[:4].lower())}")
        print(f"search {drug[:4].lower()!r}: {matches['total']} vocabulary matches")

        get(base, "/v1/associations?limit=5&sort=exclusiveness_confidence")  # warm hit
        metrics = get(base, "/v1/metrics")
        cache = metrics["cache"]
        print(
            f"\ncache: {cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {cache['hit_rate']:.0%})"
        )
    return 0


if __name__ == "__main__":
    main()
