"""Render the paper's visual artifacts (Figs 4.1, 4.2, 4.3, 5.3) as SVG.

Writes to ``examples/out/``:

- ``glyph_top1.svg`` — one contextual glyph (Fig 4.1);
- ``glyph_zoom.svg`` — the labelled zoom view (Fig 4.3);
- ``panorama.svg`` — the ranked glyph panoramagram (Fig 4.2);
- ``barchart.svg`` — the bar-chart alternative (Fig 5.3);
- one glyph/bar-chart pair per drug count, the user-study stimuli.

    python examples/glyph_gallery.py
"""

from __future__ import annotations

from pathlib import Path

from repro import Maras, MarasConfig, RankingMethod
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.viz import (
    render_barchart,
    render_glyph,
    render_panorama,
    render_zoom_view,
)

OUT = Path(__file__).parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    generator = SyntheticFAERSGenerator(quarter_config("2014Q1", scale=0.04))
    result = Maras(MarasConfig(min_support=5, clean=False)).run(
        ReportDataset(generator.generate())
    )
    catalog = result.catalog
    ranked = result.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=25)

    top = ranked[0].cluster
    paths = [
        render_glyph(top).save(OUT / "glyph_top1.svg"),
        render_zoom_view(top, catalog).save(OUT / "glyph_zoom.svg"),
        render_panorama(ranked, catalog, columns=5).save(OUT / "panorama.svg"),
        render_barchart(top, catalog).save(OUT / "barchart.svg"),
    ]

    # User-study stimuli: the best cluster of each drug count, rendered
    # in both encodings side by side (Appendix A's samples).
    for n_drugs in (2, 3, 4):
        candidates = [e for e in ranked if e.cluster.n_drugs == n_drugs]
        if not candidates:
            continue
        cluster = candidates[0].cluster
        paths.append(
            render_glyph(cluster).save(OUT / f"stimulus_{n_drugs}drugs_glyph.svg")
        )
        paths.append(
            render_barchart(cluster).save(OUT / f"stimulus_{n_drugs}drugs_bar.svg")
        )

    # Appendix A stimulus sheets: each question in both encodings.
    from repro.userstudy import build_questions, render_study_sheets

    questions = build_questions(
        result.clusters, drug_counts=(2, 3), questions_per_count=2
    )
    paths.extend(render_study_sheets(questions, OUT / "stimuli", show_answers=True))

    for path in paths:
        print(f"wrote {path} ({path.stat().st_size:,d} bytes)")


if __name__ == "__main__":
    main()
