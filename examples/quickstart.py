"""Quickstart: mine a synthetic quarter and rank drug-drug interactions.

Runs the full MeDIAR pipeline on a small synthetic FAERS quarter,
prints the top interactions under two rankings, and drills one cluster
down to its contextual rules and supporting source reports.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Maras, MarasConfig, RankingMethod
from repro.faers import SyntheticConfig, SyntheticFAERSGenerator
from repro.viz import cluster_detail


def main() -> None:
    # 1. Data: a deterministic synthetic quarter (swap in parse_quarter()
    #    output for real FAERS extracts — see examples/parse_real_faers.py).
    config = SyntheticConfig(n_reports=3000, n_drugs=1500, n_adrs=300, seed=42)
    reports = SyntheticFAERSGenerator(config).generate()
    print(f"generated {len(reports)} case reports")

    # 2. Pipeline: closed mining → drug→ADR rules → MCACs.
    result = Maras(MarasConfig(min_support=5, clean=False)).run(reports)
    print(f"mined {len(result.clusters)} multi-drug association clusters\n")

    # 3. Rank by the exclusiveness measure vs raw confidence.
    catalog = result.catalog
    for method in (RankingMethod.EXCLUSIVENESS_CONFIDENCE, RankingMethod.CONFIDENCE):
        print(f"top 5 by {method.value}:")
        for entry in result.rank(method, top_k=5):
            print(f"  {entry.describe(catalog)}")
        print()

    # 4. Drill into the winner: its full multi-level context (Table 3.1
    #    layout) and the raw reports behind it (§4.1).
    winner = result.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=1)[0].cluster
    print("winning cluster in detail:")
    print(cluster_detail(winner, catalog))
    supporting = result.supporting_reports(winner)
    print(f"\nsupported by {len(supporting)} reports, e.g.:")
    for report in supporting[:3]:
        print(
            f"  case {report.case_id}: drugs={', '.join(report.drugs)} | "
            f"ADRs={', '.join(report.adrs)}"
        )


if __name__ == "__main__":
    main()
