"""Case-study workflow: validate top-ranked interactions (§5.4).

The drug-safety evaluator's loop, as the paper describes it:

1. rank the quarter's multi-drug clusters by exclusiveness;
2. search for specific drugs of interest (§4.1 highlighting);
3. validate candidates against the domain-knowledge reference
   (the Drugs.com/DrugBank stand-in) and classify novelty;
4. filter for severe reactions that need immediate action;
5. pull the supporting raw reports for investigation.

    python examples/case_study_interactions.py
"""

from __future__ import annotations

from repro import Maras, MarasConfig, RankingMethod
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.knowledge import default_reference, default_severity_index
from repro.viz import cluster_detail

CASE_DRUGS = ("IBUPROFEN", "METAMIZOLE", "METHOTREXATE", "PROGRAF", "NEXIUM", "PREVACID")


def main() -> None:
    generator = SyntheticFAERSGenerator(quarter_config("2014Q2", scale=0.04))
    result = Maras(MarasConfig(min_support=5, clean=False)).run(
        ReportDataset(generator.generate())
    )
    catalog = result.catalog
    reference = default_reference()
    severity = default_severity_index()

    # 1-2. Rank, then highlight clusters mentioning the case-study drugs.
    print("=== clusters mentioning the paper's case-study drugs ===")
    ranked = result.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE)
    rank_of = {id(entry.cluster): entry.rank for entry in ranked}
    for drug in CASE_DRUGS:
        matches = result.search(drug=drug)
        if not matches:
            continue
        best = min(matches, key=lambda c: rank_of[id(c)])
        drugs = " + ".join(catalog.labels(best.target.antecedent))
        adrs = ", ".join(catalog.labels(best.target.consequent))
        print(
            f"  {drug:14s} best cluster #{rank_of[id(best)]:<4d} "
            f"{drugs} => {adrs}"
        )

    # 3. Novelty classification of the overall top 10.
    print("\n=== top 10 by exclusiveness, validated against the DDI reference ===")
    for entry in ranked[:10]:
        drugs = catalog.labels(entry.cluster.target.antecedent)
        adrs = catalog.labels(entry.cluster.target.consequent)
        novelty = reference.classify(drugs, adrs)
        flag = {"known": "KNOWN  ", "known-combination-new-adr": "NEW-ADR"}.get(
            novelty, "UNKNOWN"
        )
        print(f"  #{entry.rank:<3d} [{flag}] {' + '.join(drugs)} => {', '.join(adrs)}")

    # 4. Severe-reaction filter (§4.1's "immediate action" view).
    severe = [
        entry
        for entry in ranked[:50]
        if severity.is_severe(catalog.labels(entry.cluster.target.consequent))
    ]
    print(f"\n=== {len(severe)} of the top 50 carry severe reactions ===")
    for entry in severe[:5]:
        print(f"  {entry.describe(catalog)}")

    # 5. Investigate the best severe cluster: context + raw reports.
    if severe:
        cluster = severe[0].cluster
        print("\n=== investigation view ===")
        print(cluster_detail(cluster, catalog))
        reports = result.supporting_reports(cluster)
        ages = [r.age for r in reports if r.age is not None]
        print(
            f"\n{len(reports)} supporting reports; "
            f"median age {sorted(ages)[len(ages) // 2]:.0f}, "
            f"{sum(1 for r in reports if r.sex == 'F')} female"
        )

        # 6. §4.1's similar-interaction highlighting: the clusters an
        # analyst should review next to this one.
        from repro.core.similarity import similar_clusters

        print("\n=== similar interactions ===")
        for neighbor in similar_clusters(
            result.clusters, cluster, catalog, top_k=3
        ):
            drugs = " + ".join(catalog.labels(neighbor.cluster.target.antecedent))
            adrs = ", ".join(catalog.labels(neighbor.cluster.target.consequent))
            print(
                f"  sim={neighbor.similarity:.2f} "
                f"(content {neighbor.content:.2f} / shape {neighbor.shape:.2f})  "
                f"{drugs} => {adrs}"
            )


if __name__ == "__main__":
    main()
