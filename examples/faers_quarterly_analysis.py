"""Quarterly surveillance workflow: all four 2014 quarters.

Replays the paper's evaluation workflow (Chapter 5) end to end on
synthetic quarters scaled from the real FAERS 2014 extracts:

- Table 5.1: per-quarter dataset statistics;
- Fig 5.1: rule-space reduction (total → filtered → MCACs);
- Table 5.2: the four-method top-5 comparison on Q1;
- cross-quarter consistency: combinations surfacing in several quarters.

Artifacts are written to ``examples/out/``.

    python examples/faers_quarterly_analysis.py
"""

from __future__ import annotations

from pathlib import Path

from repro import Maras, MarasConfig
from repro.faers import ReportDataset
from repro.faers.synthetic import generate_year
from repro.viz import ranking_markdown, rule_reduction_table, top_k_table

OUT = Path(__file__).parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    maras = Maras(MarasConfig(min_support=5, clean=False, count_rule_space=True))

    print("generating four synthetic quarters (scale 2% of FAERS 2014)...")
    year = generate_year(scale=0.02)
    results = {}
    print(f"\n{'Quarter':10s}{'Reports':>10s}{'Drugs':>10s}{'ADRs':>8s}{'MCACs':>8s}")
    for quarter, reports in year.items():
        dataset = ReportDataset(reports)
        results[quarter] = maras.run(dataset)
        stats = dataset.stats()
        print(
            f"{quarter:10s}{stats.n_reports:>10,d}{stats.n_drugs:>10,d}"
            f"{stats.n_adrs:>8,d}{len(results[quarter].clusters):>8,d}"
        )

    # Fig 5.1 — rule-space reduction.
    counts = {q: r.rule_counts for q, r in results.items()}
    reduction = rule_reduction_table(counts)
    print("\n" + reduction)
    (OUT / "rule_reduction.txt").write_text(reduction + "\n")

    # Table 5.2 — four rankings of Q1, side by side.
    q1 = results["2014Q1"]
    table = q1.ranking_table(top_k=5)
    rendered = top_k_table(table, q1.catalog)
    print("\n" + rendered)
    (OUT / "table_5_2.md").write_text(ranking_markdown(table, q1.catalog) + "\n")

    # Cross-quarter consistency: drug combinations whose clusters appear
    # in at least three of four quarters are strong surveillance leads.
    seen: dict[tuple[str, ...], set[str]] = {}
    for quarter, result in results.items():
        for cluster in result.clusters:
            drugs = result.catalog.labels(cluster.target.antecedent)
            seen.setdefault(drugs, set()).add(quarter)
    recurring = sorted(
        (drugs for drugs, quarters in seen.items() if len(quarters) >= 3),
        key=lambda drugs: -len(seen[drugs]),
    )
    print(f"\n{len(recurring)} drug combinations recur in >= 3 quarters, e.g.:")
    for drugs in recurring[:8]:
        print(f"  {' + '.join(drugs)}  ({len(seen[drugs])}/4 quarters)")
    print(f"\nartifacts written to {OUT}/")


if __name__ == "__main__":
    main()
