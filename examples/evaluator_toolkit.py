"""Evaluator toolkit: uncertainty, drug profiles, and near-duplicates.

Three capabilities layered on the core pipeline:

1. **bootstrap intervals** — how sure is the ranking? 95 % intervals
   around the top clusters' exclusiveness scores; intervals excluding
   zero mark statistically solid signals;
2. **drug profiles** — the §4.1 drug-centric view: solo PRR signals,
   interaction clusters, severity and body systems for one drug;
3. **near-duplicate detection** — flag and merge reports that the
   exact-duplicate pass misses (same event, slightly different lists).

    python examples/evaluator_toolkit.py
"""

from __future__ import annotations

import random

from repro import Maras, MarasConfig, RankingMethod
from repro.core.profile import build_drug_profile
from repro.core.uncertainty import bootstrap_exclusiveness
from repro.faers import (
    ReportDataset,
    SyntheticFAERSGenerator,
    find_near_duplicates,
    quarter_config,
    resolve_near_duplicates,
)
from repro.faers.schema import CaseReport


def main() -> None:
    generator = SyntheticFAERSGenerator(quarter_config("2014Q1", scale=0.03))
    reports = generator.generate()

    # --- near-duplicates: inject some, then catch them ---
    rng = random.Random(5)
    injected = []
    for index, source in enumerate(rng.sample(reports, 25)):
        drugs = set(source.drugs)
        adrs = set(source.adrs) | {"DRUG INEFFECTIVE"}
        injected.append(
            CaseReport.build(
                f"dup-{index}", drugs, adrs, quarter=source.quarter
            )
        )
    noisy = reports + injected
    pairs = find_near_duplicates(noisy, threshold=0.75)
    deduplicated, _ = resolve_near_duplicates(noisy, threshold=0.75)
    print(
        f"near-duplicates: injected 25 copies into {len(reports)} reports; "
        f"flagged {len(pairs)} pairs, kept {len(deduplicated)} reports\n"
    )

    # --- pipeline on the cleaned stream ---
    result = Maras(MarasConfig(min_support=5, clean=False)).run(
        ReportDataset(deduplicated)
    )
    catalog = result.catalog
    top = result.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=8)

    print("top clusters with 95% bootstrap intervals:")
    for entry in top:
        interval = bootstrap_exclusiveness(
            result.encoded.database, entry.cluster, n_bootstrap=200
        )
        marker = "SOLID" if interval.excludes_zero and interval.low > 0 else "     "
        drugs = " + ".join(catalog.labels(entry.cluster.target.antecedent))
        print(
            f"  #{entry.rank:<3d} [{marker}] {drugs:40s} "
            f"{interval.point:6.3f}  [{interval.low:6.3f}, {interval.high:6.3f}]"
        )

    # --- drug profiles for the paper's case-study drugs ---
    print("\ndrug profiles:")
    for drug in ("IBUPROFEN", "PROGRAF", "NEXIUM"):
        try:
            profile = build_drug_profile(result, drug)
        except Exception:
            continue
        print(
            f"  {profile.drug:12s} reports={profile.n_reports:<4d} "
            f"solo-signals={len(profile.solo_signals):<2d} "
            f"interactions={profile.n_interactions:<3d} "
            f"worst={profile.worst_severity.name.lower():17s} "
            f"systems={len(profile.body_systems)}"
        )


if __name__ == "__main__":
    main()
