"""The real-data path: FAERS ASCII quarterly files → ranked interactions.

FDA publishes each quarter as ``$``-delimited ASCII files (DEMOyyQq /
DRUGyyQq / REACyyQq). This example shows that exact path. Since the
sandbox has no network, it first *writes* a quarter in the real file
format (from synthetic reports, with deliberately dirty drug strings),
then runs the same code you would point at a downloaded extract:

    reports, stats = parse_quarter(demo, drug, reac, quarter="2014Q1",
                                   report_types=frozenset({ReportType.EXPEDITED}))
    cleaned, cstats = ReportCleaner(drug_vocabulary=...).clean(reports)
    result = Maras(...).run(ReportDataset(cleaned))

    python examples/parse_real_faers.py
"""

from __future__ import annotations

import random
from pathlib import Path

from repro import Maras, MarasConfig, RankingMethod, ReportCleaner
from repro.faers import (
    ReportDataset,
    SyntheticConfig,
    SyntheticFAERSGenerator,
    parse_quarter,
)
from repro.faers.schema import ReportType
from repro.faers.vocab import drug_universe

OUT = Path(__file__).parent / "out" / "faers_2014q1"


def dirty(rng: random.Random, name: str) -> str:
    """Mangle a canonical drug name the way FAERS verbatim strings are."""
    roll = rng.random()
    if roll < 0.15:
        return f"{name} {rng.choice(['10 MG', '40MG', 'TABLETS', 'CAPSULES'])}"
    if roll < 0.25:
        return name.lower()
    if roll < 0.30 and len(name) > 6:
        cut = rng.randrange(1, len(name) - 1)
        return name[:cut] + name[cut + 1 :]  # one-character typo
    return name


def write_quarter(directory: Path) -> tuple[Path, Path, Path]:
    directory.mkdir(parents=True, exist_ok=True)
    rng = random.Random(20141)
    config = SyntheticConfig(n_reports=2000, n_drugs=1000, n_adrs=250, seed=11)
    reports = SyntheticFAERSGenerator(config).generate()

    demo_lines = ["primaryid$caseid$rept_cod$age$age_cod$sex$occr_country"]
    drug_lines = ["primaryid$drug_seq$role_cod$drugname"]
    reac_lines = ["primaryid$pt"]
    for index, report in enumerate(reports, start=1):
        demo_lines.append(f"{index}${index}$EXP$" f"{int(report.age or 60)}$YR${report.sex}${report.country}")
        for seq, drug in enumerate(report.drugs, start=1):
            drug_lines.append(f"{index}${seq}$PS${dirty(rng, drug)}")
        for adr in report.adrs:
            reac_lines.append(f"{index}${adr}")

    demo = directory / "DEMO14Q1.txt"
    drug = directory / "DRUG14Q1.txt"
    reac = directory / "REAC14Q1.txt"
    demo.write_text("\n".join(demo_lines) + "\n", encoding="latin-1")
    drug.write_text("\n".join(drug_lines) + "\n", encoding="latin-1")
    reac.write_text("\n".join(reac_lines) + "\n", encoding="latin-1")
    return demo, drug, reac


def main() -> None:
    demo, drug, reac = write_quarter(OUT)
    print(f"wrote FAERS-format quarter under {OUT}/")

    # --- everything below is exactly the real-data workflow ---
    reports, parse_stats = parse_quarter(
        demo,
        drug,
        reac,
        quarter="2014Q1",
        report_types=frozenset({ReportType.EXPEDITED}),
    )
    print(
        f"parsed {parse_stats.reports} EXP reports "
        f"({parse_stats.demo_rows} DEMO rows, {parse_stats.drug_rows} DRUG rows, "
        f"{parse_stats.reac_rows} REAC rows)"
    )

    cleaner = ReportCleaner(drug_vocabulary=drug_universe(1000))
    cleaned, clean_stats = cleaner.clean(reports)
    print(
        f"cleaning: {clean_stats.drug_names_corrected} drug names corrected, "
        f"{clean_stats.exact_duplicates_dropped} duplicates dropped, "
        f"{clean_stats.reports_out} reports kept"
    )

    result = Maras(MarasConfig(min_support=4, clean=False)).run(
        ReportDataset(cleaned)
    )
    print(f"\ntop 5 interactions from the parsed quarter:")
    for entry in result.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=5):
        print(f"  {entry.describe(result.catalog)}")


if __name__ == "__main__":
    main()
