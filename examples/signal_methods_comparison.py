"""Compare signal-detection methods on data with known ground truth.

Runs every detector in the repository — MeDIAR's exclusiveness, the
improvement baseline, raw confidence/lift, Harpaz's multi-item RRR,
the Ω interaction contrast, EBGM, IC025, and age/sex-stratified ROR —
against one synthetic quarter whose genuine interactions are planted
and therefore known. Prints per-method hits on the planted signals and
a per-case detail table, including the confounding check (crude vs
Mantel-Haenszel ROR).

    python examples/signal_methods_comparison.py
"""

from __future__ import annotations

from repro import Maras, MarasConfig, RankingMethod
from repro.core.ranking import rank_clusters
from repro.faers import ReportDataset, SyntheticFAERSGenerator, quarter_config
from repro.signals import (
    EBGMScorer,
    contingency_for,
    harpaz_multi_item_signals,
    ic025,
    omega_shrinkage,
    stratified_signal,
)

TOP_K = 40


def main() -> None:
    generator = SyntheticFAERSGenerator(quarter_config("2014Q1", scale=0.04))
    dataset = ReportDataset(generator.generate())
    result = Maras(MarasConfig(min_support=5, clean=False)).run(dataset)
    catalog = result.catalog
    database = result.encoded.database

    genuine = {
        (tuple(sorted(spec.drugs)), spec.adrs[0]): spec
        for spec in generator.genuine_interactions()
    }
    print(f"{len(result.clusters)} clusters mined; "
          f"{len(genuine)} genuine interactions planted\n")

    # --- ranking methods over MCACs ---
    def hits(ranked_targets):
        count = 0
        for target in ranked_targets[:TOP_K]:
            drugs = tuple(catalog.labels(target.antecedent))
            adrs = set(catalog.labels(target.consequent))
            if any(
                drugs == key[0] and key[1] in adrs for key in genuine
            ):
                count += 1
        return count

    print(f"planted-signal hits in the top {TOP_K}:")
    for method in (
        RankingMethod.EXCLUSIVENESS_CONFIDENCE,
        RankingMethod.EXCLUSIVENESS_LIFT,
        RankingMethod.IMPROVEMENT,
        RankingMethod.CONFIDENCE,
        RankingMethod.LIFT,
    ):
        ranked = rank_clusters(result.clusters, method)
        print(f"  {method.value:28s} {hits([e.cluster.target for e in ranked])}")
    harpaz = harpaz_multi_item_signals(database, min_support=5, max_itemset_len=6)
    print(f"  {'harpaz multi-item RRR':28s} {hits([s.rule for s in harpaz])}")

    # --- per-case detail with pairwise statistics ---
    print("\nper-planted-interaction statistics (2-drug cases):")
    print(
        f"{'interaction':42s} {'omega':>7s} {'IC025':>7s} {'EBGM':>7s} "
        f"{'crude ROR':>10s} {'MH ROR':>8s}"
    )
    pair_candidates = []
    for (drugs, adr), spec in genuine.items():
        if len(drugs) != 2:
            continue
        ids = [catalog.get_id(d) for d in drugs]
        adr_id = catalog.get_id(adr)
        if None in ids or adr_id is None:
            continue
        pair_candidates.append((drugs, adr, ids, adr_id))
    scorer = EBGMScorer.fit(
        database,
        [
            (frozenset(ids), frozenset({adr_id}))
            for _, _, ids, adr_id in pair_candidates
        ],
    )
    for drugs, adr, ids, adr_id in pair_candidates:
        exposure = frozenset(ids)
        outcome = frozenset({adr_id})
        omega = omega_shrinkage(database, ids[0], ids[1], outcome)
        table = contingency_for(database, exposure, outcome)
        ebgm = scorer.score(exposure, outcome).ebgm
        strat = stratified_signal(
            list(dataset), frozenset(drugs), frozenset({adr})
        )
        print(
            f"{' + '.join(drugs):42s} {omega:>7.2f} {ic025(table):>7.2f} "
            f"{ebgm:>7.2f} {strat.crude:>10.2f} {strat.adjusted:>8.2f}"
        )


if __name__ == "__main__":
    main()
