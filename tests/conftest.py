"""Shared fixtures.

The expensive fixtures (a mined synthetic quarter) are session-scoped:
the suite mines once and many test modules inspect the result.
"""

from __future__ import annotations

import pytest

from repro.core import Maras, MarasConfig
from repro.faers import SyntheticConfig, SyntheticFAERSGenerator
from repro.mining.transactions import ItemCatalog, TransactionDatabase


@pytest.fixture
def toy_database() -> TransactionDatabase:
    """Five hand-written transactions over six items (a..f).

    Known facts used across tests:
    - support({a}) = 4, support({a, b}) = 3, support({a, b, c}) = 2
    - {a, b} is closed; {b} is not (every b comes with a)
    """
    transactions = [
        ["a", "b", "c"],
        ["a", "b", "c"],
        ["a", "b", "d"],
        ["a", "e"],
        ["d", "e", "f"],
    ]
    return TransactionDatabase.from_labelled(transactions)


@pytest.fixture
def drug_adr_database() -> TransactionDatabase:
    """A small drugs/ADRs database with a planted two-drug signal.

    D1+D2 together almost always come with ADR X, while each alone
    mostly produces its own profile ADR.
    """
    kinds = {"D1": "drug", "D2": "drug", "D3": "drug", "X": "adr", "Y": "adr", "Z": "adr"}
    transactions = [
        ["D1", "D2", "X"],
        ["D1", "D2", "X"],
        ["D1", "D2", "X"],
        ["D1", "D2", "X", "Y"],
        ["D1", "Y"],
        ["D1", "Y"],
        ["D1", "Z"],
        ["D2", "Z"],
        ["D2", "Z"],
        ["D2", "Y"],
        ["D3", "X"],
        ["D3", "Z"],
    ]
    return TransactionDatabase.from_labelled(transactions, kinds=kinds)


@pytest.fixture(scope="session")
def small_quarter_reports():
    """A deterministic 1500-report synthetic quarter (session cache)."""
    config = SyntheticConfig(n_reports=1500, n_drugs=800, n_adrs=200, seed=99)
    return SyntheticFAERSGenerator(config).generate()


@pytest.fixture(scope="session")
def mined_quarter(small_quarter_reports):
    """The small quarter run through the full pipeline once per session."""
    return Maras(MarasConfig(min_support=4, clean=False)).run(small_quarter_reports)


@pytest.fixture
def catalog_drugs_adrs() -> ItemCatalog:
    """A catalog with two drugs and two ADRs pre-registered."""
    catalog = ItemCatalog()
    catalog.add("ASPIRIN", "drug")
    catalog.add("WARFARIN", "drug")
    catalog.add("HAEMORRHAGE", "adr")
    catalog.add("PAIN", "adr")
    return catalog
