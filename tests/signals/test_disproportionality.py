"""Tests for PRR, ROR, RRR, IC and the Evans screening rule."""

from __future__ import annotations

import math

import pytest

from repro.signals.contingency import ContingencyTable
from repro.signals.disproportionality import (
    chi_squared,
    information_component,
    proportional_reporting_ratio,
    prr_signal_test,
    relative_reporting_ratio,
    reporting_odds_ratio,
)


def independent_table(n=400):
    # Exposure and outcome independent: a=25, b=75, c=75, d=225 (rates 0.25).
    return ContingencyTable(25, 75, 75, 225)


class TestPRR:
    def test_independence_is_one(self):
        assert proportional_reporting_ratio(independent_table()) == pytest.approx(1.0)

    def test_known_value(self):
        # exposed rate 0.8, unexposed rate 0.2 → PRR 4
        table = ContingencyTable(8, 2, 20, 80)
        assert proportional_reporting_ratio(table) == pytest.approx(4.0)

    def test_zero_exposure_margin(self):
        assert proportional_reporting_ratio(ContingencyTable(0, 0, 5, 5)) == 0.0

    def test_haldane_applied_on_zero_cell(self):
        table = ContingencyTable(5, 0, 1, 10)
        value = proportional_reporting_ratio(table)
        assert math.isfinite(value) and value > 1


class TestROR:
    def test_independence_is_one(self):
        assert reporting_odds_ratio(independent_table()) == pytest.approx(1.0)

    def test_known_value(self):
        table = ContingencyTable(10, 10, 5, 20)
        assert reporting_odds_ratio(table) == pytest.approx(4.0)

    def test_zero_margins(self):
        assert reporting_odds_ratio(ContingencyTable(0, 0, 5, 5)) == 0.0
        assert reporting_odds_ratio(ContingencyTable(0, 5, 0, 5)) == 0.0


class TestRRR:
    def test_independence_is_one(self):
        assert relative_reporting_ratio(independent_table()) == pytest.approx(1.0)

    def test_observed_over_expected(self):
        table = ContingencyTable(10, 10, 10, 70)
        expected = 20 * 20 / 100
        assert relative_reporting_ratio(table) == pytest.approx(10 / expected)

    def test_zero_margin(self):
        assert relative_reporting_ratio(ContingencyTable(0, 0, 5, 5)) == 0.0


class TestInformationComponent:
    def test_independence_near_zero(self):
        assert abs(information_component(independent_table())) < 0.05

    def test_positive_for_overrepresentation(self):
        assert information_component(ContingencyTable(50, 10, 10, 330)) > 1

    def test_negative_for_underrepresentation(self):
        assert information_component(ContingencyTable(1, 99, 99, 201)) < 0

    def test_empty_table(self):
        assert information_component(ContingencyTable(0, 0, 0, 0)) == 0.0

    def test_shrinkage_bounds_small_counts(self):
        # a=1 with tiny expectation: raw ratio huge, IC must stay modest.
        assert information_component(ContingencyTable(1, 0, 0, 9999)) < 2


class TestChiSquaredAndScreen:
    def test_chi_squared_independence_zero(self):
        assert chi_squared(independent_table()) == pytest.approx(0.0)

    def test_chi_squared_known_value(self):
        # Perfect association 2×2: χ² = n.
        table = ContingencyTable(10, 0, 0, 10)
        assert chi_squared(table) == pytest.approx(20.0)

    def test_evans_screen_positive(self):
        table = ContingencyTable(10, 10, 10, 170)
        assert prr_signal_test(table)

    def test_evans_screen_blocks_small_counts(self):
        table = ContingencyTable(2, 0, 1, 197)
        assert not prr_signal_test(table)  # a < 3

    def test_evans_screen_blocks_weak_prr(self):
        assert not prr_signal_test(independent_table())
