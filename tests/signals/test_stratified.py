"""Tests for Mantel-Haenszel stratified disproportionality."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.faers.schema import CaseReport
from repro.signals.contingency import ContingencyTable
from repro.signals.stratified import (
    age_band,
    crude_ror,
    mantel_haenszel_ror,
    stratified_signal,
    stratify_reports,
    stratum_of,
)


class TestAgeBand:
    def test_bands(self):
        assert age_band(5) == "[0,18)"
        assert age_band(30) == "[18,45)"
        assert age_band(70) == "[65,80)"
        assert age_band(92) == "[80,inf)"

    def test_boundaries_half_open(self):
        assert age_band(18) == "[18,45)"
        assert age_band(17.99) == "[0,18)"

    def test_none_is_unknown(self):
        assert age_band(None) == "unknown"

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            age_band(-1)


class TestStratification:
    def _report(self, i, drugs, adrs, age, sex):
        return CaseReport.build(f"c{i}", drugs, adrs, age=age, sex=sex)

    def test_stratum_key_composition(self):
        report = self._report(1, ["D"], ["X"], age=70, sex="F")
        assert stratum_of(report) == ("[65,80)", "F")
        assert stratum_of(report, by_sex=False) == ("[65,80)",)
        assert stratum_of(report, by_age=False) == ("F",)

    def test_tables_partition_reports(self):
        reports = [
            self._report(1, ["D"], ["X"], 30, "F"),
            self._report(2, ["D"], ["Y"], 30, "F"),
            self._report(3, ["E"], ["X"], 70, "M"),
            self._report(4, ["E"], ["Y"], None, None),
        ]
        tables = stratify_reports(
            reports, frozenset({"D"}), frozenset({"X"})
        )
        assert sum(t.n for t in tables.values()) == 4
        assert ("unknown", "unknown") in tables

    def test_cell_assignment(self):
        reports = [self._report(1, ["D"], ["X"], 30, "F")]
        ((_, table),) = stratify_reports(
            reports, frozenset({"D"}), frozenset({"X"})
        ).items()
        assert (table.a, table.b, table.c, table.d) == (1, 0, 0, 0)

    def test_empty_exposure_rejected(self):
        with pytest.raises(ConfigError):
            stratify_reports([], frozenset(), frozenset({"X"}))


class TestMantelHaenszel:
    def test_matches_single_stratum_or(self):
        table = ContingencyTable(10, 10, 5, 20)
        assert mantel_haenszel_ror([table]) == pytest.approx(4.0)

    def test_pooled_across_homogeneous_strata(self):
        # Two strata with identical OR=4 → pooled OR 4.
        tables = [ContingencyTable(10, 10, 5, 20), ContingencyTable(20, 20, 10, 40)]
        assert mantel_haenszel_ror(tables) == pytest.approx(4.0)

    def test_empty_strata_contribute_nothing(self):
        tables = [ContingencyTable(0, 0, 0, 0), ContingencyTable(10, 10, 5, 20)]
        assert mantel_haenszel_ror(tables) == pytest.approx(4.0)

    def test_no_information_is_zero(self):
        assert mantel_haenszel_ror([ContingencyTable(0, 5, 0, 5)]) == 0.0

    def test_pure_numerator_is_inf(self):
        assert mantel_haenszel_ror([ContingencyTable(5, 0, 0, 5)]) == math.inf

    def test_no_tables_rejected(self):
        with pytest.raises(ConfigError):
            mantel_haenszel_ror([])


class TestConfoundingDetection:
    @pytest.fixture
    def confounded_reports(self):
        """Age-confounded association: DRUG and ADR are both common in
        the elderly but independent *within* each age band."""
        reports = []
        i = 0

        def add(n, drugs, adrs, age):
            nonlocal i
            for _ in range(n):
                i += 1
                reports.append(
                    CaseReport.build(f"c{i}", drugs, adrs, age=age, sex="F")
                )

        # Elderly: 50% exposed, 50% outcome, independent.
        add(25, ["DRUG"], ["ADR"], 85)
        add(25, ["DRUG"], ["OTHER"], 85)
        add(25, ["PLACEBO"], ["ADR"], 85)
        add(25, ["PLACEBO"], ["OTHER"], 85)
        # Young: 10% exposed, 10% outcome, independent.
        add(1, ["DRUG"], ["ADR"], 30)
        add(9, ["DRUG"], ["OTHER"], 30)
        add(9, ["PLACEBO"], ["ADR"], 30)
        add(81, ["PLACEBO"], ["OTHER"], 30)
        return reports

    def test_crude_inflated_adjusted_near_null(self, confounded_reports):
        signal = stratified_signal(
            confounded_reports,
            frozenset({"DRUG"}),
            frozenset({"ADR"}),
            by_sex=False,
        )
        assert signal.crude > 1.5  # looks like a signal...
        assert 0.7 < signal.adjusted < 1.4  # ...but is age confounding
        assert signal.is_confounded

    def test_genuine_association_survives_adjustment(self):
        reports = []
        i = 0
        for age in (30, 85):
            for _ in range(20):
                i += 1
                reports.append(
                    CaseReport.build(f"e{i}", ["DRUG"], ["ADR"], age=age, sex="M")
                )
            for _ in range(5):
                i += 1
                reports.append(
                    CaseReport.build(f"f{i}", ["DRUG"], ["OTHER"], age=age, sex="M")
                )
            for _ in range(5):
                i += 1
                reports.append(
                    CaseReport.build(f"g{i}", ["PLACEBO"], ["ADR"], age=age, sex="M")
                )
            for _ in range(20):
                i += 1
                reports.append(
                    CaseReport.build(f"h{i}", ["PLACEBO"], ["OTHER"], age=age, sex="M")
                )
        signal = stratified_signal(
            reports, frozenset({"DRUG"}), frozenset({"ADR"}), by_sex=False
        )
        assert signal.adjusted > 5
        assert not signal.is_confounded

    def test_crude_matches_collapsed_table(self, confounded_reports):
        tables = stratify_reports(
            confounded_reports,
            frozenset({"DRUG"}),
            frozenset({"ADR"}),
            by_sex=False,
        )
        # Collapsing by hand: exposed-with 26, exposed-without 34,
        # unexposed-with 34, unexposed-without 106.
        assert crude_ror(tables) == pytest.approx((26 * 106) / (34 * 34))
