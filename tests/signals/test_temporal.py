"""Tests for temporal signal analysis over event dates."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faers.schema import CaseReport
from repro.signals.temporal import (
    TemporalTrend,
    monthly_series,
    reporting_trend,
)


def dated_report(i, drugs, adrs, date):
    return CaseReport.build(f"c{i}", drugs, adrs, event_date=date)


def month_stream(rates):
    """One exposed cohort of 10 reports per month; ``rates`` sets the
    per-month fraction with the outcome."""
    reports = []
    index = 0
    for month_index, rate in enumerate(rates, start=1):
        with_outcome = round(10 * rate)
        for k in range(10):
            index += 1
            adrs = ["ADR"] if k < with_outcome else ["OTHER"]
            reports.append(
                dated_report(
                    index, ["DRUG"], adrs, f"2014-{month_index:02d}-15"
                )
            )
    return reports


class TestMonthlySeries:
    def test_counts_per_month(self):
        reports = month_stream([0.2, 0.5])
        series = monthly_series(
            reports, frozenset({"DRUG"}), frozenset({"ADR"})
        )
        assert [point.month for point in series] == ["2014-01", "2014-02"]
        assert [point.n_exposed for point in series] == [10, 10]
        assert [point.n_outcome for point in series] == [2, 5]
        assert series[1].rate == pytest.approx(0.5)

    def test_undated_reports_ignored(self):
        reports = month_stream([0.5]) + [
            CaseReport.build("undated", ["DRUG"], ["ADR"])
        ]
        series = monthly_series(reports, frozenset({"DRUG"}), frozenset({"ADR"}))
        assert sum(point.n_exposed for point in series) == 10

    def test_unexposed_reports_ignored(self):
        reports = month_stream([0.5]) + [
            dated_report(99, ["OTHERDRUG"], ["ADR"], "2014-01-10")
        ]
        series = monthly_series(reports, frozenset({"DRUG"}), frozenset({"ADR"}))
        assert series[0].n_exposed == 10

    def test_chronological_order(self):
        reports = [
            dated_report(1, ["DRUG"], ["ADR"], "2014-03-01"),
            dated_report(2, ["DRUG"], ["ADR"], "2014-01-01"),
            dated_report(3, ["DRUG"], ["ADR"], "2014-02-01"),
        ]
        series = monthly_series(reports, frozenset({"DRUG"}), frozenset({"ADR"}))
        months = [point.month for point in series]
        assert months == sorted(months)

    def test_empty_sides_rejected(self):
        with pytest.raises(ConfigError):
            monthly_series([], frozenset(), frozenset({"ADR"}))


class TestReportingTrend:
    def test_rising_rate_detected(self):
        result = reporting_trend(
            month_stream([0.1, 0.3, 0.5, 0.7]),
            frozenset({"DRUG"}),
            frozenset({"ADR"}),
        )
        assert result.trend is TemporalTrend.RISING
        assert result.slope_per_month > 0.1

    def test_falling_rate_detected(self):
        result = reporting_trend(
            month_stream([0.7, 0.5, 0.3, 0.1]),
            frozenset({"DRUG"}),
            frozenset({"ADR"}),
        )
        assert result.trend is TemporalTrend.FALLING

    def test_flat_rate(self):
        result = reporting_trend(
            month_stream([0.4, 0.4, 0.4, 0.4]),
            frozenset({"DRUG"}),
            frozenset({"ADR"}),
        )
        assert result.trend is TemporalTrend.FLAT
        assert abs(result.slope_per_month) < 1e-9

    def test_insufficient_months(self):
        result = reporting_trend(
            month_stream([0.5, 0.5]), frozenset({"DRUG"}), frozenset({"ADR"})
        )
        assert result.trend is TemporalTrend.INSUFFICIENT

    def test_flat_band_widening(self):
        stream = month_stream([0.40, 0.42, 0.44, 0.46])
        narrow = reporting_trend(
            stream, frozenset({"DRUG"}), frozenset({"ADR"}), flat_band=0.001
        )
        wide = reporting_trend(
            stream, frozenset({"DRUG"}), frozenset({"ADR"}), flat_band=0.1
        )
        assert narrow.trend is TemporalTrend.RISING
        assert wide.trend is TemporalTrend.FLAT

    def test_negative_flat_band_rejected(self):
        with pytest.raises(ConfigError):
            reporting_trend([], frozenset({"D"}), frozenset({"A"}), flat_band=-1)


class TestOnSyntheticQuarter:
    def test_synthetic_dates_cover_the_quarter(self, small_quarter_reports):
        months = {
            report.event_date[:7]
            for report in small_quarter_reports
            if report.event_date
        }
        assert months == {"2014-01", "2014-02", "2014-03"}

    def test_trend_runs_on_planted_pair(self, small_quarter_reports):
        result = reporting_trend(
            small_quarter_reports,
            frozenset({"IBUPROFEN", "METAMIZOLE"}),
            frozenset({"ACUTE RENAL FAILURE"}),
        )
        assert result.trend in TemporalTrend
