"""Tests for the MGPS/EBGM empirical-Bayes shrinker."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.signals.ebgm import (
    DEFAULT_PRIOR_START,
    EBGMScorer,
    GammaMixturePrior,
    fit_prior,
    score_pair,
)


class TestGammaMixturePrior:
    def test_positive_parameters_required(self):
        with pytest.raises(ConfigError):
            GammaMixturePrior(alpha1=0, beta1=1, alpha2=1, beta2=1, weight=0.5)

    def test_weight_in_open_interval(self):
        with pytest.raises(ConfigError):
            GammaMixturePrior(alpha1=1, beta1=1, alpha2=1, beta2=1, weight=1.0)


class TestScorePair:
    def test_shrinkage_of_tiny_evidence(self):
        """n=1, E=0.01: raw ratio 100 but EBGM must shrink far below it."""
        scores = score_pair(1, 0.01, DEFAULT_PRIOR_START)
        assert scores.ebgm < 30
        assert scores.eb05 < scores.ebgm < scores.eb95

    def test_large_evidence_tracks_raw_ratio(self):
        """n=200, E=50: λ̂=4 with heaps of evidence → EBGM near 4."""
        scores = score_pair(200, 50.0, DEFAULT_PRIOR_START)
        assert 3.2 < scores.ebgm < 4.8
        assert 3.0 < scores.eb05 < scores.ebgm

    def test_null_pair_scores_near_or_below_one(self):
        scores = score_pair(10, 10.0, DEFAULT_PRIOR_START)
        assert scores.eb05 < 1.5
        assert 0.3 < scores.ebgm < 2.0

    def test_quantiles_ordered(self):
        for n, e in [(0, 1.0), (3, 1.0), (50, 10.0)]:
            scores = score_pair(n, e, DEFAULT_PRIOR_START)
            assert 0 <= scores.eb05 <= scores.eb95

    def test_eb05_more_conservative_than_ebgm_for_small_n(self):
        small = score_pair(3, 0.5, DEFAULT_PRIOR_START)
        big = score_pair(300, 50.0, DEFAULT_PRIOR_START)
        # Relative width of the credible interval shrinks with evidence.
        assert (small.eb95 - small.eb05) / small.ebgm > (
            big.eb95 - big.eb05
        ) / big.ebgm

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            score_pair(-1, 1.0, DEFAULT_PRIOR_START)
        with pytest.raises(ConfigError):
            score_pair(1, 0.0, DEFAULT_PRIOR_START)


class TestFitPrior:
    def test_fit_improves_or_keeps_start(self):
        # Mostly-null data with a contaminating signal component.
        observed = [1, 0, 2, 1, 0, 1, 3, 0, 1, 2, 40, 35, 3, 1, 0, 2]
        expected = [1.0, 0.8, 2.1, 1.2, 0.5, 0.9, 2.8, 0.4, 1.1, 2.0, 8.0, 7.0, 3.1, 0.9, 0.6, 1.8]
        prior = fit_prior(observed, expected)
        assert isinstance(prior, GammaMixturePrior)

    def test_fitted_prior_separates_signal_from_null(self):
        rng_null = [(i % 3, 1.0 + (i % 5) * 0.3) for i in range(40)]
        signal = [(30, 5.0), (25, 4.0), (40, 6.0)]
        observed = [n for n, _ in rng_null + signal]
        expected = [e for _, e in rng_null + signal]
        prior = fit_prior(observed, expected)
        null_scores = score_pair(1, 1.0, prior)
        signal_scores = score_pair(30, 5.0, prior)
        assert signal_scores.ebgm > 2 * null_scores.ebgm

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            fit_prior([1, 2], [1.0])

    def test_invalid_expected_rejected(self):
        with pytest.raises(ConfigError):
            fit_prior([1], [0.0])


class TestEBGMScorer:
    @pytest.fixture
    def surveillance_database(self):
        """A few hundred reports: background pairs plus a planted signal.

        Small toy databases make maximum likelihood collapse the prior;
        this is the realistic regime the scorer is meant for.
        """
        import random

        from repro.mining.transactions import TransactionDatabase

        rng = random.Random(17)
        drugs = [f"DRUG{i}" for i in range(12)]
        adrs = [f"ADR{i}" for i in range(8)]
        kinds = {d: "drug" for d in drugs} | {a: "adr" for a in adrs}
        rows = []
        for _ in range(400):
            row = rng.sample(drugs, rng.randint(1, 3))
            row += rng.sample(adrs, rng.randint(1, 2))
            rows.append(row)
        # Planted: DRUG0+DRUG1 strongly produce ADR0.
        rows.extend([["DRUG0", "DRUG1", "ADR0"]] * 25)
        return TransactionDatabase.from_labelled(rows, kinds=kinds)

    def test_fit_and_score_over_database(self, surveillance_database):
        catalog = surveillance_database.catalog
        drugs = sorted(catalog.ids_of_kind("drug"))
        adrs = sorted(catalog.ids_of_kind("adr"))
        pairs = [
            (frozenset({d}), frozenset({a})) for d in drugs for a in adrs
        ]
        scorer = EBGMScorer.fit(surveillance_database, pairs)
        planted = scorer.score(
            catalog.encode(["DRUG0", "DRUG1"]), catalog.encode(["ADR0"])
        )
        background = scorer.score(
            catalog.encode(["DRUG5"]), catalog.encode(["ADR5"])
        )
        assert planted.ebgm > 1.5 * background.ebgm
        assert planted.eb05 > 1.0

    def test_ic025_counterpart(self, surveillance_database):
        """IC025 agrees with EB05 on signal vs background direction."""
        from repro.signals.contingency import contingency_for
        from repro.signals.disproportionality import ic025

        catalog = surveillance_database.catalog
        planted = ic025(
            contingency_for(
                surveillance_database,
                catalog.encode(["DRUG0", "DRUG1"]),
                catalog.encode(["ADR0"]),
            )
        )
        background = ic025(
            contingency_for(
                surveillance_database,
                catalog.encode(["DRUG5"]),
                catalog.encode(["ADR5"]),
            )
        )
        assert planted > 0 > background

    def test_unobserved_margin_rejected(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        ghost = catalog.add("GHOST", "drug")
        pairs = [(catalog.encode(["D1"]), catalog.encode(["X"]))]
        scorer = EBGMScorer.fit(drug_adr_database, pairs)
        with pytest.raises(ConfigError):
            scorer.score(frozenset({ghost}), catalog.encode(["X"]))

    def test_empty_candidates_rejected(self, drug_adr_database):
        with pytest.raises(ConfigError):
            EBGMScorer.fit(drug_adr_database, [])
