"""Tests for the multi-drug interaction baselines."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.signals.interaction import (
    harpaz_multi_item_signals,
    omega_shrinkage,
    rank_pairs_by_omega,
)


class TestHarpazSignals:
    def test_planted_pair_detected(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        signals = harpaz_multi_item_signals(drug_adr_database, min_support=2)
        planted = [
            s
            for s in signals
            if s.rule.antecedent == catalog.encode(["D1", "D2"])
            and catalog.encode(["X"]) <= s.rule.consequent
        ]
        assert planted
        assert planted[0].score >= 2.0

    def test_only_multi_drug_rules(self, drug_adr_database):
        signals = harpaz_multi_item_signals(drug_adr_database, min_support=2)
        assert all(len(s.rule.antecedent) >= 2 for s in signals)

    def test_sorted_by_descending_score(self, drug_adr_database):
        signals = harpaz_multi_item_signals(drug_adr_database, min_support=2)
        scores = [s.score for s in signals]
        assert scores == sorted(scores, reverse=True)

    def test_rrr_threshold_filters(self, drug_adr_database):
        loose = harpaz_multi_item_signals(
            drug_adr_database, min_support=2, min_rrr=1.0
        )
        strict = harpaz_multi_item_signals(
            drug_adr_database, min_support=2, min_rrr=2.5
        )
        assert len(strict) <= len(loose)
        assert all(s.score >= 2.5 for s in strict)

    def test_invalid_threshold(self, drug_adr_database):
        with pytest.raises(ConfigError):
            harpaz_multi_item_signals(drug_adr_database, min_rrr=0.0)

    def test_describe(self, drug_adr_database):
        signals = harpaz_multi_item_signals(drug_adr_database, min_support=2)
        text = signals[0].describe(drug_adr_database.catalog)
        assert "score=" in text and "=>" in text


class TestOmegaShrinkage:
    def test_positive_for_planted_interaction(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        omega = omega_shrinkage(
            drug_adr_database,
            catalog.id("D1"),
            catalog.id("D2"),
            catalog.encode(["X"]),
        )
        # X never fires under single exposure, always under joint → strongly positive.
        assert omega > 1.0

    def test_zero_when_pair_never_cooccurs(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        omega = omega_shrinkage(
            drug_adr_database,
            catalog.id("D1"),
            catalog.id("D3"),
            catalog.encode(["X"]),
        )
        assert omega == 0.0

    def test_additive_risks_score_near_zero(self):
        """When the joint rate matches the independent-risk expectation."""
        from repro.mining.transactions import TransactionDatabase

        kinds = {"A": "drug", "B": "drug", "X": "adr", "O": "adr"}
        # f10 = f01 = 0.5; expected joint ≈ 0.75, observed joint = 0.75.
        rows = (
            [["A", "X"], ["A", "O"]] * 10
            + [["B", "X"], ["B", "O"]] * 10
            + [["A", "B", "X"]] * 15
            + [["A", "B", "O"]] * 5
        )
        db = TransactionDatabase.from_labelled(rows, kinds=kinds)
        catalog = db.catalog
        omega = omega_shrinkage(
            db, catalog.id("A"), catalog.id("B"), catalog.encode(["X"])
        )
        assert abs(omega) < 0.3

    def test_same_drug_rejected(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        with pytest.raises(ConfigError):
            omega_shrinkage(
                drug_adr_database,
                catalog.id("D1"),
                catalog.id("D1"),
                catalog.encode(["X"]),
            )

    def test_drug_in_outcome_rejected(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        with pytest.raises(ConfigError):
            omega_shrinkage(
                drug_adr_database,
                catalog.id("D1"),
                catalog.id("D2"),
                frozenset({catalog.id("D1")}),
            )

    def test_rank_pairs(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        pairs = [
            (catalog.id("D1"), catalog.id("D2"), catalog.encode(["X"])),
            (catalog.id("D1"), catalog.id("D2"), catalog.encode(["Z"])),
        ]
        ranked = rank_pairs_by_omega(drug_adr_database, pairs)
        assert ranked[0][0][2] == catalog.encode(["X"])
        assert ranked[0][1] >= ranked[1][1]
