"""Property-based tests of the disproportionality statistics."""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro.signals.contingency import ContingencyTable
from repro.signals.disproportionality import (
    chi_squared,
    ic025,
    information_component,
    proportional_reporting_ratio,
    relative_reporting_ratio,
    reporting_odds_ratio,
)
from repro.signals.stratified import mantel_haenszel_ror

cells = st.integers(min_value=0, max_value=500)
tables = st.builds(ContingencyTable, a=cells, b=cells, c=cells, d=cells)
positive_tables = st.builds(
    ContingencyTable,
    a=st.integers(1, 500),
    b=st.integers(1, 500),
    c=st.integers(1, 500),
    d=st.integers(1, 500),
)


@settings(max_examples=150, deadline=None)
@given(table=tables)
def test_statistics_are_finite_or_inf_nonnegative(table):
    assume(table.n > 0)
    for statistic in (
        proportional_reporting_ratio,
        reporting_odds_ratio,
        relative_reporting_ratio,
        chi_squared,
    ):
        value = statistic(table)
        assert value >= 0.0 or math.isinf(value)
        assert not math.isnan(value)


@settings(max_examples=150, deadline=None)
@given(table=positive_tables)
def test_rrr_symmetric_in_exposure_and_outcome(table):
    """RRR = aN / ((a+b)(a+c)) is invariant under transposing the table."""
    transposed = ContingencyTable(table.a, table.c, table.b, table.d)
    assert relative_reporting_ratio(table) == relative_reporting_ratio(transposed)


@settings(max_examples=150, deadline=None)
@given(table=positive_tables)
def test_ic_sign_matches_association_direction(table):
    """IC > 0 iff observed exceeds expected (up to the ½ shrinkage)."""
    expected = table.n_exposed * table.n_outcome / table.n
    ic = information_component(table)
    if table.a > expected:
        assert ic > 0 or math.isclose(ic, 0, abs_tol=0.2)
    if table.a < expected * 0.5 and expected > 2:
        assert ic < 0


@settings(max_examples=150, deadline=None)
@given(table=positive_tables)
def test_ic025_below_ic(table):
    assert ic025(table) < information_component(table)


@settings(max_examples=150, deadline=None)
@given(table=positive_tables, factor=st.integers(2, 9))
def test_ror_invariant_under_scaling(table, factor):
    """Multiplying every cell by a constant leaves the odds ratio fixed."""
    scaled = ContingencyTable(
        table.a * factor, table.b * factor, table.c * factor, table.d * factor
    )
    assert math.isclose(
        reporting_odds_ratio(table), reporting_odds_ratio(scaled), rel_tol=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(strata=st.lists(positive_tables, min_size=1, max_size=5))
def test_mh_or_within_stratum_or_range(strata):
    """The pooled MH odds ratio lies between the per-stratum extremes."""
    per_stratum = [
        (t.a * t.d) / (t.b * t.c) for t in strata
    ]
    pooled = mantel_haenszel_ror(strata)
    assert min(per_stratum) - 1e-9 <= pooled <= max(per_stratum) + 1e-9


@settings(max_examples=100, deadline=None)
@given(table=positive_tables)
def test_mh_single_stratum_equals_plain_or(table):
    plain = (table.a * table.d) / (table.b * table.c)
    assert math.isclose(mantel_haenszel_ror([table]), plain, rel_tol=1e-12)


@settings(max_examples=150, deadline=None)
@given(table=positive_tables)
def test_chi_squared_invariant_under_transpose(table):
    transposed = ContingencyTable(table.a, table.c, table.b, table.d)
    assert math.isclose(
        chi_squared(table), chi_squared(transposed), rel_tol=1e-9
    )
