"""Tests for 2×2 contingency-table construction."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.signals.contingency import ContingencyTable, contingency_for


class TestContingencyTable:
    def test_margins(self):
        table = ContingencyTable(3, 2, 5, 10)
        assert table.n == 20
        assert table.n_exposed == 5
        assert table.n_outcome == 8

    def test_negative_cell_rejected(self):
        with pytest.raises(ConfigError):
            ContingencyTable(-1, 0, 0, 0)

    def test_zero_cell_detection(self):
        assert ContingencyTable(1, 0, 2, 3).has_zero_cell
        assert not ContingencyTable(1, 1, 2, 3).has_zero_cell

    def test_haldane_preserves_ratios_semantics(self):
        corrected = ContingencyTable(1, 0, 2, 3).haldane_corrected()
        assert (corrected.a, corrected.b, corrected.c, corrected.d) == (3, 1, 5, 7)
        assert not corrected.has_zero_cell


class TestContingencyFor:
    def test_counts_from_database(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        table = contingency_for(
            drug_adr_database,
            catalog.encode(["D1", "D2"]),
            catalog.encode(["X"]),
        )
        # D1+D2 in 4 reports, all with X; X also occurs once with D3.
        assert table.a == 4
        assert table.b == 0
        assert table.c == 1
        assert table.n == len(drug_adr_database)

    def test_cells_sum_to_n(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        table = contingency_for(
            drug_adr_database, catalog.encode(["D1"]), catalog.encode(["Y"])
        )
        assert table.a + table.b + table.c + table.d == len(drug_adr_database)

    def test_overlapping_sides_rejected(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        items = catalog.encode(["D1"])
        with pytest.raises(ConfigError, match="overlap"):
            contingency_for(drug_adr_database, items, items)

    def test_empty_exposure_rejected(self, drug_adr_database):
        catalog = drug_adr_database.catalog
        with pytest.raises(ConfigError):
            contingency_for(drug_adr_database, frozenset(), catalog.encode(["X"]))
