"""Tests for the Appendix A stimulus-sheet renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigError
from repro.userstudy.stimuli import render_question_sheet, render_study_sheets
from repro.userstudy.study import build_questions


@pytest.fixture
def question(mined_quarter):
    return build_questions(mined_quarter.clusters, drug_counts=(2,))[0]


class TestQuestionSheet:
    def test_glyph_sheet_well_formed(self, question):
        sheet = render_question_sheet(question, encoding="glyph")
        root = ET.fromstring(sheet.to_string())
        assert root.tag.endswith("svg")

    def test_candidate_labels_present(self, question):
        rendered = render_question_sheet(question, encoding="glyph").to_string()
        root = ET.fromstring(rendered)
        texts = [el.text for el in root if el.tag.endswith("text")]
        for label in ("A", "B", "C", "D")[: len(question.clusters)]:
            assert label in texts

    def test_prompt_mentions_drug_count(self, question):
        rendered = render_question_sheet(question).to_string()
        assert f"{question.n_drugs}-drug" in rendered

    def test_barchart_encoding(self, question):
        rendered = render_question_sheet(question, encoding="barchart").to_string()
        root = ET.fromstring(rendered)
        rects = [
            el
            for el in root
            if el.tag.endswith("rect") and el.get("fill") not in ("#ffffff",)
        ]
        expected = sum(1 + c.context_size for c in question.clusters)
        # every bar with nonzero confidence is drawn
        assert 0 < len(rects) <= expected

    def test_answer_key_marker(self, question):
        plain = render_question_sheet(question, show_answer=False).to_string()
        keyed = render_question_sheet(question, show_answer=True).to_string()
        assert keyed.count("<circle") == plain.count("<circle") + 1

    def test_unknown_encoding_rejected(self, question):
        with pytest.raises(ConfigError):
            render_question_sheet(question, encoding="hologram")


class TestStudySheets:
    def test_sheets_written_for_both_encodings(self, mined_quarter, tmp_path):
        questions = build_questions(
            mined_quarter.clusters, drug_counts=(2,), questions_per_count=2
        )
        paths = render_study_sheets(questions, tmp_path)
        assert len(paths) == 2 * len(questions)
        assert all(path.exists() for path in paths)
        names = {path.name for path in paths}
        assert any("glyph" in name for name in names)
        assert any("barchart" in name for name in names)
