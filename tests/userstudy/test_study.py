"""Tests for the simulated user-study harness (Fig 5.2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.userstudy.perception import PerceptionModel
from repro.userstudy.study import Question, StudyResult, UserStudy, build_questions


class TestQuestion:
    def _clusters(self, mined_quarter, count=3):
        return tuple(c for c in mined_quarter.clusters if c.n_drugs == 2)[:count]

    def test_correct_index_must_be_argmax(self, mined_quarter):
        clusters = self._clusters(mined_quarter)
        with pytest.raises(ConfigError, match="highest true score"):
            Question(2, clusters, (0.9, 0.1, 0.2), correct_index=1)

    def test_needs_two_candidates(self, mined_quarter):
        clusters = self._clusters(mined_quarter, count=1)
        with pytest.raises(ConfigError):
            Question(2, clusters, (0.9,), correct_index=0)

    def test_context_sizes(self, mined_quarter):
        clusters = self._clusters(mined_quarter)
        question = Question(2, clusters, (0.9, 0.1, 0.2), correct_index=0)
        assert question.context_sizes == [c.context_size for c in clusters]


class TestBuildQuestions:
    def test_questions_for_each_covered_drug_count(self, mined_quarter):
        questions = build_questions(mined_quarter.clusters)
        counts = {q.n_drugs for q in questions}
        assert 2 in counts  # 2-drug clusters always abundant

    def test_deterministic(self, mined_quarter):
        first = build_questions(mined_quarter.clusters, seed=11)
        second = build_questions(mined_quarter.clusters, seed=11)
        assert [q.true_scores for q in first] == [q.true_scores for q in second]

    def test_candidate_count_respected(self, mined_quarter):
        questions = build_questions(
            mined_quarter.clusters, candidates_per_question=3
        )
        assert all(len(q.clusters) == 3 for q in questions)

    def test_candidates_share_cardinality(self, mined_quarter):
        questions = build_questions(mined_quarter.clusters)
        for question in questions:
            assert {c.n_drugs for c in question.clusters} == {question.n_drugs}

    def test_too_few_clusters_raises(self, mined_quarter):
        only_fours = [c for c in mined_quarter.clusters if c.n_drugs == 4][:2]
        with pytest.raises(ConfigError, match="no questions"):
            build_questions(only_fours, drug_counts=(4,))

    def test_invalid_candidate_count(self, mined_quarter):
        with pytest.raises(ConfigError):
            build_questions(mined_quarter.clusters, candidates_per_question=1)


class TestUserStudy:
    @pytest.fixture
    def questions(self, mined_quarter):
        return build_questions(mined_quarter.clusters, drug_counts=(2, 3))

    def test_accuracies_in_unit_interval(self, questions):
        result = UserStudy(n_annotators=20).run(questions)
        for series in result.accuracy.values():
            assert all(0.0 <= v <= 1.0 for v in series.values())

    def test_fig_5_2_shape_glyph_beats_barchart(self, questions):
        """The paper's headline: CG accuracy > bar-chart at every drug count."""
        result = UserStudy(n_annotators=50).run(questions)
        glyph = result.series("contextual-glyph")
        barchart = result.series("bar-chart")
        for n_drugs in glyph:
            assert glyph[n_drugs] > barchart[n_drugs], n_drugs

    def test_deterministic(self, questions):
        first = UserStudy(n_annotators=10, seed=5).run(questions)
        second = UserStudy(n_annotators=10, seed=5).run(questions)
        assert first.accuracy == second.accuracy

    def test_unknown_series_rejected(self, questions):
        result = UserStudy(n_annotators=5).run(questions)
        with pytest.raises(ConfigError):
            result.series("pie-chart")

    def test_empty_questions_rejected(self):
        with pytest.raises(ConfigError):
            UserStudy(n_annotators=5).run([])

    def test_invalid_annotator_count(self):
        with pytest.raises(ConfigError):
            UserStudy(n_annotators=0)

    def test_custom_models(self, questions):
        perfect = PerceptionModel("perfect", 0.0, 0.0)
        hopeless = PerceptionModel("hopeless", 5.0, 0.0)
        result = UserStudy(
            n_annotators=10, glyph_model=perfect, barchart_model=hopeless
        ).run(questions)
        assert all(v == 1.0 for v in result.series("perfect").values())
        assert all(v < 0.8 for v in result.series("hopeless").values())


class TestResponseTimes:
    @pytest.fixture
    def questions(self, mined_quarter):
        return build_questions(mined_quarter.clusters, drug_counts=(2, 3))

    def test_glyph_faster_than_barchart(self, questions):
        """The other half of §5.4.1's claim: glyph readers are quicker."""
        result = UserStudy(n_annotators=30).run(questions)
        glyph = result.time_series("contextual-glyph")
        barchart = result.time_series("bar-chart")
        for n_drugs in glyph:
            assert glyph[n_drugs] < barchart[n_drugs], n_drugs

    def test_barchart_slows_with_more_drugs(self, questions):
        result = UserStudy(n_annotators=30).run(questions)
        barchart = result.time_series("bar-chart")
        if {2, 3} <= set(barchart):
            # 3-drug clusters show 6 context bars vs 2 → longer scans.
            assert barchart[3] > barchart[2]

    def test_times_positive(self, questions):
        result = UserStudy(n_annotators=5).run(questions)
        for series in result.mean_seconds.values():
            assert all(value > 0 for value in series.values())

    def test_unknown_encoding_rejected(self, questions):
        result = UserStudy(n_annotators=5).run(questions)
        with pytest.raises(ConfigError):
            result.time_series("telepathy")
