"""Tests for the perception models."""

from __future__ import annotations

import statistics

import pytest

from repro.errors import ConfigError
from repro.userstudy.perception import (
    BARCHART_MODEL,
    GLYPH_MODEL,
    Annotator,
    PerceptionModel,
)


class TestPerceptionModel:
    def test_sigma_grows_with_context(self):
        model = PerceptionModel("m", base_noise=0.05, per_element_noise=0.01)
        assert model.sigma(10) > model.sigma(2)
        assert model.sigma(0) == 0.05

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigError):
            PerceptionModel("m", base_noise=-0.1, per_element_noise=0.0)

    def test_negative_context_rejected(self):
        with pytest.raises(ConfigError):
            GLYPH_MODEL.sigma(-1)

    def test_glyph_flatter_than_barchart(self):
        """The structural claim behind Fig 5.2."""
        assert GLYPH_MODEL.per_element_noise < BARCHART_MODEL.per_element_noise
        for context_size in (2, 6, 14):
            assert GLYPH_MODEL.sigma(context_size) < BARCHART_MODEL.sigma(
                context_size
            )


class TestAnnotator:
    def test_deterministic_per_seed(self):
        left = Annotator(seed=5)
        right = Annotator(seed=5)
        scores = [0.5, 0.4, 0.3]
        sizes = [2, 2, 2]
        picks_left = [left.choose(scores, sizes, GLYPH_MODEL) for _ in range(20)]
        picks_right = [right.choose(scores, sizes, GLYPH_MODEL) for _ in range(20)]
        assert picks_left == picks_right

    def test_perception_unbiased(self):
        annotator = Annotator(seed=1)
        readings = [
            annotator.perceive(0.5, GLYPH_MODEL, context_size=4)
            for _ in range(3000)
        ]
        assert statistics.mean(readings) == pytest.approx(0.5, abs=0.01)

    def test_zero_noise_always_correct(self):
        noiseless = PerceptionModel("exact", base_noise=0.0, per_element_noise=0.0)
        annotator = Annotator(seed=2)
        assert annotator.choose([0.2, 0.9, 0.5], [2, 2, 2], noiseless) == 1

    def test_large_gap_usually_correct(self):
        annotator = Annotator(seed=3)
        correct = sum(
            annotator.choose([0.9, 0.1, 0.1], [2, 2, 2], GLYPH_MODEL) == 0
            for _ in range(200)
        )
        assert correct >= 195

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ConfigError):
            Annotator(seed=4).choose([0.5], [2, 3], GLYPH_MODEL)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError):
            Annotator(seed=4).choose([], [], GLYPH_MODEL)


class TestResponseTimeModel:
    def test_reading_time_grows_with_context(self):
        assert BARCHART_MODEL.reading_seconds(14) > BARCHART_MODEL.reading_seconds(2)

    def test_glyph_scan_cost_below_barchart(self):
        for context_size in (2, 6, 14):
            assert GLYPH_MODEL.reading_seconds(
                context_size
            ) < BARCHART_MODEL.reading_seconds(context_size)

    def test_negative_context_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ConfigError):
            GLYPH_MODEL.reading_seconds(-1)

    def test_answer_returns_choice_and_time(self):
        annotator = Annotator(seed=9)
        choice, seconds = annotator.answer([0.9, 0.1], [2, 2], GLYPH_MODEL)
        assert choice in (0, 1)
        assert seconds > 0

    def test_invalid_time_parameters_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ConfigError):
            PerceptionModel("m", 0.1, 0.0, base_seconds=0.0)
