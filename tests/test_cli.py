"""Tests for the mediar command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


SYNTH = ("--synthetic", "2014Q1", "--scale", "0.005")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "--method", "astrology"])

    def test_serve_options_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--synthetic", "2014Q1", "--port", "9000",
                "--name", "q1", "--save", "runs_dir", "--cache-size", "64",
            ]
        )
        assert args.command == "serve"
        assert args.port == 9000 and args.name == "q1"
        assert str(args.save) == "runs_dir" and args.cache_size == 64

    def test_serve_load_needs_no_mining_input(self):
        args = build_parser().parse_args(["serve", "--load", "runs_dir"])
        assert args.load is not None and args.synthetic is None


class TestStats:
    def test_synthetic_stats(self, capsys):
        code, out, _ = run(capsys, "stats", *SYNTH)
        assert code == 0
        assert "reports:" in out and "drugs:" in out

    def test_missing_input_is_an_error(self, capsys):
        with pytest.raises(SystemExit, match="provide --synthetic"):
            main(["stats"])


class TestGenerateAndParseBack:
    def test_generate_then_stats_on_files(self, capsys, tmp_path):
        code, out, _ = run(
            capsys, "generate", "2014Q1", "--scale", "0.005", "--out", str(tmp_path)
        )
        assert code == 0
        demo = tmp_path / "DEMO14Q1.txt"
        drug = tmp_path / "DRUG14Q1.txt"
        reac = tmp_path / "REAC14Q1.txt"
        assert demo.exists() and drug.exists() and reac.exists()

        code, out, _ = run(
            capsys,
            "stats",
            "--demo",
            str(demo),
            "--drug-file",
            str(drug),
            "--reac",
            str(reac),
        )
        assert code == 0
        assert "reports:" in out


class TestMine:
    def test_mine_prints_ranked_clusters(self, capsys):
        code, out, _ = run(capsys, "mine", *SYNTH, "--min-support", "4", "--top", "3")
        assert code == 0
        assert "#1" in out and "=>" in out

    def test_mine_with_context(self, capsys):
        code, out, _ = run(
            capsys,
            "mine",
            *SYNTH,
            "--min-support",
            "4",
            "--top",
            "1",
            "--show-context",
        )
        assert code == 0
        assert "R~1" in out

    def test_mine_profile_prints_stage_table(self, capsys):
        code, out, err = run(
            capsys, "--profile", "mine", *SYNTH, "--min-support", "4", "--top", "3"
        )
        assert code == 0
        assert "#1" in out  # normal output unaffected
        assert "stage timings" in err
        for stage in (
            "pipeline.prepare",
            "pipeline.mine",
            "pipeline.filter",
            "pipeline.cluster",
        ):
            assert stage.rsplit(".", 1)[-1] in err, stage
        assert "pipeline.clusters" in err

    def test_mine_profile_writes_jsonl_trace(self, capsys, tmp_path):
        from repro.obs import read_jsonl

        trace = tmp_path / "trace.jsonl"
        code, _, err = run(
            capsys,
            "--profile",
            "--trace",
            str(trace),
            "mine",
            *SYNTH,
            "--min-support",
            "4",
        )
        assert code == 0
        assert f"wrote trace {trace}" in err
        records = read_jsonl(trace)
        span_names = {r["name"] for r in records if r["event"] == "span"}
        assert {
            "pipeline.prepare",
            "pipeline.mine",
            "pipeline.filter",
            "pipeline.cluster",
        } <= span_names
        assert records[-1]["event"] == "metrics"
        assert records[-1]["counters"]["pipeline.clusters"] > 0

    def test_no_profile_no_stage_table(self, capsys):
        code, _, err = run(capsys, "mine", *SYNTH, "--min-support", "4")
        assert code == 0
        assert "stage timings" not in err

    def test_mine_search_no_match(self, capsys):
        code, out, _ = run(
            capsys, "mine", *SYNTH, "--min-support", "4", "--drug", "NO-SUCH-DRUG"
        )
        assert code == 1
        assert "no clusters match" in out

    def test_mine_method_choice(self, capsys):
        code, out, _ = run(
            capsys, "mine", *SYNTH, "--min-support", "4", "--method", "confidence"
        )
        assert code == 0
        assert "by confidence" in out


class TestRender:
    def test_render_writes_svgs(self, capsys, tmp_path):
        code, out, _ = run(
            capsys,
            "render",
            *SYNTH,
            "--min-support",
            "4",
            "--top",
            "4",
            "--out",
            str(tmp_path / "glyphs"),
        )
        assert code == 0
        assert (tmp_path / "glyphs" / "panorama.svg").exists()
        assert (tmp_path / "glyphs" / "top1_zoom.svg").exists()


class TestValidate:
    def test_validate_prints_novelty(self, capsys):
        code, out, _ = run(capsys, "validate", *SYNTH, "--min-support", "4")
        assert code == 0
        assert "unknown" in out or "known" in out


class TestStudy:
    def test_study_prints_accuracy_table(self, capsys):
        code, out, _ = run(
            capsys, "study", "--synthetic", "2014Q1", "--scale", "0.02",
            "--min-support", "5", "--annotators", "10",
        )
        assert code == 0
        assert "glyph" in out and "%" in out


class TestReport:
    def test_report_written(self, capsys, tmp_path):
        code, out, _ = run(
            capsys, "report", *SYNTH, "--min-support", "4",
            "--out", str(tmp_path / "q.md"),
        )
        assert code == 0
        content = (tmp_path / "q.md").read_text()
        assert content.startswith("# MeDIAR quarterly surveillance report")


class TestExport:
    def test_export_written_and_loadable(self, capsys, tmp_path):
        from repro.core.export import load_export

        code, out, _ = run(
            capsys, "export", *SYNTH, "--min-support", "4",
            "--out", str(tmp_path / "q.json"),
        )
        assert code == 0
        loaded = load_export(tmp_path / "q.json")
        assert loaded.clusters


class TestRun:
    def test_run_writes_export(self, capsys, tmp_path):
        from repro.core.export import load_export

        code, out, _ = run(
            capsys, "run", *SYNTH, "--min-support", "4",
            "--out", str(tmp_path / "r.json"),
        )
        assert code == 0
        assert "workers=1" in out
        assert load_export(tmp_path / "r.json").clusters

    def test_run_workers_byte_identical(self, capsys, tmp_path):
        serial, sharded = tmp_path / "w1.json", tmp_path / "w2.json"
        code, _, _ = run(
            capsys, "run", *SYNTH, "--min-support", "4",
            "--out", str(serial),
        )
        assert code == 0
        code, out, _ = run(
            capsys, "run", *SYNTH, "--min-support", "4",
            "--workers", "2", "--out", str(sharded),
        )
        assert code == 0
        assert "workers=2" in out
        assert sharded.read_bytes() == serial.read_bytes()

    def test_bad_shard_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--synthetic", "2014Q1", "--shard-strategy", "nope"]
            )

    def test_negative_workers_is_config_error(self, capsys):
        code, _, err = run(
            capsys, "run", *SYNTH, "--workers", "-2",
        )
        assert code == 2
        assert "n_workers" in err


class TestWorkerValidation:
    """run/watch/serve reject bad --workers with one line, no traceback."""

    def test_run_absurd_workers_one_line(self, capsys):
        code, _, err = run(capsys, "run", *SYNTH, "--workers", "1000000")
        assert code == 2
        assert "n_workers must be <= 512" in err
        assert len(err.strip().splitlines()) == 1

    def test_watch_negative_workers_one_line(self, capsys):
        code, _, err = run(capsys, "watch", *SYNTH, "--workers", "-3")
        assert code == 2
        assert err.startswith("error:") and "n_workers" in err
        assert len(err.strip().splitlines()) == 1

    def test_watch_absurd_workers_one_line(self, capsys):
        code, _, err = run(capsys, "watch", *SYNTH, "--workers", "99999")
        assert code == 2
        assert "n_workers must be <= 512" in err
        assert len(err.strip().splitlines()) == 1

    def test_serve_zero_workers_one_line(self, capsys):
        code, _, err = run(capsys, "serve", *SYNTH, "--workers", "0")
        assert code == 2
        assert err.startswith("error:") and "--workers" in err
        assert len(err.strip().splitlines()) == 1

    def test_serve_absurd_workers_one_line(self, capsys):
        code, _, err = run(capsys, "serve", *SYNTH, "--workers", "4096")
        assert code == 2
        assert "--workers must be <= 128" in err
        assert len(err.strip().splitlines()) == 1


class TestDashboard:
    def test_dashboard_written(self, capsys, tmp_path):
        code, out, _ = run(
            capsys, "dashboard", *SYNTH, "--min-support", "4", "--top", "5",
            "--out", str(tmp_path / "d.html"),
        )
        assert code == 0
        content = (tmp_path / "d.html").read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "<svg" in content


class TestProfile:
    def test_profile_known_drug(self, capsys):
        code, out, _ = run(
            capsys, "profile", "ASPIRIN", "--synthetic", "2014Q1",
            "--scale", "0.02", "--min-support", "5",
        )
        assert code == 0
        assert out.startswith("ASPIRIN:")
        assert "body systems:" in out

    def test_profile_unknown_drug_exits_2(self, capsys):
        code, out, err = run(
            capsys, "profile", "NO-SUCH-DRUG", *SYNTH, "--min-support", "4",
        )
        assert code == 2
        assert "unknown drug" in err
