"""Cross-module integration tests: the paper's workflows end to end."""

from __future__ import annotations

import pytest

from repro.core import Maras, MarasConfig, RankingMethod
from repro.faers import (
    ReportCleaner,
    ReportDataset,
    SyntheticConfig,
    SyntheticFAERSGenerator,
)
from repro.faers.parser import parse_quarter
from repro.knowledge import default_reference, default_severity_index
from repro.userstudy import UserStudy, build_questions
from repro.viz import render_panorama


@pytest.fixture(scope="module")
def quarter():
    config = SyntheticConfig(n_reports=3000, n_drugs=1500, n_adrs=300, seed=2014)
    generator = SyntheticFAERSGenerator(config)
    result = Maras(MarasConfig(min_support=5, clean=False)).run(generator.generate())
    return generator, result


class TestSignalRecovery:
    """The case-study claim: planted genuine interactions rank high,
    single-drug-dominated combinations rank low (§5.4)."""

    def _planted_ranks(self, generator, result):
        catalog = result.catalog
        ranked = result.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE)
        total = len(ranked)
        ranks = {}
        for spec in generator.ground_truth():
            drug_ids = {catalog.get_id(d) for d in spec.drugs}
            adr_ids = {catalog.get_id(a) for a in spec.adrs}
            if None in drug_ids or None in adr_ids:
                continue
            best = None
            for entry in ranked:
                target = entry.cluster.target
                if target.antecedent == frozenset(drug_ids) and (
                    frozenset(adr_ids) & target.consequent
                ):
                    best = entry.rank if best is None else min(best, entry.rank)
            if best is not None:
                ranks[spec] = best / total  # normalized rank, lower = better
        return ranks

    def test_most_genuine_interactions_recovered(self, quarter):
        generator, result = quarter
        ranks = self._planted_ranks(generator, result)
        genuine = [r for spec, r in ranks.items() if spec.is_genuine]
        assert len(genuine) >= 4, "most planted interactions must be mined"
        # Majority of genuine interactions land in the top third.
        assert sum(1 for r in genuine if r < 1 / 3) >= len(genuine) / 2

    def test_genuine_outranks_confounded_on_shared_adr(self, quarter):
        """NEXIUM+PREVACID→OSTEOPOROSIS must beat TUMS+ZANTAC→OSTEOPOROSIS."""
        generator, result = quarter
        ranks = self._planted_ranks(generator, result)
        by_drugs = {spec.drugs: rank for spec, rank in ranks.items()}
        genuine = by_drugs.get(("NEXIUM", "PREVACID"))
        confounded = by_drugs.get(("TUMS", "ZANTAC"))
        if genuine is None or confounded is None:
            pytest.skip("one of the osteoporosis combos fell below support")
        assert genuine < confounded


class TestKnowledgeValidation:
    def test_top_clusters_validate_against_reference(self, quarter):
        """§5.4's protocol: check top-ranked interactions against the
        literature stand-in; the planted known ones classify as known."""
        generator, result = quarter
        reference = default_reference()
        catalog = result.catalog
        classifications = [
            reference.classify(
                catalog.labels(entry.cluster.target.antecedent),
                catalog.labels(entry.cluster.target.consequent),
            )
            for entry in result.rank(
                RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=100
            )
        ]
        assert "known" in classifications

    def test_severity_filter_narrows_clusters(self, quarter):
        _, result = quarter
        severity = default_severity_index()
        catalog = result.catalog
        severe = [
            cluster
            for cluster in result.clusters
            if severity.is_severe(catalog.labels(cluster.target.consequent))
        ]
        assert 0 < len(severe) < len(result.clusters)


class TestFullStackThroughFiles:
    def test_faers_files_to_ranked_glyphs(self, tmp_path):
        """Write FAERS-format files, parse, clean, mine, rank, render."""
        config = SyntheticConfig(n_reports=400, n_drugs=200, n_adrs=60, seed=3)
        reports = SyntheticFAERSGenerator(config).generate()

        demo_lines = ["primaryid$rept_cod$age$age_cod$sex$occr_country"]
        drug_lines = ["primaryid$drug_seq$drugname"]
        reac_lines = ["primaryid$pt"]
        for index, report in enumerate(reports):
            demo_lines.append(f"{index}$EXP$64$YR$F$US")
            for seq, drug in enumerate(report.drugs):
                drug_lines.append(f"{index}${seq}${drug}")
            for adr in report.adrs:
                reac_lines.append(f"{index}${adr}")
        demo = tmp_path / "DEMO14Q1.txt"
        drug = tmp_path / "DRUG14Q1.txt"
        reac = tmp_path / "REAC14Q1.txt"
        demo.write_text("\n".join(demo_lines) + "\n", encoding="latin-1")
        drug.write_text("\n".join(drug_lines) + "\n", encoding="latin-1")
        reac.write_text("\n".join(reac_lines) + "\n", encoding="latin-1")

        parsed, stats = parse_quarter(demo, drug, reac, quarter="2014Q1")
        assert stats.reports == len(reports)

        cleaned, _ = ReportCleaner().clean(parsed)
        result = Maras(MarasConfig(min_support=3, clean=False)).run(
            ReportDataset(cleaned)
        )
        assert result.clusters
        ranked = result.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=6)
        svg = render_panorama(ranked, result.catalog)
        out = svg.save(tmp_path / "panorama.svg")
        assert out.stat().st_size > 1000

    def test_round_trip_preserves_report_content(self, tmp_path):
        config = SyntheticConfig(n_reports=50, n_drugs=100, n_adrs=30, seed=8)
        reports = SyntheticFAERSGenerator(config).generate()
        demo_lines = ["primaryid$rept_cod"]
        drug_lines = ["primaryid$drugname"]
        reac_lines = ["primaryid$pt"]
        for report in reports:
            demo_lines.append(f"{report.case_id}$EXP")
            drug_lines.extend(f"{report.case_id}${d}" for d in report.drugs)
            reac_lines.extend(f"{report.case_id}${a}" for a in report.adrs)
        demo = tmp_path / "demo.txt"
        drug = tmp_path / "drug.txt"
        reac = tmp_path / "reac.txt"
        demo.write_text("\n".join(demo_lines) + "\n", encoding="latin-1")
        drug.write_text("\n".join(drug_lines) + "\n", encoding="latin-1")
        reac.write_text("\n".join(reac_lines) + "\n", encoding="latin-1")
        parsed, _ = parse_quarter(demo, drug, reac)
        assert {r.signature() for r in parsed} == {r.signature() for r in reports}


class TestUserStudyOnMinedQuarter:
    def test_study_runs_on_real_pipeline_output(self, quarter):
        _, result = quarter
        questions = build_questions(result.clusters, drug_counts=(2, 3))
        outcome = UserStudy(n_annotators=25).run(questions)
        glyph = outcome.series("contextual-glyph")
        barchart = outcome.series("bar-chart")
        assert set(glyph) == set(barchart)
        assert all(glyph[n] >= barchart[n] for n in glyph)
