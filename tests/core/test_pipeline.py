"""Tests for the end-to-end Maras pipeline."""

from __future__ import annotations

import pytest

from repro.core import Maras, MarasConfig, RankingMethod
from repro.core.association import SupportType
from repro.errors import ConfigError
from repro.faers.dataset import ReportDataset
from repro.faers.schema import CaseReport


class TestMarasConfig:
    def test_defaults_valid(self):
        MarasConfig()

    def test_max_drugs_floor(self):
        with pytest.raises(ConfigError):
            MarasConfig(max_drugs=1)

    def test_max_itemset_len_floor(self):
        with pytest.raises(ConfigError):
            MarasConfig(max_itemset_len=2)

    def test_min_confidence_range(self):
        with pytest.raises(ConfigError):
            MarasConfig(min_confidence=1.2)


class TestPipelineRun:
    def test_clusters_are_multi_drug_closed_rules(self, mined_quarter):
        assert mined_quarter.clusters
        config = mined_quarter.config
        for cluster in mined_quarter.clusters:
            assert 2 <= cluster.n_drugs <= config.max_drugs

    def test_every_association_supported(self, mined_quarter):
        assert all(
            a.support_type is not SupportType.UNSUPPORTED
            for a in mined_quarter.associations
        )

    def test_min_support_respected(self, mined_quarter):
        threshold = mined_quarter.config.min_support
        for cluster in mined_quarter.clusters:
            assert cluster.target.metrics.n_joint >= threshold

    def test_rank_shortcut_uses_config(self, mined_quarter):
        ranked = mined_quarter.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=3)
        assert len(ranked) == 3

    def test_accepts_dataset_directly(self, small_quarter_reports):
        dataset = ReportDataset(small_quarter_reports)
        result = Maras(MarasConfig(min_support=10, clean=False)).run(dataset)
        assert result.dataset is dataset

    def test_cleaning_stage_runs_when_enabled(self):
        reports = [
            CaseReport.build("c1", ["aspirin 81 mg", "warfarin"], ["haemorrhage"]),
            CaseReport.build("c1", ["ASPIRIN"], ["HAEMORRHAGE"]),  # same case
            CaseReport.build("c2", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"]),
            CaseReport.build("c3", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"]),
            CaseReport.build("c4", ["NEXIUM"], ["PAIN"]),
        ]
        result = Maras(MarasConfig(min_support=2, clean=True)).run(reports)
        assert result.cleaning_stats is not None
        assert result.cleaning_stats.cases_merged == 1
        # c1 merged; c2 content-duplicates merged c1 → dropped.
        assert len(result.dataset) < 5

    def test_rule_space_counts_ordering(self, small_quarter_reports):
        """Fig 5.1's invariant: total ≥ filtered ≥ MCACs."""
        result = Maras(
            MarasConfig(min_support=8, clean=False, count_rule_space=True)
        ).run(small_quarter_reports[:800])
        counts = result.rule_counts
        assert counts is not None
        assert counts.total_rules >= counts.filtered_rules >= counts.mcacs
        assert counts.mcacs == len(result.clusters)

    def test_rule_counts_none_by_default(self, mined_quarter):
        assert mined_quarter.rule_counts is None


class TestSearchAndDrilldown:
    def test_search_by_drug(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        drug = mined_quarter.catalog.labels(cluster.target.antecedent)[0]
        matches = mined_quarter.search(drug=drug)
        assert cluster in matches
        assert all(
            drug in mined_quarter.catalog.labels(m.target.antecedent)
            for m in matches
        )

    def test_search_by_adr(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        adr = mined_quarter.catalog.labels(cluster.target.consequent)[0]
        matches = mined_quarter.search(adr=adr)
        assert cluster in matches

    def test_search_conjunction(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        drug = mined_quarter.catalog.labels(cluster.target.antecedent)[0]
        adr = mined_quarter.catalog.labels(cluster.target.consequent)[0]
        matches = mined_quarter.search(drug=drug, adr=adr)
        assert cluster in matches

    def test_search_unknown_term_returns_empty(self, mined_quarter):
        assert mined_quarter.search(drug="NO-SUCH-DRUG") == []

    def test_search_without_criteria_rejected(self, mined_quarter):
        with pytest.raises(ConfigError):
            mined_quarter.search()

    def test_supporting_reports_contain_the_rule_items(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        labels = set(mined_quarter.catalog.labels(cluster.target.items))
        reports = mined_quarter.supporting_reports(cluster)
        assert len(reports) == cluster.target.metrics.n_joint
        for report in reports:
            assert labels <= report.items
