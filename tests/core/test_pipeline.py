"""Tests for the end-to-end Maras pipeline."""

from __future__ import annotations

import pytest

from repro.core import Maras, MarasConfig, RankingMethod
from repro.core.association import SupportType
from repro.errors import ConfigError
from repro.faers.dataset import ReportDataset
from repro.faers.schema import CaseReport
from repro.obs import MetricsRegistry


class TestMarasConfig:
    def test_defaults_valid(self):
        MarasConfig()

    def test_max_drugs_floor(self):
        with pytest.raises(ConfigError):
            MarasConfig(max_drugs=1)

    def test_max_itemset_len_floor(self):
        with pytest.raises(ConfigError):
            MarasConfig(max_itemset_len=2)

    def test_min_confidence_range(self):
        with pytest.raises(ConfigError):
            MarasConfig(min_confidence=1.2)

    def test_zero_min_support_rejected(self):
        with pytest.raises(ConfigError, match="absolute min_support must be >= 1"):
            MarasConfig(min_support=0)

    def test_negative_min_support_rejected(self):
        with pytest.raises(ConfigError, match="absolute min_support must be >= 1"):
            MarasConfig(min_support=-5)

    def test_fractional_min_support_must_be_positive(self):
        with pytest.raises(ConfigError, match=r"fractional min_support must be in \(0, 1\]"):
            MarasConfig(min_support=0.0)

    def test_fractional_min_support_above_one_rejected(self):
        with pytest.raises(ConfigError, match=r"fractional min_support must be in \(0, 1\]"):
            MarasConfig(min_support=1.5)

    def test_fractional_min_support_accepted(self):
        MarasConfig(min_support=0.01)
        MarasConfig(min_support=1.0)

    def test_bool_min_support_rejected(self):
        with pytest.raises(ConfigError, match="int or float"):
            MarasConfig(min_support=True)


class TestPipelineRun:
    def test_clusters_are_multi_drug_closed_rules(self, mined_quarter):
        assert mined_quarter.clusters
        config = mined_quarter.config
        for cluster in mined_quarter.clusters:
            assert 2 <= cluster.n_drugs <= config.max_drugs

    def test_every_association_supported(self, mined_quarter):
        assert all(
            a.support_type is not SupportType.UNSUPPORTED
            for a in mined_quarter.associations
        )

    def test_min_support_respected(self, mined_quarter):
        threshold = mined_quarter.config.min_support
        for cluster in mined_quarter.clusters:
            assert cluster.target.metrics.n_joint >= threshold

    def test_rank_shortcut_uses_config(self, mined_quarter):
        ranked = mined_quarter.rank(RankingMethod.EXCLUSIVENESS_CONFIDENCE, top_k=3)
        assert len(ranked) == 3

    def test_accepts_dataset_directly(self, small_quarter_reports):
        dataset = ReportDataset(small_quarter_reports)
        result = Maras(MarasConfig(min_support=10, clean=False)).run(dataset)
        assert result.dataset is dataset

    def test_cleaning_stage_runs_when_enabled(self):
        reports = [
            CaseReport.build("c1", ["aspirin 81 mg", "warfarin"], ["haemorrhage"]),
            CaseReport.build("c1", ["ASPIRIN"], ["HAEMORRHAGE"]),  # same case
            CaseReport.build("c2", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"]),
            CaseReport.build("c3", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"]),
            CaseReport.build("c4", ["NEXIUM"], ["PAIN"]),
        ]
        result = Maras(MarasConfig(min_support=2, clean=True)).run(reports)
        assert result.cleaning_stats is not None
        assert result.cleaning_stats.cases_merged == 1
        # c1 merged; c2 content-duplicates merged c1 → dropped.
        assert len(result.dataset) < 5

    def test_dataset_input_is_cleaned_when_enabled(self):
        """Regression: wrapping reports in a ReportDataset used to bypass
        the cleaner entirely, silently skipping §5.2's preparation step."""
        reports = [
            CaseReport.build("c1", ["aspirin 81 mg", "warfarin"], ["haemorrhage"]),
            CaseReport.build(
                "c2", ["ASPIRIN", "WARFARIN TAB"], ["HAEMORRHAGE", "NAUSEA"]
            ),
            CaseReport.build(
                "c3", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE", "RASH"]
            ),
            CaseReport.build("c4", ["NEXIUM"], ["PAIN"]),
        ]
        dataset = ReportDataset(reports)
        result = Maras(MarasConfig(min_support=3, clean=True)).run(dataset)
        assert result.cleaning_stats is not None
        # All three spellings collapse to the same canonical pair, so
        # the two-drug rule reaches support 3.
        labels = {
            result.catalog.labels(c.target.antecedent)
            for c in result.clusters
        }
        assert ("ASPIRIN", "WARFARIN") in labels

    def test_dataset_input_untouched_when_clean_disabled(self, small_quarter_reports):
        dataset = ReportDataset(small_quarter_reports)
        result = Maras(MarasConfig(min_support=10, clean=False)).run(dataset)
        assert result.dataset is dataset
        assert result.cleaning_stats is None

    def test_rule_space_counts_ordering(self, small_quarter_reports):
        """Fig 5.1's invariant: total ≥ filtered ≥ MCACs."""
        result = Maras(
            MarasConfig(min_support=8, clean=False, count_rule_space=True)
        ).run(small_quarter_reports[:800])
        counts = result.rule_counts
        assert counts is not None
        assert counts.total_rules >= counts.filtered_rules >= counts.mcacs
        assert counts.mcacs == len(result.clusters)

    def test_rule_counts_none_by_default(self, mined_quarter):
        assert mined_quarter.rule_counts is None


class TestBitsetPath:
    """The bitset-native path must be a pure speedup: same clusters, same
    metrics, same support classifications as the set-based reference."""

    @staticmethod
    def _signature(result):
        return {
            (c.target.antecedent, c.target.consequent): (
                c.target.metrics,
                {
                    level: tuple(
                        sorted(
                            (r.antecedent, r.consequent, r.metrics)
                            for r in rules
                        )
                    )
                    for level, rules in c.levels.items()
                },
            )
            for c in result.clusters
        }

    def test_bitset_and_reference_paths_agree(self, small_quarter_reports):
        reports = small_quarter_reports[:900]
        bitset = Maras(
            MarasConfig(min_support=4, clean=False, use_bitsets=True)
        ).run(reports)
        reference = Maras(
            MarasConfig(min_support=4, clean=False, use_bitsets=False)
        ).run(reports)
        assert bitset.clusters
        assert self._signature(bitset) == self._signature(reference)
        assert {
            (a.rule.antecedent, a.rule.consequent): a.support_type
            for a in bitset.associations
        } == {
            (a.rule.antecedent, a.rule.consequent): a.support_type
            for a in reference.associations
        }

    def test_oracle_cache_counters_recorded(self, small_quarter_reports):
        registry = MetricsRegistry()
        Maras(
            MarasConfig(min_support=4, clean=False), registry=registry
        ).run(small_quarter_reports[:900])
        counters = registry.snapshot().counters
        # MCAC construction re-asks overlapping subset supports, so a
        # healthy cache serves a substantial share of hits.
        assert counters["oracle.support_misses"] > 0
        assert counters["oracle.support_hits"] > 0

    def test_reports_in_counted_on_dataset_passthrough(
        self, small_quarter_reports
    ):
        """Regression: a pre-built ReportDataset with clean=False used to
        skip the ``pipeline.reports_in`` counter entirely."""
        dataset = ReportDataset(small_quarter_reports)
        registry = MetricsRegistry()
        Maras(
            MarasConfig(min_support=10, clean=False), registry=registry
        ).run(dataset)
        counters = registry.snapshot().counters
        assert counters["pipeline.reports_in"] == len(dataset)


class TestSearchAndDrilldown:
    def test_search_by_drug(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        drug = mined_quarter.catalog.labels(cluster.target.antecedent)[0]
        matches = mined_quarter.search(drug=drug)
        assert cluster in matches
        assert all(
            drug in mined_quarter.catalog.labels(m.target.antecedent)
            for m in matches
        )

    def test_search_by_adr(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        adr = mined_quarter.catalog.labels(cluster.target.consequent)[0]
        matches = mined_quarter.search(adr=adr)
        assert cluster in matches

    def test_search_conjunction(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        drug = mined_quarter.catalog.labels(cluster.target.antecedent)[0]
        adr = mined_quarter.catalog.labels(cluster.target.consequent)[0]
        matches = mined_quarter.search(drug=drug, adr=adr)
        assert cluster in matches

    def test_search_unknown_term_returns_empty(self, mined_quarter):
        assert mined_quarter.search(drug="NO-SUCH-DRUG") == []

    def test_search_case_variant_query(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        drug = mined_quarter.catalog.labels(cluster.target.antecedent)[0]
        matches = mined_quarter.search(drug=drug.lower())
        assert cluster in matches

    def test_search_verbatim_query_with_dosage_tail(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        drug = mined_quarter.catalog.labels(cluster.target.antecedent)[0]
        matches = mined_quarter.search(drug=f"{drug.lower()} 81 mg")
        assert cluster in matches

    def test_search_misspelled_query_corrected(self):
        reports = [
            CaseReport.build(f"c{i}", ["ASPIRIN", "WARFARIN"], ["HAEMORRHAGE"])
            for i in range(3)
        ]
        result = Maras(MarasConfig(min_support=2, clean=False)).run(reports)
        assert result.clusters
        # One deletion ("ASPIRN") and one substitution ("ASPIRIM"): both
        # are edit distance 1 from exactly one catalog drug.
        for misspelled in ("ASPIRN", "ASPIRIM", "aspirn"):
            matches = result.search(drug=misspelled)
            assert matches == result.clusters, misspelled

    def test_search_ambiguous_misspelling_not_corrected(self):
        reports = [
            CaseReport.build(f"c{i}", ["DRUGA", "DRUGB"], ["PAIN"])
            for i in range(3)
        ]
        result = Maras(MarasConfig(min_support=2, clean=False)).run(reports)
        # "DRUGC" is distance 1 from both DRUGA and DRUGB — ambiguous,
        # so no correction and no match.
        assert result.search(drug="DRUGC") == []

    def test_search_case_variant_adr(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        adr = mined_quarter.catalog.labels(cluster.target.consequent)[0]
        matches = mined_quarter.search(adr=adr.lower())
        assert cluster in matches

    def test_search_without_criteria_rejected(self, mined_quarter):
        with pytest.raises(ConfigError):
            mined_quarter.search()

    def test_supporting_reports_contain_the_rule_items(self, mined_quarter):
        cluster = mined_quarter.clusters[0]
        labels = set(mined_quarter.catalog.labels(cluster.target.items))
        reports = mined_quarter.supporting_reports(cluster)
        assert len(reports) == cluster.target.metrics.n_joint
        for report in reports:
            assert labels <= report.items
