"""Property-based tests of the core MCAC / exclusiveness machinery."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.context import build_cluster
from repro.core.exclusiveness import (
    ExclusivenessConfig,
    exclusiveness,
    exclusiveness_cv,
    exclusiveness_simple,
)
from repro.core.improvement import improvement
from repro.mining.fpclose import fpclose
from repro.mining.rules import partitioned_rules
from repro.mining.transactions import TransactionDatabase

DRUGS = ["D0", "D1", "D2", "D3", "D4"]
ADRS = ["A0", "A1", "A2"]
KINDS = {d: "drug" for d in DRUGS} | {a: "adr" for a in ADRS}

reports_strategy = st.lists(
    st.tuples(
        st.sets(st.sampled_from(DRUGS), min_size=1, max_size=4),
        st.sets(st.sampled_from(ADRS), min_size=1, max_size=2),
    ),
    min_size=8,
    max_size=40,
)

confidences = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
contexts = st.lists(confidences, min_size=1, max_size=10)


def clusters_of(raw_reports):
    rows = [drugs | adrs for drugs, adrs in raw_reports]
    db = TransactionDatabase.from_labelled(rows, kinds=KINDS)
    rules = partitioned_rules(fpclose(db, 1), db)
    return db, [
        build_cluster(rule, db) for rule in rules if len(rule.antecedent) >= 2
    ]


@settings(max_examples=40, deadline=None)
@given(raw=reports_strategy)
def test_mcac_context_is_complete_power_set(raw):
    _, clusters = clusters_of(raw)
    for cluster in clusters:
        n = cluster.n_drugs
        assert cluster.context_size == 2**n - 2
        assert set(cluster.levels) == set(range(1, n))
        for cardinality, rules in cluster.levels.items():
            for rule in rules:
                assert rule.cardinality == cardinality
                assert rule.antecedent < cluster.target.antecedent
                assert rule.consequent == cluster.target.consequent


@settings(max_examples=40, deadline=None)
@given(raw=reports_strategy)
def test_exclusiveness_bounded_by_measure_range(raw):
    """With confidence (range [0,1]) the Eq 3.5 score lies in [-1, 1]."""
    _, clusters = clusters_of(raw)
    config = ExclusivenessConfig(measure="confidence")
    for cluster in clusters:
        score = exclusiveness(cluster, config)
        assert -1.0 <= score <= 1.0


@settings(max_examples=40, deadline=None)
@given(raw=reports_strategy)
def test_improvement_upper_bounds_mean_contrast(raw):
    """Improvement (vs the max context value) is never above the
    contrast vs the mean context value."""
    _, clusters = clusters_of(raw)
    for cluster in clusters:
        values = [
            v for vs in cluster.context_values("confidence").values() for v in vs
        ]
        mean_contrast = exclusiveness_simple(
            cluster.target.metrics.confidence, values
        )
        assert improvement(cluster) <= mean_contrast + 1e-12


@settings(max_examples=80, deadline=None)
@given(p=confidences, values=contexts, theta=st.floats(0.0, 1.0))
def test_cv_penalty_never_flips_sign(p, values, theta):
    base = exclusiveness_simple(p, values)
    penalized = exclusiveness_cv(p, values, theta=theta)
    if base > 0:
        assert 0 <= penalized <= base + 1e-12
    elif base < 0:
        assert base - 1e-12 <= penalized <= 0
    else:
        assert penalized == 0


@settings(max_examples=80, deadline=None)
@given(p=confidences, values=contexts)
def test_theta_monotone_in_penalty_magnitude(p, values):
    scores = [abs(exclusiveness_cv(p, values, theta=t)) for t in (0.0, 0.5, 1.0)]
    assert scores[0] + 1e-12 >= scores[1] >= scores[2] - 1e-12


@settings(max_examples=40, deadline=None)
@given(raw=reports_strategy)
def test_scores_invariant_to_report_order(raw):
    """Mining + scoring is a function of the report multiset, not order."""
    db_a, clusters_a = clusters_of(raw)
    db_b, clusters_b = clusters_of(list(reversed(raw)))

    def normalized(db, clusters):
        catalog = db.catalog
        return sorted(
            (
                catalog.labels(c.target.antecedent),
                catalog.labels(c.target.consequent),
                round(exclusiveness(c), 12),
            )
            for c in clusters
        )

    assert normalized(db_a, clusters_a) == normalized(db_b, clusters_b)
