"""Tests for bootstrap exclusiveness intervals."""

from __future__ import annotations

import pytest

from repro.core.context import build_cluster
from repro.core.exclusiveness import ExclusivenessConfig, exclusiveness
from repro.core.uncertainty import (
    ScoreInterval,
    bootstrap_exclusiveness,
    score_intervals,
)
from repro.errors import ConfigError
from repro.mining.fpclose import fpclose
from repro.mining.rules import partitioned_rules
from repro.mining.transactions import TransactionDatabase


def strong_signal_database(n_signal=40, n_background=80):
    kinds = {"D1": "drug", "D2": "drug", "D3": "drug", "X": "adr", "Y": "adr"}
    rows = [["D1", "D2", "X"]] * n_signal
    rows += [["D1", "Y"]] * (n_background // 2)
    rows += [["D2", "Y"]] * (n_background // 2)
    rows += [["D3", "X"]] * 10
    return TransactionDatabase.from_labelled(rows, kinds=kinds)


def cluster_of(db, drugs=("D1", "D2")):
    catalog = db.catalog
    rules = partitioned_rules(fpclose(db, 2), db)
    rule = next(
        r
        for r in rules
        if r.antecedent == catalog.encode(drugs)
        and catalog.encode(["X"]) <= r.consequent
    )
    return build_cluster(rule, db)


class TestScoreInterval:
    def test_excludes_zero(self):
        assert ScoreInterval(0.5, 0.2, 0.8, 0.95, 100).excludes_zero
        assert ScoreInterval(-0.5, -0.8, -0.2, 0.95, 100).excludes_zero
        assert not ScoreInterval(0.1, -0.1, 0.3, 0.95, 100).excludes_zero

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigError):
            ScoreInterval(0.5, 0.8, 0.2, 0.95, 100)

    def test_width(self):
        assert ScoreInterval(0.5, 0.2, 0.8, 0.95, 100).width == pytest.approx(0.6)


class TestBootstrap:
    def test_point_matches_exclusiveness(self):
        db = strong_signal_database()
        cluster = cluster_of(db)
        interval = bootstrap_exclusiveness(db, cluster, n_bootstrap=50)
        assert interval.point == pytest.approx(exclusiveness(cluster))

    def test_point_within_interval(self):
        db = strong_signal_database()
        cluster = cluster_of(db)
        interval = bootstrap_exclusiveness(db, cluster, n_bootstrap=200)
        assert interval.low <= interval.point <= interval.high

    def test_strong_signal_excludes_zero(self):
        db = strong_signal_database()
        interval = bootstrap_exclusiveness(db, cluster_of(db), n_bootstrap=300)
        assert interval.excludes_zero
        assert interval.low > 0

    def test_more_evidence_narrows_interval(self):
        small = strong_signal_database(n_signal=8, n_background=16)
        large = strong_signal_database(n_signal=80, n_background=160)
        narrow = bootstrap_exclusiveness(large, cluster_of(large), n_bootstrap=300)
        wide = bootstrap_exclusiveness(small, cluster_of(small), n_bootstrap=300)
        assert narrow.width < wide.width

    def test_deterministic_per_seed(self):
        db = strong_signal_database()
        cluster = cluster_of(db)
        first = bootstrap_exclusiveness(db, cluster, seed=7, n_bootstrap=100)
        second = bootstrap_exclusiveness(db, cluster, seed=7, n_bootstrap=100)
        assert (first.low, first.high) == (second.low, second.high)

    def test_three_drug_cluster_supported(self):
        kinds = {"D1": "drug", "D2": "drug", "D3": "drug", "X": "adr"}
        rows = [["D1", "D2", "D3", "X"]] * 20 + [["D1", "X"]] * 5 + [["D2"], ["D3"]] * 10
        rows = [r + (["X"] if not set(r) & {"X"} else []) for r in rows]
        db = TransactionDatabase.from_labelled(rows, kinds=kinds)
        cluster = cluster_of(db, drugs=("D1", "D2", "D3"))
        interval = bootstrap_exclusiveness(db, cluster, n_bootstrap=100)
        assert interval.low <= interval.point <= interval.high

    def test_lift_measure_rejected(self):
        db = strong_signal_database()
        with pytest.raises(ConfigError, match="confidence"):
            bootstrap_exclusiveness(
                db, cluster_of(db), config=ExclusivenessConfig(measure="lift")
            )

    def test_invalid_parameters(self):
        db = strong_signal_database()
        cluster = cluster_of(db)
        with pytest.raises(ConfigError):
            bootstrap_exclusiveness(db, cluster, n_bootstrap=5)
        with pytest.raises(ConfigError):
            bootstrap_exclusiveness(db, cluster, confidence_level=0.3)

    def test_score_intervals_order_preserved(self, mined_quarter):
        clusters = mined_quarter.clusters[:3]
        pairs = score_intervals(
            mined_quarter.encoded.database, clusters, n_bootstrap=50
        )
        assert [cluster for cluster, _ in pairs] == list(clusters)
